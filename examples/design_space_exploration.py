#!/usr/bin/env python3
"""Design space exploration for the reciprocal (the paper's headline use case).

One design — ``INTDIV(n)`` — is pushed through every flow configuration and
the resulting (qubits, T-count) trade-off is reported, together with the
Pareto front and the comparison against the hand-crafted ``RESDIV``
baseline.  This reproduces, at laptop scale, the experiment behind the
paper's claim that automated flows "beat handcrafted designs in either width
or size, depending on the optimization goal".

The exploration runs on the parallel engine: pass a worker count to spread
configurations over a process pool, and a cache directory to make repeated
runs instantaneous (the cache is content-addressed, so editing a design
invalidates exactly its own entries).

Run with::

    python examples/design_space_exploration.py [n] [jobs] [cache-dir]
"""

from __future__ import annotations

import sys

from repro import DesignSpaceExplorer, FlowConfiguration
from repro.baselines.resdiv import resdiv_resources
from repro.utils.tables import format_table


def main(bitwidth: int = 6, jobs: int = 1, cache_dir: str | None = None) -> None:
    explorer = DesignSpaceExplorer(
        "intdiv",
        bitwidth,
        configurations=[
            FlowConfiguration("symbolic"),
            FlowConfiguration("esop", (("p", 0),)),
            FlowConfiguration("esop", (("p", 1),)),
            FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
            FlowConfiguration("hierarchical", (("strategy", "per_output"),)),
        ],
        verify=bitwidth <= 8,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    explorer.explore(
        on_result=lambda outcome: print(
            f"  finished {outcome.label()}"
            + (" (cached)" if outcome.cached else "")
        )
    )
    for label, error in explorer.errors.items():
        print(f"  FAILED {label}: {error}")

    print(format_table(
        ["configuration", "qubits", "T-count", "runtime [s]"],
        explorer.summary_rows(),
        title=f"Design space of INTDIV({bitwidth})",
    ))

    front = explorer.pareto_front()
    print()
    print(format_table(
        ["Pareto point", "qubits", "T-count"],
        [(p.configuration, p.qubits, p.t_count) for p in front],
        title="Pareto front (qubits vs T-count)",
    ))

    baseline = resdiv_resources(bitwidth)
    best_qubits = explorer.best_by_qubits()
    best_t = explorer.best_by_t_count()
    print()
    print(f"RESDIV baseline              : {baseline.qubits} qubits, {baseline.t_count} T")
    print(
        f"best automated flow (qubits) : {best_qubits.flow} with {best_qubits.qubits} qubits "
        f"({baseline.qubits / best_qubits.qubits:.1f}x fewer than RESDIV)"
    )
    print(
        f"best automated flow (T)      : {best_t.flow} with {best_t.t_count} T "
        f"({baseline.t_count / best_t.t_count:.1f}x vs RESDIV)"
    )


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 6,
        int(sys.argv[2]) if len(sys.argv) > 2 else 1,
        sys.argv[3] if len(sys.argv) > 3 else None,
    )
