#!/usr/bin/env python3
"""Resource estimation for the reciprocal inside a quantum linear systems solver.

The paper motivates the reciprocal with quantum linear systems algorithms
(HHL-style): the eigenvalue register must be inverted coherently, so a
reversible 1/x circuit sits on the algorithm's critical path.  This example

1. synthesises the reciprocal with two different flows,
2. maps one of the circuits all the way down to Clifford+T
   (the paper's "quantum level"),
3. reports the fault-tolerant resource figures an algorithm designer would
   plug into an HHL cost model, and
4. simulates the Clifford+T circuit on a few basis states to show that the
   eigenvalue register really gets inverted.

Run with::

    python examples/quantum_linear_systems_resources.py [n]
"""

from __future__ import annotations

import sys

from repro import run_flow
from repro.hdl.designs import intdiv_reference
from repro.quantum.mapping import map_to_clifford_t
from repro.quantum.statevector import simulate_basis_state
from repro.utils.tables import format_table


def main(bitwidth: int = 4) -> None:
    print(f"Reciprocal for a {bitwidth}-bit eigenvalue register (HHL rotation oracle)\n")

    rows = []
    results = {}
    for flow_name, kwargs in (("esop", {"p": 0}), ("hierarchical", {})):
        result = run_flow(flow_name, "intdiv", bitwidth, **kwargs)
        results[flow_name] = result
        rows.append(
            (
                flow_name,
                result.report.qubits,
                result.report.t_count,
                result.report.gate_count,
                f"{result.report.runtime_seconds:.2f}",
            )
        )
    print(format_table(
        ["flow", "qubits", "T-count", "Toffoli gates", "runtime [s]"],
        rows,
        title="Reversible-level resources",
    ))

    print("\nMapping the ESOP circuit to Clifford+T (quantum level) ...")
    circuit = results["esop"].circuit
    quantum = map_to_clifford_t(circuit)
    counts = quantum.gate_counts()
    print(f"  qubits (incl. decomposition ancillas): {quantum.num_qubits}")
    print(f"  total gates : {quantum.num_gates()}")
    print(f"  T gates     : {quantum.t_count()}  (T-depth estimate {quantum.t_depth()})")
    print(f"  CNOT gates  : {counts.get('cx', 0)},  Hadamard: {counts.get('h', 0)}")

    if bitwidth <= 4:
        print("\nStatevector check of the Clifford+T circuit (|x>|0> -> |x>|1/x>):")
        input_lines = circuit.input_lines()
        output_lines = circuit.output_lines()
        for x in range(1, 1 << bitwidth):
            basis = 0
            for i, line in input_lines.items():
                if (x >> i) & 1:
                    basis |= 1 << line
            image = simulate_basis_state(quantum, basis)
            y = 0
            for j, line in output_lines.items():
                if (image >> line) & 1:
                    y |= 1 << j
            expected = intdiv_reference(bitwidth, x)
            status = "ok" if y == expected else "MISMATCH"
            print(f"  x = {x:2d}  ->  y = {y:2d} (expected {expected:2d})  {status}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
