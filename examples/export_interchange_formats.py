#!/usr/bin/env python3
"""Exporting flow results to standard interchange formats.

The paper's tool chain moves designs between ABC, CirKit, RevKit and REVS as
files; this example shows the equivalent exports offered by the library so
that circuits can be inspected with external tools:

* the bit-blasted AIG as ASCII AIGER (``.aag``),
* the ESOP cover as a Berkeley PLA file (``.type fr``),
* the reversible circuit as RevLib ``.real``,
* the Clifford+T expansion as OpenQASM 2.0.

Run with::

    python examples/export_interchange_formats.py [n] [output-directory]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import run_flow
from repro.hdl.synthesize import synthesize_reciprocal_design
from repro.io.aiger import write_aiger
from repro.io.pla import write_pla
from repro.io.qasm import write_qasm
from repro.io.realfmt import write_real
from repro.logic.aig_opt import optimize_script
from repro.logic.collapse import collapse_to_esop
from repro.quantum.mapping import map_to_clifford_t


def main(bitwidth: int = 4, output_dir: str = "export_output") -> None:
    directory = Path(output_dir)
    directory.mkdir(exist_ok=True)

    verilog, aig = synthesize_reciprocal_design("intdiv", bitwidth)
    (directory / "intdiv.v").write_text(verilog)
    optimized = optimize_script(aig, "dc2", rounds=1)
    (directory / "intdiv.aag").write_text(write_aiger(optimized))

    cover = collapse_to_esop(optimized)
    (directory / "intdiv.pla").write_text(
        write_pla(cover, input_names=aig.pi_names(), output_names=aig.po_names())
    )

    result = run_flow("esop", "intdiv", bitwidth, p=0)
    (directory / "intdiv.real").write_text(write_real(result.circuit))

    quantum = map_to_clifford_t(result.circuit)
    (directory / "intdiv.qasm").write_text(write_qasm(quantum))

    print(f"INTDIV({bitwidth}) exported to {directory}/:")
    for path in sorted(directory.iterdir()):
        print(f"  {path.name:14s} {path.stat().st_size:6d} bytes")
    print()
    print(f"AIG: {optimized.num_nodes()} AND nodes   ESOP: {cover.num_terms()} terms")
    print(
        f"reversible: {result.report.qubits} qubits, {result.report.t_count} T   "
        f"Clifford+T: {quantum.num_qubits} qubits, {quantum.num_gates()} gates"
    )


if __name__ == "__main__":
    bitwidth = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    output = sys.argv[2] if len(sys.argv) > 2 else "export_output"
    main(bitwidth, output)
