#!/usr/bin/env python3
"""Quickstart: synthesise a reversible reciprocal circuit from Verilog.

This walks the shortest path through the library, mirroring Fig. 1 of the
paper: generate the ``INTDIV(n)`` Verilog design, push it through the
ESOP-based flow and inspect the resulting reversible circuit and its cost
report (qubits / T-count / runtime).

Run with::

    python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import run_flow
from repro.hdl.designs import intdiv_reference, intdiv_verilog


def main(bitwidth: int = 5) -> None:
    print(f"== INTDIV({bitwidth}): generated Verilog ==")
    print(intdiv_verilog(bitwidth))

    print("== Running the ESOP-based flow (p = 0) ==")
    result = run_flow("esop", "intdiv", bitwidth, p=0)
    report = result.report
    print(f"flow stages: {', '.join(result.stage_runtimes)}")
    print(f"qubits      : {report.qubits}")
    print(f"T-count     : {report.t_count}")
    print(f"gates       : {report.gate_count} (largest has {report.max_controls} controls)")
    print(f"runtime     : {report.runtime_seconds:.3f} s")
    print(f"verified    : {report.verified}")

    print("\n== Spot-check the circuit against floor(2^n / x) ==")
    circuit = result.circuit
    for x in (1, 2, 3, (1 << bitwidth) - 1):
        computed = circuit.evaluate(x)
        expected = intdiv_reference(bitwidth, x)
        status = "ok" if computed == expected else "MISMATCH"
        print(f"  x = {x:3d}  ->  y = {computed:3d} (expected {expected:3d})  {status}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
