#!/usr/bin/env python3
"""Synthesising a user-written Verilog block (beyond the reciprocal).

The flows are not tied to the reciprocal: any combinational block written in
the supported Verilog subset can be compiled.  This example uses a small
"population count + threshold" unit — the kind of oracle arithmetic that
shows up in quantum chemistry and optimisation algorithms — and compares the
three flows on it.

Run with::

    python examples/custom_verilog_block.py
"""

from __future__ import annotations

from repro import run_flow
from repro.hdl.synthesize import synthesize_to_netlist
from repro.utils.tables import format_table

POPCOUNT_VERILOG = """
// Population count of a 6-bit word plus a threshold comparison.
module popcount_threshold (
    input  [5:0] data,
    input  [2:0] threshold,
    output [2:0] count,
    output       above
);
    wire [2:0] low  = {2'b00, data[0]} + {2'b00, data[1]} + {2'b00, data[2]};
    wire [2:0] high = {2'b00, data[3]} + {2'b00, data[4]} + {2'b00, data[5]};
    assign count = low + high;
    assign above = count > threshold;
endmodule
"""


def main() -> None:
    # Sanity-check the block with the word-level reference model first.
    netlist = synthesize_to_netlist(POPCOUNT_VERILOG)
    sample = netlist.evaluate({"data": 0b10_0110, "threshold": 2})
    print(f"reference model: popcount(0b100110) = {sample['count']}, above-2 = {sample['above']}")

    rows = []
    for flow_name, kwargs in (
        ("symbolic", {}),
        ("esop", {"p": 0}),
        ("esop", {"p": 1}),
        ("hierarchical", {}),
    ):
        result = run_flow(flow_name, "popcount", 6, verilog=POPCOUNT_VERILOG, **kwargs)
        label = flow_name if not kwargs else f"{flow_name}({', '.join(f'{k}={v}' for k, v in kwargs.items())})"
        rows.append(
            (
                label,
                result.report.qubits,
                result.report.t_count,
                result.report.max_controls,
                f"{result.report.runtime_seconds:.2f}",
                result.report.verified,
            )
        )

    print()
    print(format_table(
        ["flow", "qubits", "T-count", "max controls", "runtime [s]", "verified"],
        rows,
        title="popcount_threshold through the three flows",
    ))


if __name__ == "__main__":
    main()
