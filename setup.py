"""Thin setup.py shim.

The project is configured through ``pyproject.toml``; this file only exists
so that legacy ``pip install -e .`` / ``python setup.py develop`` work in
environments whose setuptools predates PEP 660 editable installs.
"""

from setuptools import setup

setup()
