"""Circuit-level pass benchmark: reversible peepholes and T-depth reporting.

The circuit-level pass framework exists to (a) shrink the synthesised
Toffoli cascades before they are costed and mapped, and (b) realize the
closed-form T-counts as explicit Clifford+T circuits whose T-depth can be
reported.  This bench pins both payoffs on ``INTDIV(8)``:

* the default reversible pipeline (``rev-default``) removes at least 5 %
  of the gates of a recompute-heavy INTDIV(8) cascade, and the optimised
  circuit is differentially verified against the bit-blasted design
  (full, exhaustive check — the reduction is *correct*, not just large),
* a design-space sweep with the explicit ``rtof`` mapping enabled reports
  the T-depth for every Pareto point, and every explicit T-count equals
  the closed-form model (asserted gate-for-gate inside the mapper).
"""

from __future__ import annotations

from conftest import write_result
from repro.core.explorer import pareto_front_of
from repro.core.flows import run_flow
from repro.opt import DEFAULT_REV_PIPELINE, parse_pipeline
from repro.utils.tables import format_table
from repro.verify.differential import check_equivalent

BITWIDTH = 8

#: Required relative gate-count reduction of the reversible pipeline on
#: the recompute-heavy configuration.
MIN_GATE_REDUCTION = 0.05

#: Cascade sources for the reduction table: label -> (flow, parameters).
#: ``lut/eager`` recomputes shared logic per output cone, which is exactly
#: the uncompute/recompute seam structure the cancellation pass removes.
REDUCTION_CONFIGURATIONS = [
    ("lut/eager", "lut", {"strategy": "eager", "k": 4}),
    ("hier/per_output+xmg", "hierarchical",
     {"strategy": "per_output", "xmg_opt": "xmg-default"}),
    ("hier/bennett", "hierarchical", {"strategy": "bennett"}),
]

#: Sweep of the T-depth Pareto table (all mapped under ``rtof``).
PARETO_CONFIGURATIONS = [
    ("esop(p=0)", "esop", {"p": 0}),
    ("esop(p=1)", "esop", {"p": 1}),
    ("esop(p=0)+rev", "esop", {"p": 0, "rev_opt": DEFAULT_REV_PIPELINE}),
    ("hier(bennett)+xmg", "hierarchical",
     {"strategy": "bennett", "xmg_opt": "xmg-default"}),
    ("lut(bennett)", "lut", {"strategy": "bennett", "k": 4}),
    ("lut(eager)+rev", "lut",
     {"strategy": "eager", "k": 4, "rev_opt": DEFAULT_REV_PIPELINE}),
]


def test_rev_pipeline_verified_gate_reduction(benchmark):
    """Gate: >= 5 % verified gate reduction on the recompute-heavy cascade."""
    pipeline = parse_pipeline(DEFAULT_REV_PIPELINE)
    rows = []
    reductions = {}
    for label, flow, parameters in REDUCTION_CONFIGURATIONS:
        result = run_flow(flow, "intdiv", BITWIDTH, verify="off", **parameters)
        circuit = result.circuit
        optimized = pipeline.run(circuit).network

        # The reduction only counts if the optimised circuit still computes
        # the design: exhaustive differential check against the
        # pre-optimisation AIG (the flow's specification).
        spec = result.context.get("spec_aig") or result.context["aig"]
        check = check_equivalent(spec, optimized, mode="full")
        assert check.equivalent, f"{label}: {check.message}"

        reduction = (circuit.num_gates() - optimized.num_gates()) / max(
            circuit.num_gates(), 1
        )
        reductions[label] = reduction
        rows.append(
            (
                label,
                circuit.num_gates(),
                optimized.num_gates(),
                f"{100 * reduction:.1f}%",
                circuit.t_count(),
                optimized.t_count(),
            )
        )
    text = format_table(
        ["cascade", "gates", "gates (opt)", "reduction", "T", "T (opt)"],
        rows,
        title=(
            f"Reversible pipeline ({DEFAULT_REV_PIPELINE}) on "
            f"INTDIV({BITWIDTH}), exhaustively verified"
        ),
    )
    write_result(
        "circuit_pass_reduction",
        text,
        metrics={
            label: round(reduction, 4) for label, reduction in reductions.items()
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "pipeline": DEFAULT_REV_PIPELINE,
            "min_gate_reduction": MIN_GATE_REDUCTION,
        },
    )

    best = max(reductions.values())
    assert best >= MIN_GATE_REDUCTION, (
        f"best verified gate reduction {100 * best:.1f}% below the "
        f"{100 * MIN_GATE_REDUCTION:.0f}% gate"
    )

    benchmark.pedantic(
        lambda: pipeline.run(
            run_flow(
                "lut", "intdiv", BITWIDTH, verify="off",
                strategy="eager", k=4,
            ).circuit
        ),
        rounds=1,
        iterations=1,
    )


def test_pareto_front_reports_t_depth(benchmark):
    """Gate: every Pareto point of the rtof-mapped sweep carries a T-depth."""
    reports = {}
    for label, flow, parameters in PARETO_CONFIGURATIONS:
        result = run_flow(
            flow, "intdiv", BITWIDTH, verify="off",
            map_model="rtof", **parameters,
        )
        report = result.report
        # The explicit mapping realizes the closed-form rtof model exactly.
        assert report.extra["qc_t_count"] == report.t_count, label
        reports[label] = report

    front = pareto_front_of(reports)
    assert front, "empty Pareto front"
    for point in front:
        assert point.report.t_depth is not None, point.configuration
        assert 0 < point.report.t_depth <= point.report.t_count

    rows = [
        (
            p.configuration,
            p.qubits,
            p.t_count,
            p.report.t_depth,
            p.report.qc_depth,
            p.report.qc_qubits,
        )
        for p in front
    ]
    text = format_table(
        ["Pareto point", "qubits", "T-count", "T-depth", "depth", "mapped qubits"],
        rows,
        title=(
            f"Pareto front of INTDIV({BITWIDTH}) with explicit rtof mapping"
        ),
    )
    write_result(
        "circuit_pass_pareto_tdepth",
        text,
        metrics={
            p.configuration: {
                "qubits": p.qubits,
                "t_count": p.t_count,
                "t_depth": p.report.t_depth,
                "qc_depth": p.report.qc_depth,
            }
            for p in front
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "map_model": "rtof",
        },
    )

    benchmark.pedantic(
        run_flow,
        args=("esop", "intdiv", BITWIDTH),
        kwargs={"verify": False, "p": 0, "map_model": "rtof"},
        rounds=3,
        iterations=1,
    )
