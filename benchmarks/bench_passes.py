"""Pass-manager benchmark: XMG MAJ-count reduction and pipeline overhead.

The XMG pass library exists to cut the MAJ count — and therefore the
Toffoli blocks and the T-count — of the hierarchical and LUT flows.  This
bench pins that payoff on ``INTDIV(8)`` with three acceptance gates:

* the default XMG pipeline (``xmg-default``) reduces the MAJ count of the
  mapped ``INTDIV(8)`` XMG by at least 10 %,
* the hierarchical and LUT flows report *strictly lower* T-count with the
  pipeline enabled than with it disabled, both runs differentially
  verified against the bit-blasted design,
* the pipeline-based AIG optimise stage does not regress wall-time
  against the legacy ``optimize_script`` path it replaced (the pipeline
  wraps the same passes; the tolerance absorbs CI noise).
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.core.flows import frontend_artifacts, run_flow
from repro.logic.aig_opt import resyn2
from repro.logic.xmg_mapping import aig_to_xmg
from repro.opt import DEFAULT_XMG_PIPELINE, parse_pipeline
from repro.utils.tables import format_table
from repro.verify.differential import check_equivalent

BITWIDTH = 8

#: Required relative MAJ-count reduction of the default XMG pipeline.
MIN_MAJ_REDUCTION = 0.10

#: Wall-time tolerance of the pipeline-based optimise stage vs the legacy
#: fixed-script loop (both run the same passes; >1 absorbs timer noise).
MAX_OPTIMIZE_SLOWDOWN = 1.5


def _optimized_intdiv_xmg():
    artifacts = frontend_artifacts("intdiv", BITWIDTH)
    aig = artifacts["aig"]
    optimized = parse_pipeline("(resyn2)*2").run(aig).network
    return aig, aig_to_xmg(optimized, k=4)


def test_default_xmg_pipeline_maj_reduction(benchmark):
    """Gate: >= 10 % MAJ reduction on the INTDIV(8) XMG, equivalence kept."""
    _, xmg = _optimized_intdiv_xmg()
    pipeline = parse_pipeline(DEFAULT_XMG_PIPELINE)
    outcome = pipeline.run(xmg)
    optimized = outcome.network

    check = check_equivalent(xmg, optimized, mode="full")
    assert check.equivalent, f"pipeline broke INTDIV({BITWIDTH}): {check.message}"

    reduction = (xmg.num_maj() - optimized.num_maj()) / xmg.num_maj()
    rows = [
        ("MAJ", xmg.num_maj(), optimized.num_maj(), f"{100 * reduction:.1f}%"),
        ("XOR", xmg.num_xor(), optimized.num_xor(), "-"),
        ("gates", xmg.num_gates(), optimized.num_gates(), "-"),
        ("depth", xmg.depth(), optimized.depth(), "-"),
    ]
    text = format_table(
        ["metric", "before", "after", "reduction"],
        rows,
        title=(
            f"Default XMG pipeline ({DEFAULT_XMG_PIPELINE}) on "
            f"INTDIV({BITWIDTH})"
        ),
    )
    text += "\n\nPer-pass log:\n" + "\n".join(
        "  " + report.summary() for report in outcome.reports
    )
    write_result(
        "xmg_pass_reduction",
        text,
        metrics={
            "maj_before": xmg.num_maj(),
            "maj_after": optimized.num_maj(),
            "maj_reduction": round(reduction, 4),
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "pipeline": DEFAULT_XMG_PIPELINE,
            "min_maj_reduction": MIN_MAJ_REDUCTION,
        },
    )

    assert reduction >= MIN_MAJ_REDUCTION, (
        f"MAJ reduction {100 * reduction:.1f}% below the "
        f"{100 * MIN_MAJ_REDUCTION:.0f}% gate"
    )

    benchmark.pedantic(
        lambda: pipeline.run(xmg), rounds=3, iterations=1
    )


def test_pipeline_cuts_t_count_across_flows(benchmark):
    """Gate: hierarchical + lut report strictly lower T with the pipeline on."""
    rows = []
    for flow, enabled_params, disabled_params in (
        (
            "hierarchical",
            {"strategy": "bennett", "xmg_opt": DEFAULT_XMG_PIPELINE},
            {"strategy": "bennett"},
        ),
        (
            "lut",
            {"strategy": "bennett", "k": 4, "xmg_opt": DEFAULT_XMG_PIPELINE},
            {"strategy": "bennett", "k": 4},
        ),
    ):
        enabled = run_flow(
            flow, "intdiv", BITWIDTH, verify="full", **enabled_params
        )
        disabled = run_flow(
            flow, "intdiv", BITWIDTH, verify="full", **disabled_params
        )
        assert enabled.report.verified is True
        assert disabled.report.verified is True
        assert enabled.report.t_count < disabled.report.t_count, (
            f"{flow}: pipeline enabled T-count {enabled.report.t_count} not "
            f"below disabled {disabled.report.t_count}"
        )
        rows.append(
            (
                flow,
                disabled.report.t_count,
                enabled.report.t_count,
                disabled.report.qubits,
                enabled.report.qubits,
            )
        )
    write_result(
        "pipeline_t_count",
        format_table(
            ["flow", "T (off)", "T (on)", "qubits (off)", "qubits (on)"],
            rows,
            title=f"Optimisation pipelines on INTDIV({BITWIDTH}), verified",
        ),
        metrics={
            row[0]: {"t_off": row[1], "t_on": row[2]} for row in rows
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "pipeline": DEFAULT_XMG_PIPELINE,
        },
    )
    benchmark.pedantic(
        run_flow,
        args=("hierarchical", "intdiv", BITWIDTH),
        kwargs={"verify": False, "xmg_opt": DEFAULT_XMG_PIPELINE},
        rounds=1,
        iterations=1,
    )


def test_optimize_stage_wall_time_not_regressed(benchmark):
    """Gate: the pipeline stage is not slower than the legacy script loop."""
    artifacts = frontend_artifacts("intdiv", BITWIDTH)
    aig = artifacts["aig"]

    def legacy():
        # The pre-pass-manager optimise stage: a fixed two-round script
        # loop keeping the smaller result.
        best = aig.cleanup()
        current = best
        for _ in range(2):
            current = resyn2(current)
            if current.num_nodes() < best.num_nodes():
                best = current
        return best

    pipeline = parse_pipeline("(resyn2)*2")

    def managed():
        return pipeline.run(aig).network

    # Interleave and keep per-variant minima: robust against one-off jitter.
    legacy_times, managed_times = [], []
    for _ in range(3):
        start = time.perf_counter()
        legacy_result = legacy()
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        managed_result = managed()
        managed_times.append(time.perf_counter() - start)
    assert managed_result.num_nodes() <= legacy_result.num_nodes()

    legacy_best = min(legacy_times)
    managed_best = min(managed_times)
    write_result(
        "pass_manager_overhead",
        format_table(
            ["variant", "best of 3 [s]"],
            [
                ("legacy optimize_script loop", f"{legacy_best:.3f}"),
                ("pass-manager pipeline", f"{managed_best:.3f}"),
            ],
            title=f"Optimise stage wall-time on INTDIV({BITWIDTH}), resyn2 x2",
        ),
        metrics={
            "legacy_seconds": round(legacy_best, 4),
            "pipeline_seconds": round(managed_best, 4),
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "max_slowdown": MAX_OPTIMIZE_SLOWDOWN,
        },
    )
    assert managed_best <= legacy_best * MAX_OPTIMIZE_SLOWDOWN, (
        f"pipeline stage {managed_best:.3f}s vs legacy {legacy_best:.3f}s "
        f"exceeds the {MAX_OPTIMIZE_SLOWDOWN}x tolerance"
    )

    benchmark.pedantic(managed, rounds=3, iterations=1)
