"""Symbolic-flow kernel micro-benchmark: BDD expansion and TBS vs oracles.

The two hot kernels of the symbolic (BDD-based) flow were vectorised:

* BDD-to-truth-table expansion
  (:meth:`repro.logic.bdd.BddManager.to_truth_tables`) replaces the
  per-assignment recursive walk with one memoised bottom-up sweep shared
  across all roots (packed NumPy words on wide functions), and
* transformation-based synthesis
  (:func:`repro.reversible.tbs.synthesize_permutation_gates`) replaces the
  per-row ``np.nonzero(perm == row)`` scans and full-table gate
  applications with a bit-sliced kernel over packed big-int bit columns.

The originals stay in the tree as ``*_reference`` oracles; this bench
measures both rewrites against them on INTDIV — the BDD expansion at the
largest bit-width of the Table 2 sweep, TBS on the embedded permutation of
the paper's default bit-width 8 (15 lines, the largest width the explicit
oracle can time in CI) — asserting bit-exact / gate-for-gate agreement and
a >= 5x speedup on each kernel.  ``collapse_to_bdd`` time is reported
informationally: collapsing is a sequence of dependent BDD apply calls (no
batch parallelism to exploit), and at every feasible width it already costs
less than a single reference expansion.

Two rider checks make the bench a regression net rather than a stopwatch:

* every symbolic-flow golden point re-runs with ``verify="full"`` so the
  differential checker confirms the kernels did not change any synthesised
  circuit, and
* the ``xmg-default`` pipeline re-runs with the structural-prefix cut
  cache cleared and warm: the warm runs must produce the identical network
  at a measurably lower wall time.
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.core.flows import frontend_artifacts, run_flow
from repro.logic.collapse import bdd_to_truth_table, collapse_to_bdd
from repro.logic.cuts import (
    clear_cut_enumeration_cache,
    cut_enumeration_cache_stats,
)
from repro.logic.network import network_cost
from repro.logic.xmg_mapping import aig_to_xmg
from repro.opt import as_pipeline
from repro.reversible.embedding import optimum_embedding
from repro.reversible.tbs import (
    synthesize_permutation_gates,
    synthesize_permutation_gates_reference,
)
from repro.utils.tables import format_table

DESIGN = "intdiv"
BDD_BITWIDTH = 12  # largest width of the Table 2 sweep (REPRO_BENCH_LARGE)
TBS_BITWIDTH = 8  # the paper's default width; embeds into 15 lines
REPEATS = 5
#: The TBS oracle runs for tens of seconds per repetition; two repetitions
#: bound its best-of without dominating CI (its run-to-run variance is far
#: below the margin the 5x gate leaves).
REF_REPEATS = 2
MIN_SPEEDUP = 5.0

#: The symbolic-flow rows of tests/test_golden_costs.py::GOLDEN_COSTS —
#: re-run here under full differential verification.  Keep in sync.
SYMBOLIC_GOLDEN_POINTS = [
    ("intdiv", 3, 5, 290),
    ("intdiv", 4, 7, 2959),
    ("intdiv", 5, 9, 25264),
    ("newton", 2, 3, 28),
    ("newton", 3, 5, 282),
]


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_symbolic_kernels_vs_reference(benchmark):
    # --- BDD expansion: shared bottom-up sweep vs the per-root walk ------
    aig = frontend_artifacts(DESIGN, BDD_BITWIDTH)["aig"]
    collapse_seconds, (manager, roots) = _best_of(
        REPEATS, lambda: collapse_to_bdd(aig)
    )
    ref_seconds, ref_tables = _best_of(
        REPEATS, lambda: [manager.to_truth_table_reference(r) for r in roots]
    )
    sweep_seconds, sweep_tables = _best_of(
        REPEATS, lambda: manager.to_truth_tables(roots)
    )
    assert sweep_tables == ref_tables
    bdd_speedup = ref_seconds / sweep_seconds

    # --- TBS: bit-sliced kernel vs the scanning oracle, gate for gate ----
    tbs_aig = frontend_artifacts(DESIGN, TBS_BITWIDTH)["aig"]
    tbs_manager, tbs_roots = collapse_to_bdd(tbs_aig)
    embedding = optimum_embedding(bdd_to_truth_table(tbs_manager, tbs_roots))
    tbs_ref_seconds, ref_gates = _best_of(
        REF_REPEATS,
        lambda: synthesize_permutation_gates_reference(
            embedding.permutation, embedding.num_lines
        ),
    )
    tbs_fast_seconds, fast_gates = _best_of(
        REPEATS,
        lambda: synthesize_permutation_gates(
            embedding.permutation, embedding.num_lines
        ),
    )
    assert fast_gates == ref_gates
    tbs_speedup = tbs_ref_seconds / tbs_fast_seconds

    # --- differential equivalence on every symbolic golden point ---------
    golden_checked = 0
    for design, bitwidth, qubits, t_count in SYMBOLIC_GOLDEN_POINTS:
        result = run_flow("symbolic", design, bitwidth, verify="full")
        assert result.report.verified is True
        assert (result.report.qubits, result.report.t_count) == (
            qubits,
            t_count,
        ), f"{design}({bitwidth}) symbolic drifted"
        golden_checked += 1

    # --- cut cache: warm xmg-default reruns, identical and faster ---------
    xmg = aig_to_xmg(tbs_aig)
    pipeline = as_pipeline("xmg-default")
    clear_cut_enumeration_cache()
    cold_seconds, cold = _best_of(1, lambda: pipeline.run(xmg))
    warm_seconds, warm = _best_of(REPEATS, lambda: pipeline.run(xmg))
    assert network_cost(warm.network) == network_cost(cold.network)
    cache_stats = cut_enumeration_cache_stats()
    assert cache_stats["hits"] >= REPEATS
    assert warm_seconds < cold_seconds, (
        f"warm pipeline ({warm_seconds:.3f}s) not faster than the "
        f"cache-cold run ({cold_seconds:.3f}s)"
    )

    rows = [
        (
            f"BDD expansion ({len(roots)} roots, {manager.num_vars} vars)",
            f"{ref_seconds * 1e3:.2f}",
            f"{sweep_seconds * 1e3:.2f}",
            f"{bdd_speedup:.1f}x",
        ),
        (
            f"TBS ({embedding.num_lines} lines, {len(ref_gates)} gates)",
            f"{tbs_ref_seconds * 1e3:.2f}",
            f"{tbs_fast_seconds * 1e3:.2f}",
            f"{tbs_speedup:.1f}x",
        ),
    ]
    text = format_table(
        ["kernel", "reference [ms]", "vectorized [ms]", "speedup"],
        rows,
        title=f"Symbolic kernels on {DESIGN.upper()}"
        f"({BDD_BITWIDTH}/{TBS_BITWIDTH})",
    )
    text += (
        f"\ncollapse_to_bdd({DESIGN}, {BDD_BITWIDTH}): "
        f"{collapse_seconds * 1e3:.2f} ms (sequential apply chain, reported"
        " informationally)"
        f"\nsymbolic golden points under full verification: {golden_checked}/"
        f"{len(SYMBOLIC_GOLDEN_POINTS)} ok"
        f"\nxmg-default on {DESIGN}({TBS_BITWIDTH}): cold "
        f"{cold_seconds * 1e3:.1f} ms, warm {warm_seconds * 1e3:.1f} ms "
        f"({cache_stats['nodes_reused']} cut nodes reused)"
    )
    write_result(
        "symbolic_kernels",
        text,
        metrics={
            "bdd_speedup": round(bdd_speedup, 2),
            "tbs_speedup": round(tbs_speedup, 2),
            "collapse_ms": round(collapse_seconds * 1e3, 2),
            "tbs_gates": len(ref_gates),
            "golden_points_verified": golden_checked,
            "refactor_cold_ms": round(cold_seconds * 1e3, 2),
            "refactor_warm_ms": round(warm_seconds * 1e3, 2),
            "cut_nodes_reused": cache_stats["nodes_reused"],
        },
        config={
            "design": DESIGN,
            "bdd_bitwidth": BDD_BITWIDTH,
            "tbs_bitwidth": TBS_BITWIDTH,
            "tbs_lines": embedding.num_lines,
            "min_speedup": MIN_SPEEDUP,
        },
    )

    assert bdd_speedup >= MIN_SPEEDUP, f"BDD sweep only {bdd_speedup:.1f}x"
    assert tbs_speedup >= MIN_SPEEDUP, f"TBS kernel only {tbs_speedup:.1f}x"

    benchmark.pedantic(
        manager.to_truth_tables, args=(roots,), rounds=5, iterations=1
    )
