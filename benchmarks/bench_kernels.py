"""Kernel micro-benchmark: vectorised cut tables and PSDKRO vs the oracles.

The two hot kernels of the LUT flow — cut truth-table extraction
(:func:`repro.logic.cuts.cut_truth_tables`) and PSDKRO ESOP extraction
(:func:`repro.logic.esop.psdkro_cubes`) — were rewritten as a batch NumPy
simulation and a memoised cofactor-reusing recursion.  The original
implementations stay in the tree as reference oracles, and this bench
measures both rewrites against them on INTDIV(8) at k=4 (the paper's
default bit-width), asserting bit-exact agreement and a >= 5x speedup on
each kernel.

Two rider checks make the bench a regression net rather than a stopwatch:

* every LUT-flow golden point re-runs with ``verify="full"`` so the
  differential checker (the ABC-``cec`` analogue) confirms the kernels
  did not change any synthesised circuit, and
* a warm ``jobs=2`` explorer sweep asserts the fork-once pool handoff
  keeps the per-task payload to the configuration tuple — the shared AIG
  is no longer pickled per configuration.
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.core.explorer import ExplorationEngine, ParameterGrid, build_sweep
from repro.core.flows import frontend_artifacts, run_flow
from repro.logic.cuts import cut_truth_table_reference, cut_truth_tables, enumerate_cuts
from repro.logic.esop import (
    psdkro_clear_cache,
    psdkro_cubes,
    psdkro_cubes_reference,
)
from repro.utils.tables import format_table

DESIGN = "intdiv"
BITWIDTH = 8
CUT_K = 4
REPEATS = 5
MIN_SPEEDUP = 5.0

#: The LUT-flow rows of tests/test_golden_costs.py::GOLDEN_COSTS — re-run
#: here under full differential verification.  Keep in sync with that table.
LUT_GOLDEN_POINTS = [
    ("intdiv", 3, {"strategy": "bennett", "k": 2}, 64, 658),
    ("intdiv", 3, {"strategy": "bennett", "k": 3}, 9, 58),
    ("intdiv", 3, {"strategy": "eager", "k": 2}, 62, 1106),
    ("intdiv", 3, {"strategy": "bounded", "k": 2, "max_pebbles": 0.5}, 30, 1302),
    ("intdiv", 4, {"strategy": "bennett", "k": 3}, 55, 1088),
    ("intdiv", 4, {"strategy": "eager", "k": 3}, 52, 2488),
    ("intdiv", 4, {"strategy": "bounded", "k": 3, "max_pebbles": 0.5}, 32, 2270),
]


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_vectorized_kernels_vs_reference(benchmark):
    aig = frontend_artifacts(DESIGN, BITWIDTH)["aig"]
    cuts = [
        cut
        for node_cuts in enumerate_cuts(aig, k=CUT_K).values()
        for cut in node_cuts
    ]

    # --- cut truth-table extraction: batch kernel vs the cone walk -------
    ref_seconds, ref_tables = _best_of(
        REPEATS, lambda: [cut_truth_table_reference(aig, c) for c in cuts]
    )
    batch_seconds, batch_tables = _best_of(
        REPEATS, lambda: cut_truth_tables(aig, cuts)
    )
    assert batch_tables == ref_tables
    cut_speedup = ref_seconds / batch_seconds

    # --- PSDKRO extraction: fast memoised path vs the reference ----------
    # The work items are exactly the tables the LUT flow would synthesise.
    items = [
        (table, len(cut.leaves))
        for table, cut in zip(ref_tables, cuts)
        if cut.leaves
    ]

    def run_fast():
        # Fresh memo per timed run, so best-of-N measures extraction, not
        # a dictionary lookup of the previous round's answers.
        psdkro_clear_cache()
        return [psdkro_cubes(table, nv) for table, nv in items]

    esop_ref_seconds, ref_covers = _best_of(
        REPEATS,
        lambda: [psdkro_cubes_reference(table, nv) for table, nv in items],
    )
    esop_fast_seconds, fast_covers = _best_of(REPEATS, run_fast)
    assert fast_covers == ref_covers
    esop_speedup = esop_ref_seconds / esop_fast_seconds

    # --- differential equivalence on every LUT-flow golden point ---------
    golden_checked = 0
    for design, bitwidth, parameters, qubits, t_count in LUT_GOLDEN_POINTS:
        result = run_flow("lut", design, bitwidth, verify="full", **parameters)
        assert result.report.verified is True
        assert (result.report.qubits, result.report.t_count) == (
            qubits,
            t_count,
        ), f"{design}({bitwidth}) {parameters} drifted"
        golden_checked += 1

    # --- fork-once pool handoff: per-task payload stays tiny --------------
    engine = ExplorationEngine(jobs=2, verify=False)
    outcomes = engine.run(
        build_sweep(DESIGN, 3, [ParameterGrid("esop", p=[0, 1])])
    )
    assert all(o.ok for o in outcomes)
    payload_bytes = engine.last_task_payload_bytes
    assert 0 < payload_bytes < 2048, f"pool payload grew to {payload_bytes}B"

    rows = [
        (
            f"cut truth tables ({len(cuts)} cuts, k={CUT_K})",
            f"{ref_seconds * 1e3:.2f}",
            f"{batch_seconds * 1e3:.2f}",
            f"{cut_speedup:.1f}x",
        ),
        (
            f"PSDKRO extraction ({len(items)} tables)",
            f"{esop_ref_seconds * 1e3:.2f}",
            f"{esop_fast_seconds * 1e3:.2f}",
            f"{esop_speedup:.1f}x",
        ),
    ]
    text = format_table(
        ["kernel", "reference [ms]", "vectorized [ms]", "speedup"],
        rows,
        title=f"Synthesis kernels on {DESIGN.upper()}({BITWIDTH})",
    )
    text += (
        f"\nlut golden points under full verification: {golden_checked}/"
        f"{len(LUT_GOLDEN_POINTS)} ok"
        f"\nwarm pool per-task payload: {payload_bytes} bytes"
    )
    write_result(
        "kernels",
        text,
        metrics={
            "cut_speedup": round(cut_speedup, 2),
            "esop_speedup": round(esop_speedup, 2),
            "num_cuts": len(cuts),
            "golden_points_verified": golden_checked,
            "pool_task_payload_bytes": payload_bytes,
        },
        config={
            "design": DESIGN,
            "bitwidth": BITWIDTH,
            "k": CUT_K,
            "min_speedup": MIN_SPEEDUP,
        },
    )

    assert cut_speedup >= MIN_SPEEDUP, f"cut kernel only {cut_speedup:.1f}x"
    assert esop_speedup >= MIN_SPEEDUP, f"esop kernel only {esop_speedup:.1f}x"

    benchmark.pedantic(
        cut_truth_tables, args=(aig, cuts), rounds=5, iterations=1
    )
