"""Ablations: the design choices DESIGN.md calls out.

The paper's flows contain several tuning knobs whose influence the running
text discusses qualitatively (optimisation effort at the AIG level, the LUT
size of the XMG mapping, the factoring parameter, the cleanup strategy, the
bidirectional mode of the transformation-based synthesis).  This bench
quantifies each knob on a fixed design so that the trade-offs can be
inspected — and asserts the directions that the paper's argument relies on.
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.core.flows import run_flow
from repro.hdl.synthesize import synthesize_reciprocal_design
from repro.logic.aig_opt import optimize_script
from repro.logic.collapse import collapse_to_esop
from repro.logic.truth_table import TruthTable
from repro.logic.xmg_mapping import aig_to_xmg
from repro.reversible.esop_synth import esop_synthesis
from repro.reversible.hierarchical import hierarchical_synthesis
from repro.reversible.optimize import optimize_circuit
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.reversible.tbs import synthesize_permutation_gates
from repro.reversible.embedding import optimum_embedding
from repro.hdl.designs import intdiv_reference
from repro.quantum.tcount import mct_t_count
from repro.utils.tables import format_table

DESIGN_N = 8


@pytest.fixture(scope="module")
def intdiv_aig():
    _, aig = synthesize_reciprocal_design("intdiv", DESIGN_N)
    return aig


# -- AIG optimisation effort ---------------------------------------------------


def test_ablation_aig_optimization(benchmark, intdiv_aig):
    """More AIG optimisation never hurts the XMG-level T-count much."""
    rows = []
    results = {}
    for rounds in (0, 1, 2):
        aig = intdiv_aig if rounds == 0 else optimize_script(intdiv_aig, "resyn2", rounds)
        xmg = aig_to_xmg(aig, k=4)
        circuit = hierarchical_synthesis(xmg)
        results[rounds] = circuit
        rows.append((rounds, aig.num_nodes(), xmg.num_gates(), circuit.num_lines(), circuit.t_count()))
    text = benchmark.pedantic(
        format_table,
        args=(["resyn2 rounds", "AIG nodes", "XMG gates", "qubits", "T-count"], rows),
        kwargs={"title": f"Ablation: AIG optimisation effort (INTDIV({DESIGN_N}), hierarchical flow)"},
        rounds=1,
        iterations=1,
    )
    write_result(
        "ablation_aig_optimization",
        text,
        metrics={
            str(rounds): {"qubits": c.num_lines(), "t_count": c.t_count()}
            for rounds, c in results.items()
        },
        config={"design": "intdiv", "bitwidth": DESIGN_N, "flow": "hierarchical"},
    )
    assert results[2].t_count() <= results[0].t_count() * 1.2


def test_ablation_lut_size(intdiv_aig):
    """Larger LUTs reduce the node count but may grow individual cubes."""
    rows = []
    t_counts = {}
    for k in (3, 4, 5):
        xmg = aig_to_xmg(optimize_script(intdiv_aig, "dc2", 1), k=k)
        circuit = hierarchical_synthesis(xmg)
        t_counts[k] = circuit.t_count()
        rows.append((k, xmg.num_maj(), xmg.num_xor(), circuit.num_lines(), circuit.t_count()))
    write_result(
        "ablation_lut_size",
        format_table(
            ["k", "MAJ nodes", "XOR nodes", "qubits", "T-count"],
            rows,
            title=f"Ablation: xmglut LUT size (INTDIV({DESIGN_N}))",
        ),
        metrics={str(k): t for k, t in t_counts.items()},
        config={"design": "intdiv", "bitwidth": DESIGN_N, "k": [3, 4, 5]},
    )
    # All LUT sizes must produce working circuits of comparable magnitude.
    assert max(t_counts.values()) <= 4 * min(t_counts.values())


# -- ESOP factoring and minimisation ---------------------------------------------


def test_ablation_esop_minimization(intdiv_aig):
    """Exorcism-style minimisation reduces (or keeps) the cube count."""
    optimized = optimize_script(intdiv_aig, "dc2", 1)
    raw = collapse_to_esop(optimized, minimize=False)
    minimized = collapse_to_esop(optimized, minimize=True)
    raw_circuit = esop_synthesis(raw)
    minimized_circuit = esop_synthesis(minimized)
    rows = [
        ("raw PSDKRO", raw.num_terms(), raw_circuit.t_count()),
        ("+ exorcism", minimized.num_terms(), minimized_circuit.t_count()),
    ]
    write_result(
        "ablation_esop_minimization",
        format_table(
            ["cover", "terms", "T-count"],
            rows,
            title=f"Ablation: ESOP minimisation (INTDIV({DESIGN_N}))",
        ),
        metrics={
            "raw_terms": raw.num_terms(),
            "minimized_terms": minimized.num_terms(),
            "raw_t": raw_circuit.t_count(),
            "minimized_t": minimized_circuit.t_count(),
        },
        config={"design": "intdiv", "bitwidth": DESIGN_N},
    )
    assert minimized.num_terms() <= raw.num_terms()
    assert minimized_circuit.t_count() <= raw_circuit.t_count()


def test_ablation_factoring_parameter(intdiv_aig):
    """Sweep of the REVS factoring parameter p (qubits vs T-count)."""
    cover = collapse_to_esop(optimize_script(intdiv_aig, "dc2", 1))
    rows = []
    t_by_p = {}
    for p in (0, 1, 2, 3):
        circuit = esop_synthesis(cover, p=p)
        t_by_p[p] = circuit.t_count()
        rows.append((p, circuit.num_lines(), circuit.num_gates(), circuit.t_count()))
    write_result(
        "ablation_factoring",
        format_table(
            ["p", "qubits", "gates", "T-count"],
            rows,
            title=f"Ablation: REVS factoring parameter (INTDIV({DESIGN_N}))",
        ),
        metrics={str(p): t for p, t in t_by_p.items()},
        config={"design": "intdiv", "bitwidth": DESIGN_N, "p": [0, 1, 2, 3]},
    )
    assert t_by_p[1] <= t_by_p[0] * 1.15
    rows_by_p = {row[0]: row for row in rows}
    assert rows_by_p[1][1] >= rows_by_p[0][1]  # factoring costs qubits


# -- TBS options -------------------------------------------------------------------


def test_ablation_tbs_bidirectional():
    """The bidirectional mode never loses against the unidirectional one by much."""
    n = 5
    table = TruthTable.from_callable(lambda x: intdiv_reference(n, x), n, n)
    embedding = optimum_embedding(table)
    rows = []
    costs = {}
    for bidirectional in (False, True):
        gates = synthesize_permutation_gates(
            embedding.permutation, embedding.num_lines, bidirectional=bidirectional
        )
        t_count = sum(mct_t_count(g.num_controls()) for g in gates)
        costs[bidirectional] = t_count
        rows.append(("bidirectional" if bidirectional else "unidirectional", len(gates), t_count))
    write_result(
        "ablation_tbs_direction",
        format_table(
            ["mode", "gates", "T-count"],
            rows,
            title=f"Ablation: transformation-based synthesis direction (INTDIV({n}))",
        ),
        metrics={
            "unidirectional_t": costs[False],
            "bidirectional_t": costs[True],
        },
        config={"design": "intdiv", "bitwidth": n},
    )
    assert costs[True] <= costs[False] * 1.1


# -- cleanup strategy and post-optimisation ----------------------------------------


def test_ablation_cleanup_strategy(intdiv_aig):
    """Bennett vs per-output cleanup: qubits/T-count trade-off."""
    xmg = aig_to_xmg(optimize_script(intdiv_aig, "dc2", 1), k=4)
    rows = []
    circuits = {}
    for strategy in ("bennett", "per_output"):
        circuit = hierarchical_synthesis(xmg, strategy=strategy)
        circuits[strategy] = circuit
        rows.append((strategy, circuit.num_lines(), circuit.num_gates(), circuit.t_count()))
    write_result(
        "ablation_cleanup_strategy",
        format_table(
            ["strategy", "qubits", "gates", "T-count"],
            rows,
            title=f"Ablation: hierarchical cleanup strategy (INTDIV({DESIGN_N}))",
        ),
        metrics={
            strategy: {"qubits": c.num_lines(), "t_count": c.t_count()}
            for strategy, c in circuits.items()
        },
        config={"design": "intdiv", "bitwidth": DESIGN_N},
    )
    assert circuits["per_output"].num_lines() <= circuits["bennett"].num_lines()
    assert circuits["per_output"].num_gates() >= circuits["bennett"].num_gates()


def test_ablation_post_optimization(intdiv_aig):
    """The peephole pass only ever removes gates."""
    xmg = aig_to_xmg(optimize_script(intdiv_aig, "dc2", 1), k=4)
    circuit = hierarchical_synthesis(xmg)
    optimized = optimize_circuit(circuit)
    rows = [
        ("as synthesised", circuit.num_gates(), circuit.t_count()),
        ("peephole optimised", optimized.num_gates(), optimized.t_count()),
    ]
    write_result(
        "ablation_post_optimization",
        format_table(
            ["circuit", "gates", "T-count"],
            rows,
            title=f"Ablation: reversible peephole optimisation (INTDIV({DESIGN_N}), hierarchical)",
        ),
        metrics={
            "gates_before": circuit.num_gates(),
            "gates_after": optimized.num_gates(),
            "t_before": circuit.t_count(),
            "t_after": optimized.t_count(),
        },
        config={"design": "intdiv", "bitwidth": DESIGN_N, "flow": "hierarchical"},
    )
    assert optimized.num_gates() <= circuit.num_gates()
    assert optimized.t_count() <= circuit.t_count()
