"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  Because the interesting output is the paper-style table (and not
only the wall-clock statistics collected by pytest-benchmark), each bench
writes its table to ``benchmarks/results/<name>.txt`` and echoes it to
stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables inline.

Next to every table a machine-readable ``BENCH_<name>.json`` is written —
the bench's key metrics plus a timestamp-free echo of the configuration
that produced them — so the performance trajectory is diffable across
commits and collectable as a CI artifact.

Environment knobs:

* ``REPRO_BENCH_LARGE=1``  — also run the larger bit-widths (closer to the
  paper's ranges; substantially slower in pure Python),
* ``REPRO_BENCH_VERIFY=1`` — verify every synthesised circuit against the
  bit-blasted design during the benchmarks (slower).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def large_benchmarks_enabled() -> bool:
    """Whether the larger (paper-scale) bit-widths should also run."""
    return os.environ.get("REPRO_BENCH_LARGE", "0") == "1"


def verification_enabled() -> bool:
    """Whether benchmark runs should also verify the circuits."""
    return os.environ.get("REPRO_BENCH_VERIFY", "0") == "1"


def write_result(
    name: str,
    text: str,
    metrics: Optional[Dict[str, Any]] = None,
    config: Optional[Dict[str, Any]] = None,
) -> None:
    """Persist one bench result: a paper-style table plus machine JSON.

    ``metrics`` are the bench's headline numbers (gate counts, speedups,
    ...); ``config`` echoes the knobs that produced them (bit-widths,
    thresholds).  Both land in ``BENCH_<name>.json`` without any
    timestamp, so two runs of an unchanged tree write byte-identical
    files and the perf trajectory diffs cleanly across commits.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    payload = {
        "bench": name,
        "config": dict(config or {}),
        "metrics": dict(metrics or {}),
    }
    json_path = RESULTS_DIR / f"BENCH_{name}.json"
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[{name}] written to {path} (+ {json_path.name})\n{text}")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
