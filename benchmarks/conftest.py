"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section.  Because the interesting output is the paper-style table (and not
only the wall-clock statistics collected by pytest-benchmark), each bench
writes its table to ``benchmarks/results/<name>.txt`` and echoes it to
stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables inline.

Environment knobs:

* ``REPRO_BENCH_LARGE=1``  — also run the larger bit-widths (closer to the
  paper's ranges; substantially slower in pure Python),
* ``REPRO_BENCH_VERIFY=1`` — verify every synthesised circuit against the
  bit-blasted design during the benchmarks (slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def large_benchmarks_enabled() -> bool:
    """Whether the larger (paper-scale) bit-widths should also run."""
    return os.environ.get("REPRO_BENCH_LARGE", "0") == "1"


def verification_enabled() -> bool:
    """Whether benchmark runs should also verify the circuits."""
    return os.environ.get("REPRO_BENCH_VERIFY", "0") == "1"


def write_result(name: str, text: str) -> None:
    """Persist a paper-style table under ``benchmarks/results`` and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] written to {path}\n{text}")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
