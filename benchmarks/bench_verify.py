"""Verification micro-benchmark: bit-parallel vs per-input simulation.

The verify subsystem's reason to exist is that packing 64 test vectors per
``uint64`` word makes the ABC-``cec``-style check ~64x cheaper per
simulation call.  This bench measures exactly that on an 8-input design
(the paper's default bit-width): the exhaustive 256-pattern check of the
synthesised reversible circuit and of the bit-blasted AIG, once with the
legacy per-input loop (``circuit.evaluate`` / ``aig.simulate_minterm``)
and once with :mod:`repro.verify.bitsim`.  The acceptance bar is a >= 10x
speedup on the reversible-circuit check; in practice the margin is much
larger.
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.core.flows import run_flow
from repro.utils.tables import format_table
from repro.verify import bitsim

BITWIDTH = 8
REPEATS = 3


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bit_parallel_vs_per_input(benchmark):
    flow_result = run_flow(
        "hierarchical", "intdiv", BITWIDTH, verify=False, strategy="bennett"
    )
    circuit = flow_result.circuit
    aig = flow_result.context["aig"]
    num_patterns = 1 << circuit.num_inputs()
    batch = bitsim.exhaustive_batch(circuit.num_inputs())

    loop_seconds, loop_words = _best_of(
        REPEATS, lambda: [circuit.evaluate(x) for x in range(num_patterns)]
    )
    parallel_seconds, outputs = _best_of(
        REPEATS, lambda: bitsim.simulate_reversible(circuit, batch)
    )
    # Identical verdicts: the bit-parallel engine computes the very same
    # output words as the per-input loop.
    assert [
        bitsim.output_word_at(outputs, x) for x in range(num_patterns)
    ] == loop_words

    aig_loop_seconds, aig_words = _best_of(
        REPEATS, lambda: [aig.simulate_minterm(x) for x in range(num_patterns)]
    )
    aig_parallel_seconds, aig_outputs = _best_of(
        REPEATS, lambda: bitsim.simulate_aig(aig, batch)
    )
    assert [
        bitsim.output_word_at(aig_outputs, x) for x in range(num_patterns)
    ] == aig_words

    circuit_speedup = loop_seconds / parallel_seconds
    aig_speedup = aig_loop_seconds / aig_parallel_seconds
    rows = [
        (
            f"reversible circuit ({circuit.num_gates()} gates)",
            f"{loop_seconds * 1e3:.2f}",
            f"{parallel_seconds * 1e3:.2f}",
            f"{circuit_speedup:.1f}x",
        ),
        (
            f"bit-blasted AIG ({aig.num_nodes()} ands)",
            f"{aig_loop_seconds * 1e3:.2f}",
            f"{aig_parallel_seconds * 1e3:.2f}",
            f"{aig_speedup:.1f}x",
        ),
    ]
    text = format_table(
        ["structure", "per-input [ms]", "bit-parallel [ms]", "speedup"],
        rows,
        title=(
            f"Exhaustive verification of INTDIV({BITWIDTH}) "
            f"({num_patterns} patterns)"
        ),
    )
    write_result(
        "verify_bit_parallel",
        text,
        metrics={
            "circuit_speedup": round(circuit_speedup, 2),
            "aig_speedup": round(aig_speedup, 2),
            "circuit_gates": circuit.num_gates(),
            "aig_ands": aig.num_nodes(),
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "patterns": num_patterns,
            "min_speedup": 10.0,
        },
    )

    # The acceptance bar of the subsystem: >= 10x on an 8-input design.
    assert circuit_speedup >= 10.0, f"only {circuit_speedup:.1f}x on the circuit"

    benchmark.pedantic(
        bitsim.simulate_reversible,
        args=(circuit, batch),
        rounds=5,
        iterations=1,
    )
