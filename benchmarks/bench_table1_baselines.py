"""Table I: baseline results with manual designs (RESDIV and QNEWTON).

The paper reports, for n in {8, 16, 32, 64}:

    RESDIV(n):  qubits 6n, T-count  8 512 / 34 944 / 141 568 / 569 856
    QNEWTON(n): qubits 111/234/615/1226, T-count 14 632 / 64 004 / ...

This bench regenerates the same rows from our gate-level RESDIV circuit and
the component-grounded QNEWTON resource model.  Absolute T-counts differ
(different adder/multiplier constructions and cost models); the shape to
check is: RESDIV needs fewer qubits than QNEWTON, both T-counts grow roughly
quadratically, and the qubit counts grow linearly.
"""

from __future__ import annotations

import pytest

from conftest import large_benchmarks_enabled, write_result
from repro.baselines.qnewton import qnewton_resources
from repro.baselines.resdiv import resdiv_resources
from repro.utils.tables import format_table

PAPER_TABLE1 = {
    # n: (resdiv_qubits, resdiv_t, qnewton_qubits, qnewton_t)
    8: (48, 8512, 111, 14632),
    16: (96, 34944, 234, 64004),
    32: (192, 141568, 615, 352440),
    64: (384, 569856, 1226, 1405284),
}


def _bitwidths():
    widths = [8, 16]
    if large_benchmarks_enabled():
        widths += [32, 64]
    return widths


@pytest.fixture(scope="module")
def table1_rows():
    rows = []
    for n in _bitwidths():
        resdiv = resdiv_resources(n)
        qnewton = qnewton_resources(n)
        paper = PAPER_TABLE1[n]
        rows.append(
            (
                n,
                paper[0],
                resdiv.qubits,
                paper[1],
                resdiv.t_count,
                paper[2],
                qnewton.qubits,
                paper[3],
                qnewton.t_count,
            )
        )
    return rows


def test_table1_report(benchmark, table1_rows):
    headers = [
        "n",
        "RESDIV qubits (paper)",
        "RESDIV qubits (ours)",
        "RESDIV T (paper)",
        "RESDIV T (ours)",
        "QNEWTON qubits (paper)",
        "QNEWTON qubits (ours)",
        "QNEWTON T (paper)",
        "QNEWTON T (ours)",
    ]
    text = benchmark.pedantic(
        format_table,
        args=(headers, table1_rows),
        kwargs={"title": "Table I - baselines (paper vs measured)"},
        rounds=1,
        iterations=1,
    )
    write_result(
        "table1_baselines",
        text,
        metrics={
            str(row[0]): {
                "resdiv_qubits": row[2],
                "resdiv_t": row[4],
                "qnewton_qubits": row[6],
                "qnewton_t": row[8],
            }
            for row in table1_rows
        },
        config={"bitwidths": _bitwidths()},
    )

    for row in table1_rows:
        n, paper_rq, our_rq, paper_rt, our_rt, paper_qq, our_qq, paper_qt, our_qt = row
        # Linear qubit growth, same order of magnitude as the paper.
        assert our_rq / paper_rq < 2.5
        # Quadratic-ish T-count growth, within an order of magnitude.
        assert 0.1 < our_rt / paper_rt < 10
        assert 0.1 < our_qq / paper_qq < 10
        assert 0.05 < our_qt / paper_qt < 20


def test_table1_shape(table1_rows):
    """RESDIV uses fewer qubits than QNEWTON at every bit-width (as in the paper)."""
    for row in table1_rows:
        _, _, our_resdiv_qubits, _, _, _, our_qnewton_qubits, _, _ = row
        assert our_resdiv_qubits < our_qnewton_qubits * 2.5


@pytest.mark.parametrize("n", [8, 16])
def test_table1_resdiv_benchmark(benchmark, n):
    cost = benchmark.pedantic(resdiv_resources, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["qubits"] = cost.qubits
    benchmark.extra_info["t_count"] = cost.t_count


@pytest.mark.parametrize("n", [8, 16])
def test_table1_qnewton_benchmark(benchmark, n):
    cost = benchmark.pedantic(qnewton_resources, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["qubits"] = cost.qubits
    benchmark.extra_info["t_count"] = cost.t_count
