"""Columnar gate-cascade engine benchmark: costing and passes vs oracles.

PR 9 made the symbolic-flow synthesis kernels fast; what then decided the
bit-width ceiling was the *bookkeeping* of the resulting cascades — every
T-count sweep, depth estimate and peephole pass walked a Python list of
``ToffoliGate`` objects.  The columnar :class:`~repro.reversible.gatestore.
GateStore` replaces that list with packed mask columns, and this bench
gates the two rewrites the ISSUE targets on the paper's default-width
INTDIV(8) TBS cascade (211k gates, 15 lines):

* :func:`repro.quantum.tcount.circuit_t_count` — popcount + ``np.bincount``
  over the packed control masks vs the per-gate-object reference loop,
* the ``rev-default`` peephole pipeline — mask-column scans that return
  the input circuit unchanged when nothing rewrites (so the store's stat
  caches survive all twelve pass applications) vs an emulation of the
  seed's object path: reference passes with reference depth/T-count
  accounting per application, exactly what ``Pipeline.run`` costed before
  the columnar store existed.

Both must be ``>= 5x`` (best-of timing) *and* bit/gate-identical to the
``*_reference`` oracles.  Riders: the greedy depth sweep and the
Clifford+T resource estimator are cross-checked against their references
on the same cascade / its mapped circuit, and reported informationally.
"""

from __future__ import annotations

import time

from conftest import write_result
from repro.core.flows import frontend_artifacts
from repro.opt import as_pipeline
from repro.opt.targets import reversible_depth, reversible_depth_reference
from repro.quantum.mapping import map_to_clifford_t
from repro.quantum.resources import (
    estimate_resources,
    estimate_resources_reference,
)
from repro.quantum.tcount import (
    circuit_t_count,
    circuit_t_count_reference,
    t_count_histogram,
    t_count_histogram_reference,
)
from repro.reversible.optimize import (
    cancel_adjacent_gates_reference,
    merge_not_gates_reference,
    remove_trivial_gates_reference,
)
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.utils.tables import format_table

DESIGN = "intdiv"
BITWIDTH = 8  # the paper's default width; 211,583 gates over 15 lines
MAP_BITWIDTH = 6  # mapped-circuit width for the resource-estimator rider
REPEATS = 5
#: The object-path oracles take seconds to tens of seconds per repetition;
#: two repetitions bound their best-of without dominating CI (run-to-run
#: variance is far below the margin the 5x gate leaves).
REF_REPEATS = 2
MIN_SPEEDUP = 5.0


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_reference_pipeline(circuit):
    """The seed's ``rev-default`` cost model, replayed verbatim.

    ``Pipeline.run`` copies the target once, then threads it through
    ``(rt;rn;rc)*4``; every ``Pass.run`` computed before/after stats (gate
    count + greedy depth) and the keep-best tracker re-costed the result
    (T-count + gate count) after each application.  This emulation performs
    the identical work with the ``*_reference`` implementations so the
    speedup ratio measures the columnar engine, not a different schedule.
    """
    current = circuit.copy()
    for _ in range(4):
        for ref_pass in (
            remove_trivial_gates_reference,
            merge_not_gates_reference,
            cancel_adjacent_gates_reference,
        ):
            reversible_depth_reference(current)  # stats before
            current = ref_pass(current)
            reversible_depth_reference(current)  # stats after
            circuit_t_count_reference(current)  # keep-best cost
    return current


def test_circuit_store_vs_reference(benchmark):
    aig = frontend_artifacts(DESIGN, BITWIDTH)["aig"]
    circuit = symbolic_tbs(aig)
    store = circuit.gate_store()
    num_gates = circuit.num_gates()

    # Materialise the gate objects once, outside the timed regions: the
    # oracles start from live objects (as the seed did), the fast paths
    # read the mask columns regardless.
    circuit.gates()

    # --- T-count: popcount + bincount sweep vs the per-object loop -------
    def fast_t_count():
        store.clear_caches()  # time the cold kernel, not the stat cache
        return circuit_t_count(circuit)

    tcount_seconds, t_fast = _best_of(REPEATS, fast_t_count)
    tcount_ref_seconds, t_ref = _best_of(
        REF_REPEATS, lambda: circuit_t_count_reference(circuit)
    )
    assert t_fast == t_ref
    assert t_count_histogram(circuit) == t_count_histogram_reference(circuit)
    tcount_speedup = tcount_ref_seconds / tcount_seconds

    # --- rev-default: mask-column passes + cached stats vs the seed path --
    pipeline = as_pipeline("rev-default")

    def fast_pipeline():
        working = circuit.copy()
        working.gate_store().clear_caches()
        return pipeline.run(working).network

    pipe_seconds, pipe_fast = _best_of(REPEATS, fast_pipeline)
    pipe_ref_seconds, pipe_ref = _best_of(
        REF_REPEATS, lambda: _run_reference_pipeline(circuit)
    )
    assert pipe_fast.num_gates() == pipe_ref.num_gates()
    assert pipe_fast.gates() == pipe_ref.gates()
    assert circuit_t_count(pipe_fast) == circuit_t_count_reference(pipe_ref)
    pipe_speedup = pipe_ref_seconds / pipe_seconds

    # --- riders: depth sweep and resource estimator agree with oracles ---
    def fast_depth():
        store.clear_caches()
        return reversible_depth(circuit)

    depth_seconds, depth_fast = _best_of(REPEATS, fast_depth)
    depth_ref_seconds, depth_ref = _best_of(
        REF_REPEATS, lambda: reversible_depth_reference(circuit)
    )
    assert depth_fast == depth_ref

    mapped = map_to_clifford_t(
        symbolic_tbs(frontend_artifacts(DESIGN, MAP_BITWIDTH)["aig"])
    )
    res_seconds, res_fast = _best_of(
        REPEATS, lambda: estimate_resources(mapped)
    )
    res_ref_seconds, res_ref = _best_of(
        REF_REPEATS, lambda: estimate_resources_reference(mapped)
    )
    assert res_fast == res_ref

    rows = [
        (
            f"circuit_t_count ({num_gates} gates)",
            f"{tcount_ref_seconds * 1e3:.2f}",
            f"{tcount_seconds * 1e3:.2f}",
            f"{tcount_speedup:.1f}x",
        ),
        (
            "rev-default pipeline (12 pass applications)",
            f"{pipe_ref_seconds * 1e3:.2f}",
            f"{pipe_seconds * 1e3:.2f}",
            f"{pipe_speedup:.1f}x",
        ),
        (
            "reversible_depth (rider)",
            f"{depth_ref_seconds * 1e3:.2f}",
            f"{depth_seconds * 1e3:.2f}",
            f"{depth_ref_seconds / depth_seconds:.1f}x",
        ),
        (
            f"estimate_resources ({mapped.num_gates()} mapped gates, rider)",
            f"{res_ref_seconds * 1e3:.2f}",
            f"{res_seconds * 1e3:.2f}",
            f"{res_ref_seconds / res_seconds:.1f}x",
        ),
    ]
    text = format_table(
        ["kernel", "reference [ms]", "columnar [ms]", "speedup"],
        rows,
        title=f"Columnar gate store on {DESIGN.upper()}({BITWIDTH}) "
        f"({num_gates} gates, {circuit.num_lines()} lines)",
    )
    write_result(
        "circuit_store",
        text,
        metrics={
            "tcount_speedup": round(tcount_speedup, 2),
            "pipeline_speedup": round(pipe_speedup, 2),
            "depth_speedup": round(depth_ref_seconds / depth_seconds, 2),
            "resources_speedup": round(res_ref_seconds / res_seconds, 2),
            "gates": num_gates,
            "t_count": t_fast,
            "depth": depth_fast,
        },
        config={
            "design": DESIGN,
            "bitwidth": BITWIDTH,
            "map_bitwidth": MAP_BITWIDTH,
            "min_speedup": MIN_SPEEDUP,
            "repeats": REPEATS,
            "ref_repeats": REF_REPEATS,
        },
    )

    assert tcount_speedup >= MIN_SPEEDUP, (
        f"circuit_t_count only {tcount_speedup:.1f}x over the reference"
    )
    assert pipe_speedup >= MIN_SPEEDUP, (
        f"rev-default only {pipe_speedup:.1f}x over the reference path"
    )

    benchmark.pedantic(fast_t_count, rounds=5, iterations=1)
