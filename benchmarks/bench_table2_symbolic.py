"""Table II: results with symbolic functional reversible synthesis.

Paper columns: for INTDIV(n) and NEWTON(n), n = 4..16 — number of qubits
(always the optimum 2n-1), T-count and flow runtime.

Checks (the paper's observations):

* the number of qubits is the optimum 2n - 1 for both designs,
* INTDIV and NEWTON give essentially the same qubit count and T-counts of
  the same magnitude,
* the T-count explodes with n (large multiple-controlled Toffoli gates),
* runtimes grow steeply, which is why the default sweep stops below the
  paper's n = 16 (the paper needed 3.2 days for n = 16 on a server): with
  the bit-sliced TBS, the shared BDD sweep and the columnar gate store the
  explicit synthesis kernel itself — not the cascade bookkeeping — is what
  remains of the cost at each width.

Default sweep: n = 4..9.  The columnar gate-cascade engine moved n = 9 —
formerly behind ``REPRO_BENCH_LARGE=1`` — into the default sweep: costing
and peephole passes over the near-million-gate n = 9 cascades are now a
rounding error next to the synthesis itself.
"""

from __future__ import annotations

import pytest

from conftest import verification_enabled, write_result
from repro.core.flows import run_flow
from repro.core.reports import side_by_side_table

PAPER_TABLE2 = {
    # n: (qubits, intdiv_t, newton_t)
    4: (7, 597, 589),
    5: (9, 1613, 1848),
    6: (11, 5963, 6419),
    7: (13, 20008, 17867),
    8: (15, 51386, 56379),
    9: (17, 142901, 148913),
}


def _bitwidths():
    return [4, 5, 6, 7, 8, 9]


@pytest.fixture(scope="module")
def table2_reports():
    reports = {"INTDIV": [], "NEWTON": []}
    for n in _bitwidths():
        for design, key in (("intdiv", "INTDIV"), ("newton", "NEWTON")):
            result = run_flow(
                "symbolic", design, n, verify=verification_enabled() and n <= 6
            )
            reports[key].append(result.report)
    return reports


def test_table2_report(benchmark, table2_reports):
    text = benchmark.pedantic(
        side_by_side_table,
        args=(table2_reports,),
        kwargs={"title": "Table II - symbolic functional synthesis"},
        rounds=1,
        iterations=1,
    )
    write_result(
        "table2_symbolic",
        text,
        metrics={
            design: {
                str(r.bitwidth): {"qubits": r.qubits, "t_count": r.t_count}
                for r in reports
            }
            for design, reports in table2_reports.items()
        },
        config={"flow": "symbolic", "bitwidths": _bitwidths()},
    )
    assert "INTDIV qubits" in text


def test_table2_optimum_qubits(table2_reports):
    """Both designs reach the optimum 2n - 1 qubits, as in the paper."""
    for reports in table2_reports.values():
        for report in reports:
            assert report.qubits == 2 * report.bitwidth - 1
            assert report.qubits == PAPER_TABLE2[report.bitwidth][0]


def test_table2_tcount_explodes(table2_reports):
    """T-count grows super-exponentially in n (the flow's known weakness)."""
    for reports in table2_reports.values():
        t_counts = [r.t_count for r in sorted(reports, key=lambda r: r.bitwidth)]
        for smaller, larger in zip(t_counts, t_counts[1:]):
            assert larger > 1.8 * smaller


def test_table2_designs_comparable(table2_reports):
    """INTDIV and NEWTON behave alike through the functional flow."""
    intdiv = {r.bitwidth: r for r in table2_reports["INTDIV"]}
    newton = {r.bitwidth: r for r in table2_reports["NEWTON"]}
    for n in intdiv:
        assert intdiv[n].qubits == newton[n].qubits
        ratio = newton[n].t_count / max(1, intdiv[n].t_count)
        assert 0.3 < ratio < 3.0


def test_table2_magnitude_vs_paper(table2_reports):
    """Measured T-counts versus the paper's.

    The qubit column reproduces the paper exactly (checked above).  The
    T-count of our transformation-based synthesis is larger than the paper's
    (the original uses the SAT-based symbolic variant with stronger gate
    selection); EXPERIMENTS.md discusses the gap.  Here we only check that
    the numbers sit on the expensive side of the paper's — i.e. we did not
    accidentally solve a smaller problem — and that they remain within three
    orders of magnitude.
    """
    for key, column in (("INTDIV", 1), ("NEWTON", 2)):
        for report in table2_reports[key]:
            paper_t = PAPER_TABLE2[report.bitwidth][column]
            ratio = report.t_count / paper_t
            assert 0.5 < ratio < 1000


@pytest.mark.parametrize("design", ["intdiv", "newton"])
def test_table2_flow_benchmark(benchmark, design):
    n = 5
    result = benchmark.pedantic(
        run_flow, args=("symbolic", design, n), kwargs={"verify": False}, rounds=1, iterations=1
    )
    benchmark.extra_info["qubits"] = result.report.qubits
    benchmark.extra_info["t_count"] = result.report.t_count
