"""Table IV: results with hierarchical synthesis.

Paper columns: for INTDIV(n) (n = 16..128) and NEWTON(n) — qubits, T-count
and runtime.  The hierarchical flow is the scalable corner of the design
space: many qubits (one ancilla per XMG node), few T gates (MAJ = one
Toffoli, XOR = free) and quick runtimes.

Checks (the paper's observations):

* the qubit count is far larger than for the other flows, the T-count far
  smaller (per bit-width) — the opposite corner of the trade-off,
* INTDIV is significantly cheaper than NEWTON through this flow (the two
  designs no longer collapse to the same function representation),
* the flow scales to bit-widths the other flows cannot reach.

Default sweep: INTDIV n = 8, 12, 16 and NEWTON n = 6, 8
(``REPRO_BENCH_LARGE=1`` adds INTDIV 24/32 and NEWTON 12/16).
"""

from __future__ import annotations

import pytest

from conftest import large_benchmarks_enabled, verification_enabled, write_result
from repro.core.flows import run_flow
from repro.core.reports import side_by_side_table

PAPER_TABLE4 = {
    # n: (intdiv_qubits, intdiv_t, newton_qubits, newton_t)
    16: (892, 5607, 10713, 73080),
    32: (3501, 21455, 56207, 392917),
}


def _intdiv_bitwidths():
    widths = [8, 12, 16]
    if large_benchmarks_enabled():
        widths += [24, 32]
    return widths


def _newton_bitwidths():
    widths = [6, 8]
    if large_benchmarks_enabled():
        widths += [12, 16]
    return widths


@pytest.fixture(scope="module")
def table4_reports():
    groups = {"INTDIV": [], "NEWTON": []}
    for n in _intdiv_bitwidths():
        result = run_flow(
            "hierarchical", "intdiv", n, verify=verification_enabled() and n <= 10
        )
        groups["INTDIV"].append(result.report)
    for n in _newton_bitwidths():
        result = run_flow(
            "hierarchical", "newton", n, verify=verification_enabled() and n <= 8
        )
        groups["NEWTON"].append(result.report)
    return groups


def test_table4_report(benchmark, table4_reports):
    text = benchmark.pedantic(
        side_by_side_table,
        args=(table4_reports,),
        kwargs={"title": "Table IV - hierarchical synthesis"},
        rounds=1,
        iterations=1,
    )
    write_result(
        "table4_hierarchical",
        text,
        metrics={
            design: {
                str(r.bitwidth): {"qubits": r.qubits, "t_count": r.t_count}
                for r in reports
            }
            for design, reports in table4_reports.items()
        },
        config={
            "flow": "hierarchical",
            "intdiv_bitwidths": _intdiv_bitwidths(),
            "newton_bitwidths": _newton_bitwidths(),
        },
    )
    assert "INTDIV qubits" in text


def test_table4_small_gates_only(table4_reports):
    for reports in table4_reports.values():
        for report in reports:
            assert report.max_controls <= 2


def test_table4_opposite_corner_of_design_space(table4_reports):
    """Many qubits, few T gates compared with the ESOP flow.

    In the paper the hierarchical flow overtakes the ESOP flow on T-count at
    the larger bit-widths (Table III vs Table IV at n = 16); the same
    crossover shows up here, so the comparison is made at the largest
    default bit-width.
    """
    n = 12
    esop = run_flow("esop", "intdiv", n, p=0, verify=False).report
    hierarchical = next(r for r in table4_reports["INTDIV"] if r.bitwidth == n)
    assert hierarchical.qubits > esop.qubits
    assert hierarchical.t_count < esop.t_count


def test_table4_intdiv_cheaper_than_newton(table4_reports):
    """INTDIV beats NEWTON through the hierarchical flow (unlike Table II)."""
    intdiv = {r.bitwidth: r for r in table4_reports["INTDIV"]}
    newton = {r.bitwidth: r for r in table4_reports["NEWTON"]}
    common = set(intdiv) & set(newton)
    assert common
    for n in common:
        assert intdiv[n].t_count < newton[n].t_count
        assert intdiv[n].qubits < newton[n].qubits


def test_table4_scaling_trend(table4_reports):
    """Qubits and T-count grow roughly quadratically with n for INTDIV."""
    reports = sorted(table4_reports["INTDIV"], key=lambda r: r.bitwidth)
    for smaller, larger in zip(reports, reports[1:]):
        growth = larger.bitwidth / smaller.bitwidth
        assert larger.t_count > smaller.t_count
        assert larger.t_count < smaller.t_count * (growth ** 3.5)


def test_table4_magnitude_vs_paper(table4_reports):
    for report in table4_reports["INTDIV"]:
        paper = PAPER_TABLE4.get(report.bitwidth)
        if paper is None:
            continue
        assert 0.05 < report.qubits / paper[0] < 20
        assert 0.05 < report.t_count / paper[1] < 20


def test_table4_flow_benchmark(benchmark):
    result = benchmark.pedantic(
        run_flow,
        args=("hierarchical", "intdiv", 12),
        kwargs={"verify": False},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qubits"] = result.report.qubits
    benchmark.extra_info["t_count"] = result.report.t_count
