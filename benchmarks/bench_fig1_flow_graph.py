"""Figure 1: the design-flow graph.

The figure in the paper is a diagram; this bench renders the textual version
of the graph and exercises every edge once (Verilog -> AIG -> {BDD, ESOP,
XMG} -> reversible circuit) on a small instance, timing one full pass per
flow.
"""

from __future__ import annotations

import pytest

from conftest import verification_enabled, write_result
from repro.core.flows import run_flow
from repro.core.reports import flow_graph_description

BITWIDTH = 4


def test_fig1_flow_graph_rendering(benchmark):
    """The flow graph mentions every representation and tool analogue."""
    text = benchmark.pedantic(flow_graph_description, rounds=1, iterations=1)
    for keyword in ("Verilog", "AIG", "BDD", "ESOP", "XMG", "Clifford+T"):
        assert keyword in text
    write_result(
        "fig1_flow_graph",
        text,
        metrics={"lines": text.count("\n")},
        config={"bitwidth": BITWIDTH},
    )


@pytest.mark.parametrize("flow_name", ["symbolic", "esop", "hierarchical"])
def test_fig1_flow_edges(benchmark, flow_name):
    """Time one end-to-end pass through each flow of Fig. 1."""
    result = benchmark.pedantic(
        run_flow,
        args=(flow_name, "intdiv", BITWIDTH),
        kwargs={"verify": verification_enabled()},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qubits"] = result.report.qubits
    benchmark.extra_info["t_count"] = result.report.t_count
    assert result.report.qubits > 0
