"""Pebbling-strategy benchmark: the qubit/T-count tradeoff curve.

The point of the LUT-based flow is that the pebbling strategy (and the
``bounded`` strategy's pebble budget) turns qubit count against T-count on
one design.  This bench regenerates that curve for ``INTDIV(8)``: the
Bennett schedule (max qubits, min T), the eager per-output schedule, and
the bounded scheduler at three budgets.  The acceptance gates mirror the
subsystem's contract:

* every ``bounded(B)`` run respects its pebble budget,
* the strategies yield at least three distinct Pareto points on the
  (qubits, T-count) plane.
"""

from __future__ import annotations

from conftest import write_result
from repro.core.explorer import pareto_front_of
from repro.core.flows import run_flow
from repro.utils.tables import format_table

BITWIDTH = 8

#: label -> lut flow parameters.
CONFIGURATIONS = [
    ("bennett", {"strategy": "bennett"}),
    ("eager", {"strategy": "eager"}),
    ("bounded(0.25)", {"strategy": "bounded", "max_pebbles": 0.25}),
    ("bounded(0.5)", {"strategy": "bounded", "max_pebbles": 0.5}),
    ("bounded(0.75)", {"strategy": "bounded", "max_pebbles": 0.75}),
]


def test_pebbling_tradeoff_curve(benchmark):
    reports = {}
    rows = []
    for label, parameters in CONFIGURATIONS:
        result = run_flow(
            "lut", "intdiv", BITWIDTH, verify=False, **parameters
        )
        report = result.report
        reports[label] = report
        extra = report.extra
        if parameters["strategy"] == "bounded":
            schedule = result.context["schedule"]
            assert extra["pebble_peak"] <= schedule.max_pebbles, (
                f"{label}: peak {extra['pebble_peak']} exceeds budget "
                f"{schedule.max_pebbles}"
            )
        rows.append(
            (
                label,
                report.qubits,
                report.t_count,
                extra["pebble_peak"],
                extra["recomputes"],
                f"{report.runtime_seconds:.2f}",
            )
        )

    front = pareto_front_of(reports)
    text = format_table(
        ["strategy", "qubits", "T-count", "pebble peak", "recomputes", "runtime [s]"],
        rows,
        title=f"LUT pebbling strategies on INTDIV({BITWIDTH}), k = 4",
    )
    text += "\n\nPareto front: " + ", ".join(
        f"{p.configuration} ({p.qubits} qubits, {p.t_count} T)" for p in front
    )
    write_result(
        "pebbling_tradeoff",
        text,
        metrics={
            "pareto_points": len(front),
            "strategies": {
                label: {"qubits": r.qubits, "t_count": r.t_count}
                for label, r in reports.items()
            },
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "k": 4,
            "min_pareto_points": 3,
        },
    )

    # The acceptance gate: the strategy sweep genuinely explores the
    # qubit/T-count plane instead of collapsing onto one point.
    assert len(front) >= 3, f"only {len(front)} Pareto points: {front}"

    benchmark.pedantic(
        run_flow,
        args=("lut", "intdiv", BITWIDTH),
        kwargs={"verify": False, "strategy": "bennett"},
        rounds=3,
        iterations=1,
    )
