"""Pebbling-strategy benchmark: the qubit/T-count tradeoff curve.

The point of the LUT-based flow is that the pebbling strategy (and the
``bounded`` strategy's pebble budget) turns qubit count against T-count on
one design.  This bench regenerates that curve for ``INTDIV(8)``: the
Bennett schedule (max qubits, min T), the eager per-output schedule, and
the bounded scheduler at three budgets.  The acceptance gates mirror the
subsystem's contract:

* every ``bounded(B)`` run respects its pebble budget,
* the strategies yield at least three distinct Pareto points on the
  (qubits, T-count) plane.
"""

from __future__ import annotations

from conftest import write_result
from repro.core.explorer import pareto_front_of
from repro.core.flows import run_flow
from repro.utils.tables import format_table

BITWIDTH = 8

#: label -> lut flow parameters.
CONFIGURATIONS = [
    ("bennett", {"strategy": "bennett"}),
    ("eager", {"strategy": "eager"}),
    ("bounded(0.25)", {"strategy": "bounded", "max_pebbles": 0.25}),
    ("bounded(0.5)", {"strategy": "bounded", "max_pebbles": 0.5}),
    ("bounded(0.75)", {"strategy": "bounded", "max_pebbles": 0.75}),
]


def test_pebbling_tradeoff_curve(benchmark):
    reports = {}
    rows = []
    for label, parameters in CONFIGURATIONS:
        result = run_flow(
            "lut", "intdiv", BITWIDTH, verify=False, **parameters
        )
        report = result.report
        reports[label] = report
        extra = report.extra
        if parameters["strategy"] == "bounded":
            schedule = result.context["schedule"]
            assert extra["pebble_peak"] <= schedule.max_pebbles, (
                f"{label}: peak {extra['pebble_peak']} exceeds budget "
                f"{schedule.max_pebbles}"
            )
        rows.append(
            (
                label,
                report.qubits,
                report.t_count,
                extra["pebble_peak"],
                extra["recomputes"],
                f"{report.runtime_seconds:.2f}",
            )
        )

    front = pareto_front_of(reports)
    text = format_table(
        ["strategy", "qubits", "T-count", "pebble peak", "recomputes", "runtime [s]"],
        rows,
        title=f"LUT pebbling strategies on INTDIV({BITWIDTH}), k = 4",
    )
    text += "\n\nPareto front: " + ", ".join(
        f"{p.configuration} ({p.qubits} qubits, {p.t_count} T)" for p in front
    )
    write_result(
        "pebbling_tradeoff",
        text,
        metrics={
            "pareto_points": len(front),
            "strategies": {
                label: {"qubits": r.qubits, "t_count": r.t_count}
                for label, r in reports.items()
            },
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "k": 4,
            "min_pareto_points": 3,
        },
    )

    # The acceptance gate: the strategy sweep genuinely explores the
    # qubit/T-count plane instead of collapsing onto one point.
    assert len(front) >= 3, f"only {len(front)} Pareto points: {front}"

    benchmark.pedantic(
        run_flow,
        args=("lut", "intdiv", BITWIDTH),
        kwargs={"verify": False, "strategy": "bennett"},
        rounds=3,
        iterations=1,
    )


#: Wall-clock ceiling of the exact configuration's flow run — the SAT
#: engines must pay for themselves inside an interactive budget.
EXACT_TIME_LIMIT = 60.0

#: SAT budget handed to the exact pebbling strategy (well under the
#: wall-clock gate; the exact ESOP covers take their own per-LUT budget).
EXACT_SAT_BUDGET = 20.0


def test_pebbling_exact_dominates_greedy(benchmark):
    """The SAT-exact configuration strictly beats the greedy bounded front.

    Gates: the exact run finishes within :data:`EXACT_TIME_LIMIT` seconds,
    its schedule survives :func:`validate_schedule`, and its (qubits,
    T-count) point strictly dominates at least one greedy ``bounded``
    front point — no more qubits, strictly fewer T gates.
    """
    import time

    from repro.reversible.pebbling import validate_schedule

    bounded = {}
    rows = []
    for fraction in (0.25, 0.5, 0.75):
        report = run_flow(
            "lut", "intdiv", BITWIDTH, verify=False,
            strategy="bounded", max_pebbles=fraction,
        ).report
        bounded[f"bounded({fraction})"] = report
        rows.append((f"bounded({fraction})", report.qubits, report.t_count))

    start = time.monotonic()
    result = run_flow(
        "lut", "intdiv", BITWIDTH, verify=False,
        strategy="exact", lut_synth="exact",
        max_pebbles=0.5, exact_time_budget=EXACT_SAT_BUDGET,
    )
    elapsed = time.monotonic() - start
    exact = result.report
    rows.append(("exact", exact.qubits, exact.t_count))
    validate_schedule(result.context["schedule"])

    dominated = [
        label
        for label, report in bounded.items()
        if exact.qubits <= report.qubits and exact.t_count < report.t_count
    ]
    text = format_table(
        ["configuration", "qubits", "T-count"],
        rows,
        title=f"Exact vs greedy bounded on INTDIV({BITWIDTH}), k = 4",
    )
    text += (
        f"\n\nexact runtime: {elapsed:.1f} s"
        f"\nstrictly dominated: {', '.join(dominated) or 'none'}"
    )
    write_result(
        "pebbling_exact",
        text,
        metrics={
            "exact": {"qubits": exact.qubits, "t_count": exact.t_count},
            "bounded": {
                label: {"qubits": r.qubits, "t_count": r.t_count}
                for label, r in bounded.items()
            },
            "dominated": dominated,
            "exact_runtime_seconds": elapsed,
            "pebble_engine": exact.extra.get("pebble_engine"),
        },
        config={
            "design": "intdiv",
            "bitwidth": BITWIDTH,
            "k": 4,
            "exact_time_limit": EXACT_TIME_LIMIT,
            "exact_sat_budget": EXACT_SAT_BUDGET,
        },
    )

    assert elapsed <= EXACT_TIME_LIMIT, (
        f"exact configuration took {elapsed:.1f} s > {EXACT_TIME_LIMIT} s"
    )
    assert dominated, (
        f"exact ({exact.qubits} qubits, {exact.t_count} T) dominates no "
        f"greedy bounded point: {rows}"
    )

    benchmark.pedantic(
        run_flow,
        args=("lut", "intdiv", BITWIDTH),
        kwargs={
            "verify": False,
            "strategy": "exact",
            "lut_synth": "exact",
            "max_pebbles": 0.5,
            "exact_time_budget": EXACT_SAT_BUDGET,
        },
        rounds=1,
        iterations=1,
    )
