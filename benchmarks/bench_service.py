"""Synthesis-as-a-service benchmark: shared cache, concurrency, drain.

The job server's reason to exist over the CLI is the *shared* result
cache: any configuration any client ever computed is free for every later
job.  This bench drives a real server over a real socket and gates the
three service-level claims:

* a re-submitted sweep (>= 20 configurations) executes **zero** flows —
  every outcome is a cache hit, proven by the cache's hit counters,
* concurrent clients (>= 2) both complete and both receive the *correct*
  Pareto fronts, i.e. exactly what a direct in-process
  :class:`ExplorationEngine` run of the same sweep produces,
* graceful shutdown drains in-flight jobs without losing a single
  completed result.

Writes ``BENCH_service.json`` with cold/warm latencies and the counter
evidence.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from conftest import write_result
from repro.core.explorer import ExplorationEngine, pareto_front_of
from repro.service import start_in_thread
from repro.service.jobs import JobSpec
from repro.utils.tables import format_table

#: >= 20 configurations: (7 esop + 3 hierarchical + 1 symbolic) x 2 widths.
SWEEPS = [
    "esop:p=0,1,2,3,4,5,6",
    "hierarchical:strategy=bennett,eager,per_output",
    "symbolic",
]
BITWIDTHS = [2, 3]

PAYLOAD = {
    "designs": ["intdiv"],
    "bitwidths": BITWIDTHS,
    "sweeps": SWEEPS,
    "verify": "off",
}

#: Aggregated across the tests below; the last one writes the JSON.
RECORD = {"metrics": {}, "config": {"sweeps": SWEEPS, "bitwidths": BITWIDTHS}}


def _request(url, method, path, body=None, headers=None):
    host, port = url.split("//", 1)[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=600)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers=headers or {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"null")
    finally:
        conn.close()


def _submit_and_stream(url, payload, client_id):
    """Submit one job, consume its chunked stream, return the done event."""
    status, accepted = _request(
        url, "POST", "/jobs", payload, headers={"X-Client-Id": client_id}
    )
    assert status == 202, accepted
    host, port = url.split("//", 1)[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=600)
    outcomes, done = 0, None
    try:
        conn.request("GET", accepted["stream_url"])
        response = conn.getresponse()
        assert response.status == 200
        while True:
            line = response.readline()
            if not line:
                break
            event = json.loads(line)
            if event["type"] == "outcome":
                outcomes += 1
                assert event["ok"], event.get("error")
            elif event["type"] == "done":
                done = event
    finally:
        conn.close()
    assert done is not None and done["state"] == "done"
    assert outcomes == accepted["num_tasks"]
    return accepted["id"], done


def _expected_fronts():
    """The ground truth: a direct engine run of the identical sweep."""
    tasks = JobSpec.from_payload(PAYLOAD).tasks()
    outcomes = ExplorationEngine(jobs=1, verify="off").run(tasks)
    assert all(outcome.ok for outcome in outcomes)
    fronts = []
    by_instance = {}
    for outcome in outcomes:
        key = (outcome.task.design, outcome.task.bitwidth)
        by_instance.setdefault(key, {})[
            outcome.task.configuration.label()
        ] = outcome.report
    for (design, bitwidth), labelled in sorted(by_instance.items()):
        fronts.append(
            {
                "design": design,
                "bitwidth": bitwidth,
                "points": [
                    {
                        "configuration": point.configuration,
                        "aliases": list(point.aliases),
                        "qubits": point.qubits,
                        "t_count": point.t_count,
                    }
                    for point in pareto_front_of(labelled)
                ],
            }
        )
    return len(tasks), fronts


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    handle = start_in_thread(
        cache=str(tmp_path_factory.mktemp("service-cache")), workers=2
    )
    yield handle
    if handle.thread.is_alive():
        handle.request_shutdown()
        assert handle.join(timeout=120)


@pytest.fixture(scope="module")
def expected(service):
    num_tasks, fronts = _expected_fronts()
    assert num_tasks >= 20  # the bench's sweep-size gate
    return num_tasks, fronts


def test_warm_resubmission_executes_zero_flows(benchmark, service, expected):
    num_tasks, fronts = expected
    cache = service.manager.cache

    cold_start = time.perf_counter()
    _, cold_done = _submit_and_stream(service.url, PAYLOAD, "bench-cold")
    cold_seconds = time.perf_counter() - cold_start
    assert cold_done["summary"]["completed"] == num_tasks
    assert cold_done["pareto"] == fronts
    executed_before = service.manager.metrics.counter("flows_executed")
    hits_before = cache.counters()["hits"]

    warm_start = time.perf_counter()
    _, warm_done = benchmark.pedantic(
        _submit_and_stream,
        args=(service.url, PAYLOAD, "bench-warm"),
        rounds=1,
        iterations=1,
    )
    warm_seconds = time.perf_counter() - warm_start

    # The re-submitted sweep executed zero flows: all 22 outcomes came
    # from the shared cache, and the hit counters prove it.
    counters = cache.counters()
    assert warm_done["summary"]["completed"] == num_tasks
    assert warm_done["summary"]["cached"] == num_tasks
    assert warm_done["pareto"] == fronts
    assert service.manager.metrics.counter("flows_executed") == executed_before
    assert counters["hits"] - hits_before >= num_tasks

    RECORD["metrics"].update(
        {
            "num_tasks": num_tasks,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "warm_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
            "warm_flows_executed": 0,
            "cache_hits": counters["hits"],
            "cache_misses": counters["misses"],
        }
    )


def test_concurrent_clients_get_correct_fronts(service, expected):
    num_tasks, fronts = expected
    results, errors = {}, []

    def client(name):
        try:
            results[name] = _submit_and_stream(service.url, PAYLOAD, name)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append((name, exc))

    threads = [
        threading.Thread(target=client, args=(f"client-{i}",)) for i in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert not errors, errors
    assert len(results) == 3
    for _, done in results.values():
        assert done["summary"]["completed"] == num_tasks
        assert done["pareto"] == fronts  # every client saw the true front
    RECORD["metrics"]["concurrent_clients"] = len(results)


def test_graceful_shutdown_loses_no_completed_results(service, expected):
    num_tasks, _ = expected
    accepted = [
        _request(
            service.url, "POST", "/jobs", PAYLOAD, headers={"X-Client-Id": "s"}
        )[1]
        for _ in range(3)
    ]
    status, body = _request(service.url, "POST", "/shutdown", {})
    assert status == 202 and body["drain"] is True
    assert service.join(timeout=300)
    assert service.drained is True
    for entry in accepted:
        job = service.manager.get(entry["id"])
        assert job.state == "done"
        assert job.completed == job.num_tasks == num_tasks
    RECORD["metrics"].update(
        {
            "shutdown_drained": True,
            "drained_jobs": len(accepted),
            "jobs_total": service.manager.stats()["jobs"]["total"],
        }
    )

    metrics = RECORD["metrics"]
    text = format_table(
        ["metric", "value"],
        [[name, metrics[name]] for name in sorted(metrics)],
        title="Synthesis service (shared cache, concurrency, drain)",
    )
    write_result("service", text, metrics=metrics, config=RECORD["config"])
