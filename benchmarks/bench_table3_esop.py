"""Table III: results with ESOP-based (REVS) synthesis, p = 0 and p = 1.

Paper columns: for INTDIV(n) and NEWTON(n), n = 5..25 — qubits, T-count and
runtime for the unfactored (p = 0) and factored (p = 1) modes.

Checks (the paper's observations):

* p = 0 uses exactly 2n qubits and gates with at most n controls,
* the T-count is orders of magnitude below the functional flow's,
* p = 1 uses additional lines and (for the larger n) fewer T gates,
* runtimes stay moderate, i.e. the flow scales further than the functional
  one.

Default sweep: n = 5..9 (set ``REPRO_BENCH_LARGE=1`` for n up to 12).
"""

from __future__ import annotations

import pytest

from conftest import large_benchmarks_enabled, verification_enabled, write_result
from repro.core.flows import run_flow
from repro.core.reports import side_by_side_table

PAPER_TABLE3_P0 = {
    # n: (intdiv_qubits, intdiv_t, newton_qubits, newton_t)
    5: (10, 232, 10, 135),
    6: (12, 423, 12, 294),
    7: (14, 791, 14, 568),
    8: (16, 1342, 16, 1039),
    9: (18, 2056, 18, 1894),
    10: (20, 3415, 20, 3311),
    11: (22, 5631, 22, 5303),
    12: (24, 8431, 24, 8423),
}


def _bitwidths():
    widths = [5, 6, 7, 8, 9]
    if large_benchmarks_enabled():
        widths += [10, 11, 12]
    return widths


@pytest.fixture(scope="module")
def table3_reports():
    groups = {}
    for p in (0, 1):
        for design, label in (("intdiv", "INTDIV"), ("newton", "NEWTON")):
            key = f"{label} p={p}"
            groups[key] = []
            for n in _bitwidths():
                result = run_flow(
                    "esop",
                    design,
                    n,
                    p=p,
                    verify=verification_enabled() and n <= 8,
                )
                groups[key].append(result.report)
    return groups


def test_table3_report(benchmark, table3_reports):
    text = benchmark.pedantic(
        side_by_side_table,
        args=(table3_reports,),
        kwargs={"title": "Table III - ESOP-based synthesis (REVS)"},
        rounds=1,
        iterations=1,
    )
    write_result(
        "table3_esop",
        text,
        metrics={
            label: {
                str(r.bitwidth): {"qubits": r.qubits, "t_count": r.t_count}
                for r in reports
            }
            for label, reports in table3_reports.items()
        },
        config={"flow": "esop", "bitwidths": _bitwidths(), "p": [0, 1]},
    )
    assert "INTDIV p=0 qubits" in text


def test_table3_p0_uses_2n_qubits(table3_reports):
    for label in ("INTDIV p=0", "NEWTON p=0"):
        for report in table3_reports[label]:
            assert report.qubits == 2 * report.bitwidth
            assert report.max_controls <= report.bitwidth


def test_table3_p1_trades_qubits_for_t(table3_reports):
    """p = 1 never uses fewer lines, and is never much worse on T-count."""
    for design in ("INTDIV", "NEWTON"):
        base = {r.bitwidth: r for r in table3_reports[f"{design} p=0"]}
        factored = {r.bitwidth: r for r in table3_reports[f"{design} p=1"]}
        wins = 0
        for n, report in factored.items():
            assert report.qubits >= base[n].qubits
            assert report.t_count <= base[n].t_count * 1.15
            if report.t_count < base[n].t_count:
                wins += 1
        assert wins >= 1  # factoring pays off for at least some bit-width


def test_table3_much_cheaper_than_symbolic(table3_reports):
    """The key Table II vs Table III comparison of the paper."""
    symbolic = run_flow("symbolic", "intdiv", 6, verify=False).report
    esop = next(
        r for r in table3_reports["INTDIV p=0"] if r.bitwidth == 6
    )
    assert esop.t_count * 3 < symbolic.t_count
    assert esop.qubits == symbolic.qubits + 1  # 2n vs 2n - 1


def test_table3_magnitude_vs_paper(table3_reports):
    for report in table3_reports["INTDIV p=0"]:
        paper = PAPER_TABLE3_P0.get(report.bitwidth)
        if paper is None:
            continue
        assert report.qubits == paper[0]
        assert 0.05 < report.t_count / paper[1] < 20
    for report in table3_reports["NEWTON p=0"]:
        paper = PAPER_TABLE3_P0.get(report.bitwidth)
        if paper is None:
            continue
        assert report.qubits == paper[2]
        assert 0.05 < report.t_count / paper[3] < 20


@pytest.mark.parametrize("p", [0, 1])
def test_table3_flow_benchmark(benchmark, p):
    n = 7
    result = benchmark.pedantic(
        run_flow,
        args=("esop", "intdiv", n),
        kwargs={"p": p, "verify": False},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["qubits"] = result.report.qubits
    benchmark.extra_info["t_count"] = result.report.t_count
