"""Section V narrative: ratios of the flows against the manual baselines.

The running text of the evaluation quotes several ratios, e.g.

* symbolic flow: "the number of qubits is 3.2x smaller compared to the
  RESDIV baseline for n = 8 ... at the price of a very high T-count",
* ESOP flow (p = 0): "the number of qubits is 3x smaller for both n = 8 and
  n = 16",
* hierarchical flow: "the T-count is 6.2x ... smaller for n = 16" while the
  qubit count is many times larger.

This bench recomputes the same ratios from our circuits and checks their
direction (who wins) rather than their exact magnitude.
"""

from __future__ import annotations

import pytest

from conftest import large_benchmarks_enabled, write_result
from repro.baselines.resdiv import resdiv_resources
from repro.core.flows import run_flow
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def ratio_rows():
    n = 8
    baseline = resdiv_resources(n)
    rows = []
    flows = [
        ("symbolic", {}),
        ("esop", {"p": 0}),
        ("hierarchical", {}),
    ]
    for flow_name, kwargs in flows:
        report = run_flow(flow_name, "intdiv", n, verify=False, **kwargs).report
        rows.append(
            (
                flow_name,
                report.qubits,
                baseline.qubits,
                report.qubits / baseline.qubits,
                report.t_count,
                baseline.t_count,
                report.t_count / baseline.t_count,
            )
        )
    return n, rows


def test_ratio_report(benchmark, ratio_rows):
    n, rows = ratio_rows
    headers = [
        "flow",
        "qubits",
        "RESDIV qubits",
        "qubit ratio",
        "T-count",
        "RESDIV T",
        "T ratio",
    ]
    text = benchmark.pedantic(
        format_table,
        args=(headers, rows),
        kwargs={"title": f"Flow-vs-RESDIV ratios for INTDIV({n}) (Section V narrative)"},
        rounds=1,
        iterations=1,
    )
    write_result(
        "section5_ratios",
        text,
        metrics={
            row[0]: {"qubit_ratio": round(row[3], 4), "t_ratio": round(row[6], 4)}
            for row in rows
        },
        config={"design": "intdiv", "bitwidth": n, "baseline": "RESDIV"},
    )


def test_symbolic_beats_baseline_on_qubits(ratio_rows):
    _, rows = ratio_rows
    symbolic = next(r for r in rows if r[0] == "symbolic")
    assert symbolic[3] < 0.5  # paper: 3.2x fewer qubits at n = 8
    assert symbolic[6] > 1.0  # ... at the price of more T gates


def test_esop_beats_baseline_on_qubits(ratio_rows):
    _, rows = ratio_rows
    esop = next(r for r in rows if r[0] == "esop")
    assert esop[3] < 0.5  # paper: ~3x fewer qubits


def test_hierarchical_beats_baseline_on_t(ratio_rows):
    _, rows = ratio_rows
    hierarchical = next(r for r in rows if r[0] == "hierarchical")
    assert hierarchical[6] < 1.0  # fewer T gates ...
    assert hierarchical[3] > 1.0  # ... but more qubits
