"""Design space exploration: the width/size trade-off claim of the paper.

Sections I and VI claim that the flows "explore tradeoffs between the number
of lines and the depth of the circuit that cannot be probed using the
handcrafted approaches": one single design (INTDIV(n)) yields circuits
ranging from line-optimal/high-T to line-hungry/low-T depending on the flow
and its parameters.  This bench runs the whole configuration sweep, prints
the resulting design-space table and checks that the Pareto front contains
more than one point (i.e. there is a genuine trade-off, not a single winner).
"""

from __future__ import annotations

import pytest

from conftest import large_benchmarks_enabled, write_result
from repro.core.explorer import (
    DesignSpaceExplorer,
    ExplorationEngine,
    FlowConfiguration,
    ParameterGrid,
    build_sweep,
)
from repro.core.reports import outcome_table
from repro.utils.tables import format_table

BITWIDTH = 8 if large_benchmarks_enabled() else 6


@pytest.fixture(scope="module")
def explorer():
    explorer = DesignSpaceExplorer(
        "intdiv",
        BITWIDTH,
        configurations=[
            FlowConfiguration("symbolic"),
            FlowConfiguration("esop", (("p", 0),)),
            FlowConfiguration("esop", (("p", 1),)),
            FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
            FlowConfiguration("hierarchical", (("strategy", "per_output"),)),
        ],
        verify=False,
    )
    explorer.explore()
    assert not explorer.errors  # a broken flow must fail the bench loudly
    return explorer


def test_design_space_report(benchmark, explorer):
    rows = explorer.summary_rows()
    text = benchmark.pedantic(
        format_table,
        args=(["configuration", "qubits", "T-count", "runtime [s]"], rows),
        kwargs={"title": f"Design space of INTDIV({BITWIDTH})"},
        rounds=1,
        iterations=1,
    )
    front = explorer.pareto_front()
    front_text = format_table(
        ["Pareto point", "qubits", "T-count"],
        [(p.configuration, p.qubits, p.t_count) for p in front],
        title="Pareto front (qubits vs T-count)",
    )
    write_result(
        "design_space",
        text + "\n\n" + front_text,
        metrics={
            "pareto_points": len(front),
            "front": {
                p.configuration: {"qubits": p.qubits, "t_count": p.t_count}
                for p in front
            },
        },
        config={"design": "intdiv", "bitwidth": BITWIDTH},
    )


def test_pareto_front_is_a_real_tradeoff(explorer):
    front = explorer.pareto_front()
    assert len(front) >= 2  # no single configuration dominates
    qubit_ordered = sorted(front, key=lambda p: p.qubits)
    t_ordered = sorted(front, key=lambda p: p.t_count)
    assert qubit_ordered[0].configuration != t_ordered[0].configuration


def test_extreme_points(explorer):
    best_qubits = explorer.best_by_qubits()
    best_t = explorer.best_by_t_count()
    # The line-optimal corner always belongs to the functional flow; the
    # T-optimal corner belongs to one of the structural flows (which one
    # depends on the bit-width — the hierarchical flow overtakes the ESOP
    # flow for larger n, cf. Tables III/IV).
    assert best_qubits.flow == "symbolic"
    assert best_t.flow in ("esop", "hierarchical")
    assert best_t.flow != "symbolic"


def test_batch_engine_parallel_matches_serial_and_caches(benchmark, tmp_path_factory):
    """The batch engine: ≥20 configurations through the process pool.

    The parallel run must reproduce the serial run's metrics exactly, and a
    second run against the same cache must execute zero flows.
    """
    grids = [
        ParameterGrid("symbolic"),
        ParameterGrid("esop", p=[0, 1]),
        ParameterGrid("hierarchical", strategy=["bennett", "per_output"]),
    ]
    widths = [4, 5, 6] if large_benchmarks_enabled() else [3, 4]
    tasks = build_sweep(["intdiv", "newton"], widths, grids)
    assert len(tasks) >= 20

    serial_engine = ExplorationEngine(jobs=1, verify=False)
    serial = serial_engine.run(tasks)
    assert serial_engine.failures == 0

    cache_dir = tmp_path_factory.mktemp("dse-cache")

    def parallel_run():
        engine = ExplorationEngine(jobs=2, cache=str(cache_dir), verify=False)
        return engine, engine.run(tasks)

    engine, parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert engine.failures == 0 and engine.executed == len(tasks)
    assert [o.report.metrics() for o in parallel] == [
        o.report.metrics() for o in serial
    ]

    cached_engine = ExplorationEngine(jobs=2, cache=str(cache_dir), verify=False)
    cached = cached_engine.run(tasks)
    assert cached_engine.executed == 0  # zero flow re-executions
    assert cached_engine.cache_hits == len(tasks)
    assert [o.report.metrics() for o in cached] == [
        o.report.metrics() for o in serial
    ]

    write_result(
        "design_space_batch",
        outcome_table(
            parallel,
            title=f"Batch sweep: {len(tasks)} configurations, 2 workers",
        )
        + f"\n\ncached re-run: {cached_engine.cache_hits} hits, "
        f"{cached_engine.executed} flows executed",
        metrics={
            "tasks": len(tasks),
            "cache_hits_on_rerun": cached_engine.cache_hits,
            "flows_executed_on_rerun": cached_engine.executed,
        },
        config={"designs": ["intdiv", "newton"], "bitwidths": widths, "jobs": 2},
    )


def test_explorer_benchmark(benchmark):
    def run():
        explorer = DesignSpaceExplorer(
            "intdiv",
            5,
            configurations=[
                FlowConfiguration("esop", (("p", 0),)),
                FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
            ],
            verify=False,
        )
        explorer.explore()
        assert not explorer.errors
        return explorer.pareto_front()

    front = benchmark.pedantic(run, rounds=1, iterations=1)
    assert front
