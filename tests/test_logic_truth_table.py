"""Unit tests for repro.logic.truth_table."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.truth_table import (
    TruthTable,
    tt_and,
    tt_cofactor0,
    tt_cofactor1,
    tt_const0,
    tt_const1,
    tt_mask,
    tt_not,
    tt_or,
    tt_popcount,
    tt_support,
    tt_var,
    tt_xor,
)


class TestIntTruthTables:
    def test_constants(self):
        assert tt_const0(3) == 0
        assert tt_const1(3) == 0xFF

    def test_var_projection(self):
        # Variable 0 over 2 vars: minterms 1 and 3.
        assert tt_var(0, 2) == 0b1010
        assert tt_var(1, 2) == 0b1100

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            tt_var(2, 2)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_connectives(self, a, b):
        assert tt_and(a, b) == a & b
        assert tt_or(a, b) == a | b
        assert tt_xor(a, b) == a ^ b

    @given(st.integers(min_value=0, max_value=255))
    def test_not_involution(self, func):
        assert tt_not(tt_not(func, 3), 3) == func

    @given(
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=0, max_value=3),
    )
    def test_cofactors_semantics(self, func, var):
        num_vars = 4
        f0 = tt_cofactor0(func, var, num_vars)
        f1 = tt_cofactor1(func, var, num_vars)
        for x in range(16):
            bit = (func >> (x & ~(1 << var))) & 1
            assert ((f0 >> x) & 1) == bit
            bit = (func >> (x | (1 << var))) & 1
            assert ((f1 >> x) & 1) == bit

    def test_support(self):
        num_vars = 3
        func = tt_and(tt_var(0, num_vars), tt_var(2, num_vars))
        assert tt_support(func, num_vars) == [0, 2]
        assert tt_support(tt_const1(num_vars), num_vars) == []

    def test_popcount(self):
        assert tt_popcount(0b1011) == 3


class TestTruthTable:
    def test_from_callable_and_evaluate(self):
        # 2-bit adder without carry-in: 2 inputs a, b -> 2-bit sum.
        table = TruthTable.from_callable(lambda x: (x & 1) + ((x >> 1) & 1), 2, 2)
        assert table.evaluate(0b00) == 0
        assert table.evaluate(0b01) == 1
        assert table.evaluate(0b10) == 1
        assert table.evaluate(0b11) == 2

    def test_from_callable_rejects_overflow(self):
        with pytest.raises(ValueError):
            TruthTable.from_callable(lambda x: 4, 1, 2)

    def test_columns_roundtrip(self):
        table = TruthTable.from_callable(lambda x: (x * 3) & 0b111, 3, 3)
        rebuilt = TruthTable.from_columns(table.columns(), 3)
        assert rebuilt == table

    def test_column_matches_output_bit(self):
        table = TruthTable.from_callable(lambda x: (x * 5) & 0xF, 4, 4)
        for j in range(4):
            column = table.column(j)
            for x in range(16):
                assert ((column >> x) & 1) == table.output_bit(x, j)

    def test_column_array(self):
        table = TruthTable.from_callable(lambda x: x ^ (x >> 1), 3, 3)
        for j in range(3):
            array = table.column_array(j)
            assert array.dtype == bool
            for x in range(8):
                assert bool(array[x]) == bool(table.output_bit(x, j))

    def test_collisions_of_constant_function(self):
        table = TruthTable.from_callable(lambda x: 0, 3, 2)
        assert table.max_collisions() == 8
        assert table.collision_histogram() == {0: 8}

    def test_collisions_of_identity(self):
        table = TruthTable.from_callable(lambda x: x, 3, 3)
        assert table.max_collisions() == 1
        assert table.is_reversible()

    def test_permutation_requires_reversibility(self):
        table = TruthTable.from_callable(lambda x: 0, 2, 2)
        assert not table.is_reversible()
        with pytest.raises(ValueError):
            table.permutation()

    def test_permutation_of_xor_function(self):
        # (a, b) -> (a, a xor b) is reversible.
        table = TruthTable.from_callable(
            lambda x: (x & 1) | ((((x >> 1) ^ x) & 1) << 1), 2, 2
        )
        perm = table.permutation()
        assert sorted(perm.tolist()) == [0, 1, 2, 3]

    def test_select_outputs(self):
        table = TruthTable.from_callable(lambda x: x, 2, 2)
        swapped = table.select_outputs([1, 0])
        for x in range(4):
            word = table.evaluate(x)
            expected = ((word & 1) << 1) | ((word >> 1) & 1)
            assert swapped.evaluate(x) == expected

    def test_equality_and_shape_validation(self):
        a = TruthTable.from_callable(lambda x: x & 1, 2, 1)
        b = TruthTable.from_callable(lambda x: x & 1, 2, 1)
        c = TruthTable.from_callable(lambda x: (x >> 1) & 1, 2, 1)
        assert a == b
        assert a != c
        with pytest.raises(ValueError):
            TruthTable(2, 1, np.zeros(3, dtype=np.uint64))

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=2**16 - 1))
    def test_from_output_vectors_matches_columns(self, num_inputs, seed):
        rng = np.random.default_rng(seed)
        vec = rng.integers(0, 2, size=1 << num_inputs).astype(bool)
        table = TruthTable.from_output_vectors([vec])
        assert table.num_inputs == num_inputs
        for x in range(1 << num_inputs):
            assert table.output_bit(x, 0) == int(vec[x])
