"""Unit tests for collapsing (AIG -> BDD/ESOP/TT) and equivalence checking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig, lit_not
from repro.logic.cec import check_against_truth_table, check_equivalence
from repro.logic.collapse import (
    bdd_to_truth_table,
    collapse_to_bdd,
    collapse_to_esop,
    collapse_to_truth_table,
)
from repro.logic.truth_table import TruthTable


def build_comparator(width=3):
    """a < b comparator over two width-bit inputs."""
    aig = Aig("comparator")
    a = [aig.add_pi(f"a{i}") for i in range(width)]
    b = [aig.add_pi(f"b{i}") for i in range(width)]
    lt = Aig.CONST0
    eq = Aig.CONST1
    for i in reversed(range(width)):
        bit_lt = aig.create_and(lit_not(a[i]), b[i])
        lt = aig.create_or(lt, aig.create_and(eq, bit_lt))
        eq = aig.create_and(eq, aig.create_xnor(a[i], b[i]))
    aig.add_po(lt, "lt")
    aig.add_po(eq, "eq")
    return aig


class TestCollapse:
    def test_collapse_to_bdd_matches_truth_table(self):
        aig = build_comparator(3)
        manager, roots = collapse_to_bdd(aig)
        assert len(roots) == 2
        table = bdd_to_truth_table(manager, roots)
        assert table == aig.to_truth_table()

    def test_collapse_to_truth_table(self):
        aig = build_comparator(2)
        table = collapse_to_truth_table(aig)
        for x in range(16):
            va = x & 3
            vb = (x >> 2) & 3
            assert table.output_bit(x, 0) == int(va < vb)
            assert table.output_bit(x, 1) == int(va == vb)

    def test_collapse_to_esop_equivalent(self):
        aig = build_comparator(2)
        cover = collapse_to_esop(aig)
        assert cover.to_truth_table() == aig.to_truth_table()

    def test_collapse_to_esop_unminimized(self):
        aig = build_comparator(2)
        cover = collapse_to_esop(aig, minimize=False)
        assert cover.to_truth_table() == aig.to_truth_table()


class TestCec:
    def test_equivalent_structures(self):
        a = build_comparator(3)
        b = build_comparator(3)
        result = check_equivalence(a, b)
        assert result
        assert result.complete

    def test_inequivalent_detected(self):
        a = build_comparator(2)
        b = build_comparator(2)
        # Corrupt b by complementing one output.
        b_bad = Aig("bad")
        lits = [b_bad.add_pi(name) for name in b.pi_names()]
        mapping = {}
        for i, pi in enumerate(b.pis()):
            mapping[pi >> 1] = lits[i]
        rebuilt = b.cleanup()
        result_aig = rebuilt  # same function
        result = check_equivalence(a, result_aig)
        assert result.equivalent

        # Now flip one PO.
        flipped = Aig("flipped")
        lits = [flipped.add_pi(name) for name in a.pi_names()]
        x = flipped.create_and(lits[0], lits[1])
        flipped.add_po(x, "lt")
        flipped.add_po(lit_not(x), "eq")
        outcome = check_equivalence(a, flipped)
        assert not outcome.equivalent
        assert outcome.counterexample is not None

    def test_interface_mismatch_rejected(self):
        a = build_comparator(2)
        b = build_comparator(3)
        with pytest.raises(ValueError):
            check_equivalence(a, b)

    def test_bdd_method(self):
        a = build_comparator(2)
        b = build_comparator(2)
        assert check_equivalence(a, b, method="bdd").equivalent

    def test_random_method_finds_gross_differences(self):
        a = build_comparator(3)
        wrong = Aig("wrong")
        lits = [wrong.add_pi(name) for name in a.pi_names()]
        wrong.add_po(Aig.CONST1, "lt")
        wrong.add_po(Aig.CONST0, "eq")
        result = check_equivalence(
            a, wrong, method="random", num_random_patterns=16
        )
        assert not result.equivalent
        assert not result.complete

    def test_random_method_upgrades_to_complete_on_small_spaces(self):
        # A sample budget >= 2**n degrades to the exhaustive batch, so the
        # verdict is complete even though the caller asked for "random".
        a = build_comparator(2)
        b = build_comparator(2)
        result = check_equivalence(a, b, method="random")
        assert result.equivalent
        assert result.complete

    def test_unknown_method(self):
        a = build_comparator(2)
        with pytest.raises(ValueError):
            check_equivalence(a, a, method="sat")

    def test_check_against_truth_table(self):
        aig = build_comparator(2)
        table = aig.to_truth_table()
        assert check_against_truth_table(aig, table).equivalent
        # Build a wrong table by flipping one word.
        words = table.words.copy()
        words[0] ^= 1
        wrong = TruthTable(table.num_inputs, table.num_outputs, words)
        result = check_against_truth_table(aig, wrong)
        assert not result.equivalent
        assert result.counterexample == 0

    def test_check_against_truth_table_interface(self):
        aig = build_comparator(2)
        with pytest.raises(ValueError):
            check_against_truth_table(
                aig, TruthTable.from_callable(lambda x: 0, 2, 1)
            )
