"""Additional quantum-level tests: statevector physics and mapping corner cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit, QuantumGate
from repro.quantum.mapping import map_to_clifford_t, toffoli_clifford_t
from repro.quantum.statevector import Statevector, circuit_permutation
from repro.quantum.tcount import available_models, circuit_t_count
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate


def random_clifford_t_circuit(seed, num_qubits=3, num_gates=20):
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    single = ["x", "z", "h", "s", "sdg", "t", "tdg"]
    for _ in range(num_gates):
        if rng.random() < 0.7:
            circuit.add(single[int(rng.integers(0, len(single)))], int(rng.integers(0, num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.add("cx" if rng.random() < 0.5 else "cz", int(a), int(b))
    return circuit


class TestStatevectorPhysics:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_norm_preserved(self, seed):
        circuit = random_clifford_t_circuit(seed)
        state = Statevector(3, seed % 8)
        state.apply_circuit(circuit)
        assert np.sum(np.abs(state.amplitudes) ** 2) == pytest.approx(1.0)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_inverse_circuit_restores_state(self, seed):
        circuit = random_clifford_t_circuit(seed, num_gates=10)
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        inverse = QuantumCircuit(3)
        for gate in reversed(circuit.gates()):
            inverse.add(inverse_names.get(gate.name, gate.name), *gate.qubits)
        state = Statevector(3, seed % 8)
        state.apply_circuit(circuit)
        state.apply_circuit(inverse)
        assert state.probability(seed % 8) == pytest.approx(1.0)

    def test_circuit_permutation_detects_dirty_ancilla(self):
        circuit = QuantumCircuit(2)
        circuit.add("x", 1)  # flips the "ancilla" qubit unconditionally
        with pytest.raises(ValueError):
            list(circuit_permutation(circuit, 1))


class TestMappingCornerCases:
    def test_all_negative_controls(self):
        rev = ReversibleCircuit()
        for _ in range(4):
            rev.add_constant_line(0)
        gate = ToffoliGate.from_lines([], [0, 1, 2], 3)
        rev.append(gate)
        quantum = map_to_clifford_t(rev)
        images = list(circuit_permutation(quantum, 4))
        for basis in range(16):
            assert images[basis] == gate.apply(basis)

    def test_not_and_cnot_cost_nothing(self):
        rev = ReversibleCircuit()
        for _ in range(2):
            rev.add_constant_line(0)
        rev.append(ToffoliGate.x(0))
        rev.append(ToffoliGate.cnot(0, 1))
        quantum = map_to_clifford_t(rev)
        assert quantum.t_count() == 0
        for model in available_models():
            assert circuit_t_count(rev, model) == 0

    def test_toffoli_decomposition_gate_inventory(self):
        gates = toffoli_clifford_t(0, 1, 2)
        names = [g.name for g in gates]
        assert names.count("h") == 2
        assert names.count("cx") == 6
        assert names.count("t") + names.count("tdg") == 7

    def test_mapping_of_large_gate_adds_shared_ancillas(self):
        rev = ReversibleCircuit()
        for _ in range(8):
            rev.add_constant_line(0)
        rev.append(ToffoliGate.from_lines(list(range(6)), [], 7))
        rev.append(ToffoliGate.from_lines(list(range(5)), [], 6))
        quantum = map_to_clifford_t(rev)
        # max controls = 6 -> 4 shared ancillas, reused by both gates.
        assert quantum.num_qubits == 8 + 4

    def test_t_depth_not_larger_than_t_count(self):
        rev = ReversibleCircuit()
        for _ in range(5):
            rev.add_constant_line(0)
        rev.append(ToffoliGate.from_lines([0, 1, 2], [], 4))
        quantum = map_to_clifford_t(rev)
        assert 0 < quantum.t_depth() <= quantum.t_count()
