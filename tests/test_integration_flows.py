"""Cross-module integration tests: Verilog to verified quantum-level output.

These tests exercise the full stack in combinations the per-module unit
tests do not: random word-level programs through every flow, the reciprocal
designs down to Clifford+T, and file exports of flow results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import run_flow
from repro.hdl.designs import intdiv_reference, newton_reference
from repro.hdl.isqrt import isqrt_reference
from repro.hdl.synthesize import synthesize_to_netlist, synthesize_verilog
from repro.io.aiger import read_aiger, write_aiger
from repro.io.qasm import write_qasm
from repro.io.realfmt import read_real, write_real
from repro.quantum.mapping import map_to_clifford_t
from repro.quantum.statevector import simulate_basis_state
from repro.reversible.verification import verify_circuit


def random_verilog(seed_ops):
    """Generate a small combinational module from a list of op selectors."""
    expressions = ["a", "b", "{1'b0, a[1:0]}"]
    operators = ["+", "-", "&", "|", "^", "*"]
    body = []
    for index, (op_index, left, right) in enumerate(seed_ops):
        op = operators[op_index % len(operators)]
        lhs = expressions[left % len(expressions)]
        rhs = expressions[right % len(expressions)]
        name = f"t{index}"
        body.append(f"    wire [2:0] {name} = {lhs} {op} {rhs};")
        expressions.append(name)
    output_expr = expressions[-1]
    lines = [
        "module random_block (",
        "    input  [2:0] a,",
        "    input  [2:0] b,",
        "    output [2:0] y",
        ");",
        *body,
        f"    assign y = {output_expr};",
        "endmodule",
    ]
    return "\n".join(lines)


seed_ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
    ),
    min_size=1,
    max_size=5,
)


class TestRandomProgramsThroughFlows:
    @given(seed_ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_esop_flow_matches_word_level_model(self, seed_ops):
        source = random_verilog(seed_ops)
        netlist = synthesize_to_netlist(source)
        result = run_flow("esop", "random_block", 3, verilog=source, verify=False)
        circuit = result.circuit
        for a in range(8):
            for b in range(0, 8, 3):
                expected = netlist.evaluate({"a": a, "b": b})["y"]
                assert circuit.evaluate(a | (b << 3)) == expected

    @given(seed_ops_strategy)
    @settings(max_examples=6, deadline=None)
    def test_hierarchical_flow_matches_word_level_model(self, seed_ops):
        source = random_verilog(seed_ops)
        netlist = synthesize_to_netlist(source)
        result = run_flow("hierarchical", "random_block", 3, verilog=source, verify=False)
        circuit = result.circuit
        for a in (0, 3, 5, 7):
            for b in (0, 2, 6):
                expected = netlist.evaluate({"a": a, "b": b})["y"]
                assert circuit.evaluate(a | (b << 3)) == expected


class TestDesignsAcrossFlows:
    @pytest.mark.parametrize(
        "design,reference",
        [("intdiv", intdiv_reference), ("newton", newton_reference), ("isqrt", isqrt_reference)],
    )
    @pytest.mark.parametrize("flow", ["symbolic", "esop", "hierarchical"])
    def test_all_designs_through_all_flows(self, design, reference, flow):
        n = 4
        result = run_flow(flow, design, n)
        assert result.report.verified is True
        circuit = result.circuit
        for x in range(1 << n):
            assert circuit.evaluate(x) == reference(n, x)

    def test_post_optimize_option(self):
        plain = run_flow("hierarchical", "intdiv", 4, verify=True)
        optimized = run_flow("hierarchical", "intdiv", 4, verify=True, post_optimize=True)
        assert optimized.report.verified is True
        assert optimized.report.gate_count <= plain.report.gate_count
        assert optimized.report.t_count <= plain.report.t_count


class TestQuantumLevelIntegration:
    def test_esop_reciprocal_to_clifford_t(self):
        n = 3
        result = run_flow("esop", "intdiv", n, p=0)
        quantum = map_to_clifford_t(result.circuit)
        input_lines = result.circuit.input_lines()
        output_lines = result.circuit.output_lines()
        for x in range(1, 1 << n):
            basis = 0
            for i, line in input_lines.items():
                if (x >> i) & 1:
                    basis |= 1 << line
            image = simulate_basis_state(quantum, basis)
            value = 0
            for j, line in output_lines.items():
                if (image >> line) & 1:
                    value |= 1 << j
            assert value == intdiv_reference(n, x)

    def test_qasm_export_of_flow_result(self):
        result = run_flow("esop", "intdiv", 4, p=0)
        quantum = map_to_clifford_t(result.circuit)
        text = write_qasm(quantum)
        assert f"qreg q[{quantum.num_qubits}];" in text
        assert text.count("\n") == quantum.num_gates() + 3


class TestFileExportsOfFlowResults:
    def test_real_roundtrip_of_flow_circuit(self):
        result = run_flow("esop", "intdiv", 4, p=1)
        circuit = result.circuit
        parsed = read_real(write_real(circuit))
        assert parsed.num_gates() == circuit.num_gates()
        # The parsed circuit keeps the same functional behaviour on the
        # original input encoding (line order is preserved by the format).
        for x in (1, 5, 9, 15):
            assert parsed.apply_to_state(circuit.initial_state(x)) == circuit.final_state(x)

    def test_aiger_roundtrip_of_bitblasted_design(self):
        aig = synthesize_verilog(random_verilog([(0, 0, 1), (4, 2, 3)]))
        parsed = read_aiger(write_aiger(aig))
        assert parsed.to_truth_table() == aig.to_truth_table()

    def test_flow_verification_against_aiger_import(self):
        # Export INTDIV(4) as AIGER, re-import it and run a flow on the
        # imported network: the result must still verify against the design.
        source_aig = synthesize_verilog(
            "module m (input [3:0] x, output [3:0] y);\n"
            "  wire [4:0] q = {1'b1, 4'b0000} / {1'b0, x};\n"
            "  assign y = q[3:0];\n"
            "endmodule\n"
        )
        imported = read_aiger(write_aiger(source_aig))
        result = run_flow("esop", imported, 4)
        assert result.report.verified is True
        assert verify_circuit(result.circuit, source_aig.to_truth_table())
