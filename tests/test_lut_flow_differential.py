"""Differential verification of the LUT-based pebbling flow.

Every circuit the ``lut`` flow produces is cross-checked against the
bit-blasted AIG with the bit-parallel differential checker — ≥25 fuzzed
AIGs plus the paper's named designs (``intdiv``, ``newton``, ``isqrt``),
for LUT sizes k ∈ {2, 3, 4} and every pebbling strategy.  Small circuits
are additionally pushed through the Clifford+T mapping and re-checked as a
classical permutation (the mapped leg).
"""

import pytest

from repro.core.flows import run_flow
from repro.quantum.mapping import map_to_clifford_t
from repro.verify.differential import check_equivalent, mapped_circuit_simulator
from repro.verify.fuzz import random_aig

NUM_FUZZ_CASES = 25
LUT_SIZES = (2, 3, 4)

#: strategy name -> extra flow parameters.
STRATEGIES = {
    "bennett": {},
    "eager": {},
    "bounded": {"max_pebbles": 0.5},
}

#: The mapped Clifford+T cross-check simulates a dense statevector per
#: pattern; keep it to circuits this small.
QUANTUM_QUBIT_LIMIT = 12


class TestFuzzedAigsThroughLutFlow:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(NUM_FUZZ_CASES))
    def test_fuzzed_aig_equivalent_for_every_lut_size(self, strategy, seed):
        aig = random_aig(seed, num_pis=3, num_gates=10, num_pos=2)
        for k in LUT_SIZES:
            result = run_flow(
                "lut",
                aig,
                3,
                verify=False,
                k=k,
                strategy=strategy,
                **STRATEGIES[strategy],
            )
            check = check_equivalent(aig, result.circuit, mode="auto")
            assert check.equivalent, f"seed {seed}, k {k}: {check.message}"
            assert check.complete  # 3 inputs => auto checks exhaustively

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    @pytest.mark.parametrize("seed", range(10))
    def test_mapped_clifford_t_leg(self, strategy, seed):
        # Tiny AIGs keep every strategy's circuit within the statevector
        # budget, so the mapped leg genuinely runs for all cases.
        aig = random_aig(seed, num_pis=3, num_gates=6, num_pos=2)
        result = run_flow(
            "lut", aig, 3, verify=False, k=3,
            strategy=strategy, **STRATEGIES[strategy],
        )
        circuit = result.circuit
        assert circuit.num_lines() <= QUANTUM_QUBIT_LIMIT, (
            f"seed {seed}: {circuit.num_lines()} qubits exceed the "
            f"statevector budget; shrink the fuzzed AIGs"
        )
        quantum = map_to_clifford_t(circuit)
        check = check_equivalent(
            circuit,
            mapped_circuit_simulator(quantum, circuit),
            mode="sampled",
            num_samples=4,
            seed=seed,
        )
        assert check.equivalent, f"seed {seed}: {check.message}"


#: design -> bitwidth; chosen so the whole k x strategy grid stays fast
#: (the isqrt generator emits a large AIG even at n = 2).
DESIGN_BITWIDTHS = {"intdiv": 3, "newton": 2, "isqrt": 2}


@pytest.fixture(scope="module")
def design_aigs():
    from repro.core.flows import frontend_artifacts

    return {
        design: frontend_artifacts(design, bitwidth)["aig"]
        for design, bitwidth in DESIGN_BITWIDTHS.items()
    }


class TestNamedDesignsThroughLutFlow:
    @pytest.mark.parametrize("design", sorted(DESIGN_BITWIDTHS))
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_design_equivalent_for_every_lut_size(
        self, design, strategy, design_aigs
    ):
        aig = design_aigs[design]
        for k in LUT_SIZES:
            result = run_flow(
                "lut",
                design,
                DESIGN_BITWIDTHS[design],
                verify=False,
                aig=aig,
                k=k,
                strategy=strategy,
                **STRATEGIES[strategy],
            )
            check = check_equivalent(aig, result.circuit, mode="auto")
            assert check.equivalent, f"{design}, k {k}: {check.message}"
            assert check.complete

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_flow_verify_stage_agrees(self, strategy):
        # The in-flow verify stage is the same checker; a full-mode run must
        # come back verified with a complete verdict.
        result = run_flow(
            "lut", "intdiv", 3, verify="full",
            strategy=strategy, **STRATEGIES[strategy],
        )
        assert result.report.verified is True
        assert result.context["verify_complete"] is True


class TestLutFlowMetrics:
    def test_extra_metrics_describe_the_schedule(self):
        result = run_flow("lut", "intdiv", 3, verify=False, strategy="bennett")
        extra = result.report.extra
        assert extra["num_luts"] > 0
        assert extra["pebble_peak"] == extra["num_luts"]  # bennett peak
        assert extra["recomputes"] == 0
        assert extra["schedule_steps"] >= 2 * extra["num_luts"]

    def test_bounded_budget_reflected_in_metrics(self):
        # k = 2 keeps the LUT DAG deep, so the halved budget forces
        # genuine recomputation.
        result = run_flow(
            "lut", "intdiv", 4, verify=False, k=2,
            strategy="bounded", max_pebbles=0.5,
        )
        extra = result.report.extra
        schedule = result.context["schedule"]
        assert extra["pebble_peak"] <= schedule.max_pebbles
        assert extra["recomputes"] > 0  # under budget, sharing is recomputed

    def test_qubits_bounded_by_budget_plus_io(self):
        result = run_flow(
            "lut", "intdiv", 4, verify=False, k=2,
            strategy="bounded", max_pebbles=0.5,
        )
        circuit = result.circuit
        schedule = result.context["schedule"]
        assert (
            circuit.num_lines()
            <= circuit.num_inputs() + circuit.num_outputs() + schedule.max_pebbles
        )
