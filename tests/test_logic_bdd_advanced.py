"""Deeper property-based tests for the BDD manager.

These complement ``test_logic_bdd.py`` with algebraic identities (De Morgan,
Shannon expansion, ITE consistency), structural canonicity properties and
consistency between the BDD and explicit truth-table semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bdd import BddManager
from repro.logic.truth_table import tt_mask

NUM_VARS = 4
FUNC = st.integers(min_value=0, max_value=(1 << (1 << NUM_VARS)) - 1)


def manager_with(funcs):
    manager = BddManager(NUM_VARS)
    return manager, [manager.from_truth_table(f) for f in funcs]


class TestAlgebraicIdentities:
    @given(FUNC, FUNC)
    @settings(max_examples=150)
    def test_de_morgan(self, fa, fb):
        manager, (a, b) = manager_with([fa, fb])
        left = manager.apply_not(manager.apply_and(a, b))
        right = manager.apply_or(manager.apply_not(a), manager.apply_not(b))
        assert left == right

    @given(FUNC, FUNC)
    @settings(max_examples=150)
    def test_absorption(self, fa, fb):
        manager, (a, b) = manager_with([fa, fb])
        assert manager.apply_or(a, manager.apply_and(a, b)) == a
        assert manager.apply_and(a, manager.apply_or(a, b)) == a

    @given(FUNC, FUNC, FUNC)
    @settings(max_examples=100)
    def test_distributivity(self, fa, fb, fc):
        manager, (a, b, c) = manager_with([fa, fb, fc])
        left = manager.apply_and(a, manager.apply_or(b, c))
        right = manager.apply_or(manager.apply_and(a, b), manager.apply_and(a, c))
        assert left == right

    @given(FUNC, st.integers(min_value=0, max_value=NUM_VARS - 1))
    @settings(max_examples=150)
    def test_shannon_expansion(self, func, var):
        manager, (f,) = manager_with([func])
        x = manager.variable(var)
        expansion = manager.apply_or(
            manager.apply_and(x, manager.restrict(f, var, True)),
            manager.apply_and(manager.apply_not(x), manager.restrict(f, var, False)),
        )
        assert expansion == f

    @given(FUNC, FUNC)
    @settings(max_examples=150)
    def test_xor_via_ite(self, fa, fb):
        manager, (a, b) = manager_with([fa, fb])
        assert manager.apply_xor(a, b) == manager.ite(a, manager.apply_not(b), b)

    @given(FUNC, FUNC)
    @settings(max_examples=100)
    def test_xnor_is_complement_of_xor(self, fa, fb):
        manager, (a, b) = manager_with([fa, fb])
        assert manager.apply_xnor(a, b) == manager.apply_not(manager.apply_xor(a, b))


class TestCanonicity:
    @given(FUNC)
    @settings(max_examples=150)
    def test_same_function_same_node(self, func):
        manager = BddManager(NUM_VARS)
        first = manager.from_truth_table(func)
        # Rebuild the function through a different syntactic route.
        second = manager.apply_or(
            manager.apply_and(first, manager.true()), manager.false()
        )
        assert first == second

    @given(FUNC)
    @settings(max_examples=150)
    def test_double_negation(self, func):
        manager, (f,) = manager_with([func])
        assert manager.apply_not(manager.apply_not(f)) == f

    @given(FUNC)
    @settings(max_examples=100)
    def test_node_count_bounded(self, func):
        manager, (f,) = manager_with([func])
        # A 4-variable BDD can never need more than 2^4 internal nodes.
        assert manager.node_count([f]) <= 16


class TestQuantificationAndSupport:
    @given(FUNC, st.integers(min_value=0, max_value=NUM_VARS - 1))
    @settings(max_examples=150)
    def test_exists_forall_duality(self, func, var):
        manager, (f,) = manager_with([func])
        left = manager.exists(f, [var])
        right = manager.apply_not(manager.forall(manager.apply_not(f), [var]))
        assert left == right

    @given(FUNC, st.integers(min_value=0, max_value=NUM_VARS - 1))
    @settings(max_examples=150)
    def test_quantified_variable_leaves_support(self, func, var):
        manager, (f,) = manager_with([func])
        assert var not in manager.support(manager.exists(f, [var]))
        assert var not in manager.support(manager.forall(f, [var]))

    @given(FUNC)
    @settings(max_examples=100)
    def test_exists_over_all_vars_is_constant(self, func):
        manager, (f,) = manager_with([func])
        quantified = manager.exists(f, range(NUM_VARS))
        assert quantified == (manager.false() if func == 0 else manager.true())

    @given(FUNC, FUNC)
    @settings(max_examples=100)
    def test_satcount_inclusion_exclusion(self, fa, fb):
        manager, (a, b) = manager_with([fa, fb])
        union = manager.satcount(manager.apply_or(a, b))
        intersection = manager.satcount(manager.apply_and(a, b))
        assert union + intersection == manager.satcount(a) + manager.satcount(b)

    @given(FUNC, st.integers(min_value=0, max_value=NUM_VARS - 1), FUNC)
    @settings(max_examples=100)
    def test_compose_matches_truth_table(self, func, var, gfunc):
        manager, (f, g) = manager_with([func, gfunc])
        composed = manager.compose(f, var, g)
        mask = tt_mask(NUM_VARS)
        expected = 0
        for x in range(1 << NUM_VARS):
            g_value = (gfunc >> x) & 1
            substituted = (x | (1 << var)) if g_value else (x & ~(1 << var))
            if (func >> substituted) & 1:
                expected |= 1 << x
        assert manager.to_truth_table(composed) == expected & mask
