"""Unit tests for the structural fuzzers (repro.verify.fuzz).

The fuzzers only earn their keep if they are (a) deterministic per seed —
a failing property test must be reproducible from its printed seed — and
(b) structurally valid — every generated artifact must be accepted by the
layer it feeds.
"""

import numpy as np
import pytest

from repro.hdl.synthesize import synthesize_verilog
from repro.verify.fuzz import (
    random_aig,
    random_hdl_design,
    random_truth_table,
    random_xmg,
)


class TestDeterminism:
    def test_truth_table_deterministic_per_seed(self):
        assert random_truth_table(5) == random_truth_table(5)
        assert random_truth_table(5) != random_truth_table(6)

    def test_aig_deterministic_per_seed(self):
        a, b = random_aig(9), random_aig(9)
        assert a.to_truth_table() == b.to_truth_table()
        assert a.num_nodes() == b.num_nodes()

    def test_xmg_deterministic_per_seed(self):
        a, b = random_xmg(9), random_xmg(9)
        assert a.to_truth_table() == b.to_truth_table()

    def test_hdl_deterministic_per_seed(self):
        assert random_hdl_design(3) == random_hdl_design(3)
        assert random_hdl_design(3) != random_hdl_design(4)


class TestStructuralValidity:
    @pytest.mark.parametrize("seed", range(8))
    def test_aig_has_requested_interface(self, seed):
        aig = random_aig(seed, num_pis=5, num_gates=20, num_pos=4)
        assert aig.num_pis() == 5
        assert aig.num_pos() == 4
        # Evaluation works over the whole input space.
        table = aig.to_truth_table()
        assert table.num_inputs == 5 and table.num_outputs == 4

    @pytest.mark.parametrize("seed", range(8))
    def test_xmg_has_requested_interface(self, seed):
        xmg = random_xmg(seed, num_pis=4, num_gates=15, num_pos=3)
        assert xmg.num_pis() == 4
        assert xmg.num_pos() == 3

    @pytest.mark.parametrize("seed", range(20))
    def test_hdl_designs_synthesize(self, seed):
        source = random_hdl_design(seed, width=3, num_inputs=2, num_wires=5)
        aig = synthesize_verilog(source)
        assert aig.num_pis() == 2 * 3
        assert aig.num_pos() == 3

    def test_hdl_width_and_inputs_respected(self):
        source = random_hdl_design(1, width=4, num_inputs=3, num_wires=3)
        aig = synthesize_verilog(source)
        assert aig.num_pis() == 3 * 4
        assert aig.num_pos() == 4

    def test_hdl_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            random_hdl_design(0, width=0)
        with pytest.raises(ValueError):
            random_hdl_design(0, num_inputs=0)

    def test_truth_table_words_in_range(self):
        table = random_truth_table(2, num_inputs=5, num_outputs=4)
        assert table.num_inputs == 5
        assert table.num_outputs == 4
        assert int(np.max(table.words)) < 16


class TestCorpusDiversity:
    def test_aig_corpus_is_not_degenerate(self):
        # Across a seed range, the fuzzer must produce functionally
        # distinct, mostly non-constant networks.
        tables = {random_aig(seed).to_truth_table() for seed in range(20)}
        assert len(tables) >= 15
        nonconstant = [
            t for t in tables if len({int(w) for w in t.words}) > 1
        ]
        assert len(nonconstant) >= 10

    def test_hdl_corpus_uses_distinct_operators(self):
        corpus = "".join(random_hdl_design(seed) for seed in range(10))
        for operator in ("+", "^", "?", "<<"):
            assert operator in corpus
