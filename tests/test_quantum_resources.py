"""Tests for the quantum resource estimator and the rtof mapping model.

Covers :mod:`repro.quantum.resources` (T-depth/depth greedy layering, gate
histograms, serialisation) and the end-to-end property the tentpole rests
on: circuits mapped with the 4-T relative-phase Toffoli model are full
classical permutations — the relative phases cancel across the
compute/uncompute pairs — verified differentially against the reversible
cascade they were mapped from.
"""

import pytest

from repro.core.flows import run_flow
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.mapping import (
    map_to_clifford_t,
    relative_phase_toffoli,
    relative_phase_toffoli_adjoint,
)
from repro.quantum.resources import estimate_resources
from repro.quantum.statevector import Statevector
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.verify.differential import (
    check_equivalent,
    check_quantum_equivalent,
    mapped_circuit_simulator,
)


class TestResourceEstimate:
    def test_empty_circuit(self):
        estimate = estimate_resources(QuantumCircuit(3))
        assert estimate.t_count == 0
        assert estimate.t_depth == 0
        assert estimate.depth == 0
        assert estimate.num_qubits == 3
        assert estimate.gate_counts == {}

    def test_sequential_t_gates_on_one_qubit(self):
        circuit = QuantumCircuit(2)
        for _ in range(4):
            circuit.add("t", 0)
        estimate = estimate_resources(circuit)
        assert estimate.t_count == 4
        assert estimate.t_depth == 4
        assert estimate.depth == 4

    def test_parallel_t_gates_share_a_layer(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.add("t", q)
        estimate = estimate_resources(circuit)
        assert estimate.t_count == 4
        assert estimate.t_depth == 1
        assert estimate.depth == 1

    def test_clifford_gates_synchronise_without_t_layers(self):
        circuit = QuantumCircuit(2)
        circuit.add("t", 0)
        circuit.add("cx", 0, 1)  # ties qubit 1 to qubit 0's T level
        circuit.add("t", 1)
        estimate = estimate_resources(circuit)
        assert estimate.t_depth == 2
        assert estimate.depth == 3

    def test_matches_circuit_methods(self):
        rev = ReversibleCircuit()
        for i in range(4):
            rev.add_input_line(i)
            rev.set_output(i, i)
        rev.append(ToffoliGate.from_lines([0, 1, 2], [], 3))
        quantum = map_to_clifford_t(rev)
        estimate = estimate_resources(quantum)
        assert estimate.t_count == quantum.t_count()
        assert estimate.t_depth == quantum.t_depth()
        assert estimate.num_gates == quantum.num_gates()
        assert estimate.gate_counts == quantum.gate_counts()
        assert sum(estimate.gate_counts.values()) == estimate.num_gates

    def test_to_dict_round_trips_json(self):
        import json

        estimate = estimate_resources(map_to_clifford_t(_mct_circuit(3)))
        payload = json.loads(json.dumps(estimate.to_dict()))
        assert payload["t_count"] == estimate.t_count
        assert payload["gate_counts"]["cx"] == estimate.gate_counts["cx"]


def _mct_circuit(num_controls):
    rev = ReversibleCircuit(f"mct{num_controls}")
    for i in range(num_controls + 1):
        rev.add_input_line(i)
        rev.set_output(i, i)
    rev.append(ToffoliGate.from_lines(list(range(num_controls)), [], num_controls))
    return rev


class TestRtofMapping:
    def test_rtof_pair_is_identity(self):
        circuit = QuantumCircuit(3)
        circuit.extend(relative_phase_toffoli(0, 1, 2))
        circuit.extend(relative_phase_toffoli_adjoint(0, 1, 2))
        check = check_quantum_equivalent(
            circuit, QuantumCircuit(3), mode="full"
        )
        assert check.equivalent, check.message

    def test_rtof_alone_has_relative_phase(self):
        # The bare RTOF is NOT a classical permutation with trivial phases:
        # |110> picks up -i.  This is what makes the 4-T construction legal
        # only inside compute/uncompute pairs.
        circuit = QuantumCircuit(3)
        circuit.extend(relative_phase_toffoli(0, 1, 2))
        state = Statevector(3, 0b011)  # qubit0=a=1, qubit1=b=1, target=0
        state.apply_circuit(circuit)
        amplitude = state.amplitudes[0b111]
        assert abs(amplitude - (-1j)) < 1e-9

    @pytest.mark.parametrize("num_controls", [3, 4, 5])
    def test_rtof_mapped_mct_is_exact_permutation(self, num_controls):
        rev = _mct_circuit(num_controls)
        quantum = map_to_clifford_t(rev, model="rtof")
        check = check_equivalent(
            rev, mapped_circuit_simulator(quantum, rev), mode="full"
        )
        assert check.equivalent, check.message

    @pytest.mark.parametrize("model", ["rtof", "barenco"])
    def test_mapped_flow_circuit_passes_differential(self, model):
        result = run_flow("esop", "intdiv", 3, verify="off", p=0)
        quantum = map_to_clifford_t(result.circuit, model=model)
        check = check_equivalent(
            result.circuit,
            mapped_circuit_simulator(quantum, result.circuit),
            mode="full",
        )
        assert check.equivalent, check.message

    def test_rtof_t_depth_not_worse_than_barenco(self):
        rev = _mct_circuit(5)
        rtof = estimate_resources(map_to_clifford_t(rev, model="rtof"))
        barenco = estimate_resources(map_to_clifford_t(rev, model="barenco"))
        assert rtof.t_count < barenco.t_count
        assert rtof.t_depth <= barenco.t_depth

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            map_to_clifford_t(_mct_circuit(3), model="maslov2020")

    def test_ancillas_sized_from_normalized_gates(self):
        # A wide unsatisfiable gate is skipped entirely: it must not
        # inflate the shared ancilla register of the mapped circuit.
        rev = ReversibleCircuit()
        for i in range(6):
            rev.add_input_line(i)
            rev.set_output(i, i)
        rev.append(
            ToffoliGate(
                ((0, True), (0, False), (1, True), (2, True), (3, True)), 5
            )
        )
        rev.append(ToffoliGate.cnot(0, 1))
        quantum = map_to_clifford_t(rev)
        assert quantum.num_qubits == rev.num_lines()
        # A duplicated entry is charged (and sized) once: 3 distinct
        # controls need exactly one clean ancilla.
        rev2 = ReversibleCircuit()
        for i in range(5):
            rev2.add_input_line(i)
            rev2.set_output(i, i)
        rev2.append(
            ToffoliGate(((0, True), (0, True), (1, True), (2, True)), 4)
        )
        assert map_to_clifford_t(rev2).num_qubits == rev2.num_lines() + 1


class TestQuantumEquivalenceChecker:
    def test_qubit_count_mismatch(self):
        result = check_quantum_equivalent(
            QuantumCircuit(2), QuantumCircuit(3), mode="full"
        )
        assert not result.equivalent
        assert "qubit counts differ" in result.message

    def test_catches_global_gate_loss(self):
        spec = QuantumCircuit(2)
        spec.add("t", 0)
        result = check_quantum_equivalent(spec, QuantumCircuit(2), mode="full")
        assert not result.equivalent
        assert result.counterexample is not None

    def test_sampled_mode_is_seeded(self):
        circuit = QuantumCircuit(10)
        circuit.add("x", 9)
        a = check_quantum_equivalent(
            circuit, circuit.copy(), mode="sampled", num_samples=4, seed=7
        )
        b = check_quantum_equivalent(
            circuit, circuit.copy(), mode="sampled", num_samples=4, seed=7
        )
        assert a.equivalent and b.equivalent
        assert a.num_patterns == b.num_patterns == 4
        assert not a.complete

    def test_qubit_limit_enforced(self):
        with pytest.raises(ValueError):
            check_quantum_equivalent(
                QuantumCircuit(17), QuantumCircuit(17), mode="sampled"
            )
