"""Tests for the pass manager: registry, pipelines, guards, pass libraries.

The central property (ISSUE satellite): every registered pass preserves
functional equivalence on fuzzed AIGs and XMGs, checked with the
differential checker in ``auto`` mode; and pipeline parsing round-trips
(``str(pipeline)`` reparses to the same passes).
"""

import pytest

from repro.core.cache import cache_key
from repro.core.flows import run_flow
from repro.logic.aig import Aig
from repro.logic.aig_opt import optimize_script
from repro.logic.network import network_cost
from repro.logic.xmg import Xmg
from repro.opt import (
    DEFAULT_XMG_PIPELINE,
    Pass,
    Pipeline,
    PipelineError,
    PipelineVerificationError,
    UnknownPassError,
    as_pipeline,
    available_passes,
    get_pass,
    named_pipelines,
    parse_pipeline,
    register_pass,
    unregister_pass,
)
from repro.opt.xmg_passes import (
    xmg_refactor,
    xmg_rewrite,
    xmg_strash,
    xmg_xor_simplify,
)
from repro.verify.differential import check_equivalent
from repro.verify.fuzz import random_aig, random_xmg

FUZZ_SEEDS = range(12)


def fuzzed_network(kind, seed):
    if kind == "aig":
        return random_aig(seed, num_pis=4, num_gates=14, num_pos=3)
    return random_xmg(seed, num_pis=4, num_gates=12, num_pos=3)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_passes_registered(self):
        names = {p.name for p in available_passes()}
        assert {
            "balance",
            "rewrite",
            "refactor",
            "dc2",
            "resyn2",
            "xmg_strash",
            "xmg_rewrite",
            "xmg_xor",
            "xmg_refactor",
        } <= names

    def test_network_type_filter(self):
        aig_names = {p.name for p in available_passes("aig")}
        xmg_names = {p.name for p in available_passes("xmg")}
        assert "balance" in aig_names and "balance" not in xmg_names
        assert "xmg_refactor" in xmg_names and "xmg_refactor" not in aig_names

    def test_aliases_resolve(self):
        assert get_pass("b") is get_pass("balance")
        assert get_pass("rw") is get_pass("rewrite")
        assert get_pass("rf") is get_pass("refactor")
        assert get_pass("xst") is get_pass("xmg_strash")
        assert get_pass("xrf") is get_pass("xmg_refactor")

    def test_unknown_name_has_suggestion(self):
        with pytest.raises(UnknownPassError) as excinfo:
            get_pass("rewritee")
        assert excinfo.value.suggestion == "rewrite"
        assert "did you mean" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)

    def test_register_rejects_collisions(self):
        with pytest.raises(ValueError):
            register_pass(Pass("balance", lambda n: n))

    def test_register_and_unregister_roundtrip(self):
        pass_ = Pass("tmp_identity", lambda n: n.cleanup(), aliases=("tmpid",))
        register_pass(pass_)
        try:
            assert get_pass("tmpid") is pass_
        finally:
            unregister_pass("tmp_identity")
        with pytest.raises(UnknownPassError):
            get_pass("tmp_identity")
        with pytest.raises(UnknownPassError):
            get_pass("tmpid")

    def test_named_pipeline_registered(self):
        assert DEFAULT_XMG_PIPELINE in named_pipelines()

    def test_pass_rejects_invalid_network_types(self):
        with pytest.raises(ValueError):
            Pass("bad", lambda n: n, network_types=("qmg",))


# ---------------------------------------------------------------------------
# Pipeline parsing
# ---------------------------------------------------------------------------


class TestPipelineParsing:
    @pytest.mark.parametrize(
        "spec, names",
        [
            ("b;rw;rf", ["balance", "rewrite", "refactor"]),
            ("dc2*3", ["dc2"] * 3),
            ("(b;rw)*2", ["balance", "rewrite", "balance", "rewrite"]),
            ("dc2 ; resyn2", ["dc2", "resyn2"]),
            ("b rw", ["balance", "rewrite"]),
            ("b;;rw;", ["balance", "rewrite"]),
            ("", []),
            ("none", []),
            ("off", []),
            ("dc2*0", []),
        ],
    )
    def test_parse(self, spec, names):
        assert parse_pipeline(spec).pass_names() == names

    @pytest.mark.parametrize(
        "spec",
        [
            "b;rw;rf",
            "dc2*3",
            "(b;rw)*2;rf",
            DEFAULT_XMG_PIPELINE,
            "xst;xrw;xxor;xrf",
            "",
        ],
    )
    def test_round_trip(self, spec):
        pipeline = parse_pipeline(spec)
        assert parse_pipeline(str(pipeline)) == pipeline
        # The canonical form is stable.
        assert str(parse_pipeline(str(pipeline))) == str(pipeline)

    def test_named_pipeline_expands(self):
        pipeline = parse_pipeline(DEFAULT_XMG_PIPELINE)
        assert pipeline.pass_names() == [
            "xmg_strash",
            "xmg_rewrite",
            "xmg_xor",
            "xmg_refactor",
        ] * 2
        assert pipeline.network_types() == frozenset({"xmg"})

    @pytest.mark.parametrize(
        "spec",
        ["(b;rw", "b)*2", "b*x", "b*-1", "*2", ";*", "b!rw"],
    )
    def test_structural_errors(self, spec):
        with pytest.raises((PipelineError, UnknownPassError)):
            parse_pipeline(spec)

    def test_unknown_pass_in_spec(self):
        with pytest.raises(UnknownPassError) as excinfo:
            parse_pipeline("b;xmg_strassh")
        assert excinfo.value.suggestion == "xmg_strash"

    def test_as_pipeline_coercions(self):
        assert as_pipeline(None) == Pipeline()
        assert as_pipeline("b") == parse_pipeline("b")
        pipeline = parse_pipeline("dc2")
        assert as_pipeline(pipeline) is pipeline
        with pytest.raises(TypeError):
            as_pipeline(42)

    def test_empty_pipeline_applies_everywhere(self):
        assert parse_pipeline("").network_types() == frozenset(
            {"aig", "xmg", "rev", "qc"}
        )


# ---------------------------------------------------------------------------
# Equivalence of every registered pass (the satellite property)
# ---------------------------------------------------------------------------


class TestPassEquivalence:
    @pytest.mark.parametrize(
        "pass_name",
        sorted(p.name for p in available_passes("aig")),
    )
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_aig_passes_preserve_equivalence(self, pass_name, seed):
        aig = fuzzed_network("aig", seed)
        result, report = get_pass(pass_name).run(aig)
        check = check_equivalent(aig, result, mode="auto")
        assert check.equivalent, (
            f"{pass_name} broke seed {seed}: {check.message}"
        )
        assert report.after.num_gates == result.num_gates()
        assert report.after.depth == result.depth()
        assert report.runtime_seconds >= 0.0

    @pytest.mark.parametrize(
        "pass_name",
        sorted(p.name for p in available_passes("xmg")),
    )
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_xmg_passes_preserve_equivalence(self, pass_name, seed):
        xmg = fuzzed_network("xmg", seed)
        result, report = get_pass(pass_name).run(xmg)
        check = check_equivalent(xmg, result, mode="auto")
        assert check.equivalent, (
            f"{pass_name} broke seed {seed}: {check.message}"
        )
        assert report.after.num_maj == result.num_maj()

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_default_xmg_pipeline_preserves_equivalence(self, seed):
        xmg = fuzzed_network("xmg", seed)
        outcome = parse_pipeline(DEFAULT_XMG_PIPELINE).run(xmg, guard="full")
        check = check_equivalent(xmg, outcome.network, mode="full")
        assert check.equivalent
        assert network_cost(outcome.network) <= network_cost(xmg.cleanup())


# ---------------------------------------------------------------------------
# XMG pass behaviour
# ---------------------------------------------------------------------------


class TestXmgPasses:
    def test_strash_folds_constants(self):
        xmg = Xmg()
        a = xmg.add_pi()
        # MAJ(a, 1, 0) = a is folded by the constructors on rebuild.
        xmg.add_po(xmg.create_maj(a, Xmg.CONST1, Xmg.CONST0))
        assert xmg_strash(xmg).num_gates() == 0

    def test_rewrite_absorption(self):
        # M(x, y, M(x, y, z)) = M(x, y, z): the outer MAJ disappears.
        xmg = Xmg()
        x, y, z = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        inner = xmg.create_maj(x, y, z)
        xmg.add_po(xmg.create_maj(x, y, inner))
        rewritten = xmg_rewrite(xmg)
        assert rewritten.num_maj() == 1
        assert check_equivalent(xmg, rewritten, mode="full").equivalent

    def test_rewrite_complementary_absorption(self):
        # M(x, y, M(x', y', z)) = M(x, y, z).
        from repro.logic.lits import lit_not

        xmg = Xmg()
        x, y, z = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        inner = xmg.create_maj(lit_not(x), lit_not(y), z)
        xmg.add_po(xmg.create_maj(x, y, inner))
        rewritten = xmg_rewrite(xmg)
        assert rewritten.num_maj() == 1
        assert check_equivalent(xmg, rewritten, mode="full").equivalent

    def test_xor_chain_cancellation(self):
        # a ^ b ^ a collapses to b: no gates left.
        xmg = Xmg()
        a, b = xmg.add_pi(), xmg.add_pi()
        xmg.add_po(xmg.create_xor(xmg.create_xor(a, b), a))
        simplified = xmg_xor_simplify(xmg)
        assert simplified.num_gates() == 0
        assert check_equivalent(xmg, simplified, mode="full").equivalent

    def test_xor_chain_rebalanced(self):
        xmg = Xmg()
        pis = [xmg.add_pi() for _ in range(8)]
        acc = pis[0]
        for literal in pis[1:]:
            acc = xmg.create_xor(acc, literal)
        xmg.add_po(acc)
        assert xmg.depth() == 7
        simplified = xmg_xor_simplify(xmg)
        assert simplified.depth() == 3
        assert simplified.num_xor() == 7
        assert check_equivalent(xmg, simplified, mode="full").equivalent

    def test_refactor_never_regresses(self):
        for seed in FUZZ_SEEDS:
            xmg = fuzzed_network("xmg", seed)
            refactored = xmg_refactor(xmg)
            assert network_cost(refactored) <= network_cost(xmg.cleanup())

    def test_refactor_empty_network(self):
        xmg = Xmg()
        a = xmg.add_pi()
        xmg.add_po(a)
        assert xmg_refactor(xmg).num_gates() == 0


# ---------------------------------------------------------------------------
# Pipeline execution: keep-best, guard, applicability
# ---------------------------------------------------------------------------


def build_and_chain(n=8):
    aig = Aig("chain")
    literals = [aig.add_pi() for _ in range(n)]
    acc = literals[0]
    for literal in literals[1:]:
        acc = aig.create_and(acc, literal)
    aig.add_po(acc)
    return aig


class TestPipelineExecution:
    def test_keep_best_is_lexicographic(self):
        """A depth-improving pass at equal node count is kept.

        Under the historical node-count-only rule balancing an AND chain
        (same size, smaller depth) was discarded; the lexicographic
        ``(gates, depth)`` objective keeps it.
        """
        chain = build_and_chain(8)
        assert chain.depth() == 7
        result = parse_pipeline("balance").run(chain)
        assert result.network.num_nodes() == chain.num_nodes()
        assert result.network.depth() == 3
        assert result.cost == (7, 3)

    def test_optimize_script_keeps_depth_improvements(self):
        chain = build_and_chain(8)
        best = optimize_script(chain, "balance", rounds=1)
        assert best.depth() == 3

    def test_optimize_script_legacy_names_and_errors(self):
        aig = build_and_chain(4)
        for script in ("dc2", "resyn2", "balance", "rewrite", "refactor"):
            optimized = optimize_script(aig, script, rounds=2)
            assert check_equivalent(aig, optimized, mode="full").equivalent
        with pytest.raises(ValueError):
            optimize_script(aig, "does-not-exist")

    def test_keep_best_survives_worsening_pass(self):
        def duplicate_logic(aig):
            # A deliberately counter-productive pass: rebuild with one
            # extra redundant gate per PO.
            new = aig.copy()
            pos = new.pos()
            extra = new.create_and(pos[0], new.pis()[0])
            new.add_po(new.create_or(extra, pos[0]), "junk")
            return new

        worsen = Pass(
            "tmp_worsen", duplicate_logic, network_types=("aig",)
        )
        register_pass(worsen)
        try:
            chain = build_and_chain(4)
            best = Pipeline([worsen]).run(chain).network
            assert best.num_nodes() == chain.num_nodes()
            current = Pipeline([worsen]).run(chain, keep_best=False).network
            assert current.num_nodes() > chain.num_nodes()
        finally:
            unregister_pass("tmp_worsen")

    def test_guard_catches_broken_pass(self):
        def flip_output(aig):
            from repro.logic.lits import lit_not

            new = Aig(aig.name)
            mapping = {}
            for pi, name in zip(aig.pis(), aig.pi_names()):
                mapping[pi] = new.add_pi(name)
            # Buggy on purpose: wires POs to complemented inputs.
            new.add_po(lit_not(new.pis()[0]))
            return new

        broken = Pass("tmp_broken", flip_output, network_types=("aig",))
        register_pass(broken)
        try:
            chain = build_and_chain(4)
            with pytest.raises(PipelineVerificationError) as excinfo:
                Pipeline([broken]).run(chain, guard="full")
            assert "tmp_broken" in str(excinfo.value)
            # Unguarded, the bad pass goes through silently (keep_best
            # cannot save it: the broken network is smaller).
            Pipeline([broken]).run(chain, guard="off")
        finally:
            unregister_pass("tmp_broken")

    def test_guard_passes_on_correct_pipeline(self):
        aig = fuzzed_network("aig", 3)
        outcome = parse_pipeline("b;rw;rf").run(aig, guard="full")
        assert outcome.guard == "full"
        assert len(outcome.reports) == 3
        assert outcome.total_runtime >= 0.0

    def test_wrong_network_type_raises(self):
        xmg = fuzzed_network("xmg", 0)
        with pytest.raises(PipelineError):
            parse_pipeline("balance").run(xmg)
        aig = fuzzed_network("aig", 0)
        with pytest.raises(PipelineError):
            parse_pipeline("xmg_strash").run(aig)

    def test_pass_apply_type_checks(self):
        with pytest.raises(TypeError):
            get_pass("balance").apply(fuzzed_network("xmg", 0))

    def test_empty_pipeline_is_identity_cleanup(self):
        aig = fuzzed_network("aig", 1)
        outcome = Pipeline().run(aig)
        assert check_equivalent(aig, outcome.network, mode="full").equivalent
        assert outcome.reports == []


# ---------------------------------------------------------------------------
# Flow / cache integration
# ---------------------------------------------------------------------------


class TestFlowIntegration:
    def test_opt_parameter_overrides_default(self):
        default = run_flow("esop", "intdiv", 3, verify="full")
        raw = run_flow("esop", "intdiv", 3, verify="full", opt="none")
        override = run_flow("esop", "intdiv", 3, verify="full", opt="b;rw;rf")
        for result in (default, raw, override):
            assert result.report.verified is True
        assert raw.context["extra_metrics"]["opt_pipeline"] == ""
        assert (
            override.context["extra_metrics"]["opt_pipeline"]
            == "balance;rewrite;refactor"
        )

    def test_unknown_opt_raises_value_error(self):
        with pytest.raises(ValueError, match="did you mean"):
            run_flow("esop", "intdiv", 3, verify="off", opt="dc3")

    def test_hierarchical_xmg_opt_reduces_t_count(self):
        plain = run_flow(
            "hierarchical", "intdiv", 4, verify="full", strategy="bennett"
        )
        optimized = run_flow(
            "hierarchical",
            "intdiv",
            4,
            verify="full",
            strategy="bennett",
            xmg_opt=DEFAULT_XMG_PIPELINE,
        )
        assert plain.report.verified and optimized.report.verified
        assert optimized.report.t_count < plain.report.t_count
        assert optimized.report.qubits <= plain.report.qubits
        metrics = optimized.context["extra_metrics"]
        assert metrics["xmg_opt_pipeline"] == str(
            parse_pipeline(DEFAULT_XMG_PIPELINE)
        )
        assert metrics["xmg_maj"] < plain.context["extra_metrics"]["xmg_maj"]

    @pytest.mark.parametrize("seed", range(8))
    def test_xmg_to_aig_roundtrip_preserves_equivalence(self, seed):
        from repro.logic.xmg_mapping import aig_to_xmg, xmg_to_aig

        xmg = fuzzed_network("xmg", seed)
        aig = xmg_to_aig(xmg)
        assert check_equivalent(xmg, aig, mode="full").equivalent
        # And the full round-trip through the pipeline stays equivalent.
        back = xmg_to_aig(
            parse_pipeline(DEFAULT_XMG_PIPELINE).run(aig_to_xmg(aig)).network
        )
        assert check_equivalent(aig, back, mode="full").equivalent

    def test_lut_xmg_opt_reduces_t_count(self):
        plain = run_flow(
            "lut", "intdiv", 4, verify="full", strategy="bennett", k=3
        )
        optimized = run_flow(
            "lut",
            "intdiv",
            4,
            verify="full",
            strategy="bennett",
            k=3,
            xmg_opt=DEFAULT_XMG_PIPELINE,
        )
        assert plain.report.verified and optimized.report.verified
        assert optimized.report.t_count < plain.report.t_count
        metrics = optimized.context["extra_metrics"]
        assert "xmg_opt_pipeline" in metrics

    def test_flow_opt_guard(self):
        result = run_flow(
            "hierarchical",
            "intdiv",
            3,
            verify="full",
            xmg_opt=DEFAULT_XMG_PIPELINE,
            opt_guard="full",
        )
        assert result.report.verified is True

    def test_flow_verify_catches_corrupting_pass(self):
        """Flow verification compares against the pre-pipeline AIG.

        A pass that silently changes the function must fail the flow's
        verify stage — the reference must not be the corrupted network
        itself (neither through ``opt`` nor through the lut flow's XMG
        round-trip).
        """
        from repro.logic.lits import lit_not
        from repro.logic.xmg import Xmg

        def corrupt_aig(aig):
            new = aig.cleanup()
            flipped = Aig(new.name)
            mapping = {}
            for pi, name in zip(new.pis(), new.pi_names()):
                mapping[pi] = flipped.add_pi(name)
            for po, name in zip(new.pos(), new.po_names()):
                flipped.add_po(lit_not(mapping.get(po, flipped.pis()[0])), name)
            return flipped

        def corrupt_xmg(xmg):
            # Wire every output to the first input: gate-free, so the
            # pipeline's keep-best tracking is certain to adopt it.
            new = Xmg(xmg.name)
            for pi, name in zip(xmg.pis(), xmg.pi_names()):
                new.add_pi(name)
            for _, name in zip(xmg.pos(), xmg.po_names()):
                new.add_po(new.pis()[0], name)
            return new

        register_pass(Pass("tmp_corrupt_aig", corrupt_aig, ("aig",)))
        register_pass(Pass("tmp_corrupt_xmg", corrupt_xmg, ("xmg",)))
        try:
            with pytest.raises(RuntimeError, match="verification failed"):
                run_flow(
                    "esop", "intdiv", 3, verify="full",
                    opt="dc2;tmp_corrupt_aig",
                )
            with pytest.raises(RuntimeError, match="verification failed"):
                run_flow(
                    "lut", "intdiv", 3, verify="full", strategy="bennett",
                    k=3, xmg_opt="tmp_corrupt_xmg",
                )
        finally:
            unregister_pass("tmp_corrupt_aig")
            unregister_pass("tmp_corrupt_xmg")

    def test_cache_key_depends_on_pipeline(self):
        base = dict(
            source="module m; endmodule",
            flow="hierarchical",
            bitwidth=4,
            design="m",
        )
        key_default = cache_key(parameters={}, **base)
        key_none = cache_key(parameters={"opt": "none"}, **base)
        key_xmg = cache_key(parameters={"xmg_opt": "xmg-default"}, **base)
        assert len({key_default, key_none, key_xmg}) == 3
