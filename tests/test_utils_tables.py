"""Unit tests for the ASCII table formatter."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2"]
        assert lines[3].split() == ["30", "4"]

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_thousand_separators(self):
        text = format_table(["n"], [[1234567]])
        assert "1 234 567" in text

    def test_float_formatting(self):
        text = format_table(["t"], [[3.14159]])
        assert "3.14" in text

    def test_none_rendered_as_dash(self):
        text = format_table(["v"], [[None]])
        assert text.splitlines()[-1].strip() == "-"

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_right_alignment(self):
        text = format_table(["value"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-2].endswith("  1") or lines[-2].endswith("    1")
        assert lines[-1].endswith("100")

    def test_strings_pass_through(self):
        text = format_table(["name", "n"], [["esop", 3]])
        assert "esop" in text
