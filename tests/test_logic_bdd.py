"""Unit tests for the BDD manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bdd import BddManager
from repro.logic.truth_table import tt_mask, tt_var


class TestBddBasics:
    def test_constants(self):
        manager = BddManager(2)
        assert manager.false() == 0
        assert manager.true() == 1
        assert manager.is_terminal(manager.true())

    def test_variable_evaluation(self):
        manager = BddManager(3)
        x1 = manager.variable(1)
        assert manager.evaluate(x1, 0b010)
        assert not manager.evaluate(x1, 0b101)

    def test_nvariable(self):
        manager = BddManager(2)
        nx0 = manager.nvariable(0)
        assert manager.evaluate(nx0, 0b10)
        assert not manager.evaluate(nx0, 0b01)

    def test_variable_out_of_range(self):
        manager = BddManager(2)
        with pytest.raises(ValueError):
            manager.variable(2)

    def test_reduction_no_redundant_nodes(self):
        manager = BddManager(2)
        x0 = manager.variable(0)
        # x0 AND x0 must not create new nodes.
        before = manager.size()
        assert manager.apply_and(x0, x0) == x0
        assert manager.size() == before

    def test_structural_hashing(self):
        manager = BddManager(3)
        a = manager.apply_and(manager.variable(0), manager.variable(1))
        b = manager.apply_and(manager.variable(1), manager.variable(0))
        assert a == b


class TestBddOperations:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=100)
    def test_connectives_match_truth_tables(self, fa, fb):
        manager = BddManager(3)
        a = manager.from_truth_table(fa)
        b = manager.from_truth_table(fb)
        assert manager.to_truth_table(manager.apply_and(a, b)) == (fa & fb)
        assert manager.to_truth_table(manager.apply_or(a, b)) == (fa | fb)
        assert manager.to_truth_table(manager.apply_xor(a, b)) == (fa ^ fb)
        assert manager.to_truth_table(manager.apply_not(a)) == (fa ^ 0xFF)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_from_to_truth_table_roundtrip(self, func):
        manager = BddManager(3)
        node = manager.from_truth_table(func)
        assert manager.to_truth_table(node) == func

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=50)
    def test_ite_semantics(self, ff, fg, fh):
        manager = BddManager(3)
        f = manager.from_truth_table(ff)
        g = manager.from_truth_table(fg)
        h = manager.from_truth_table(fh)
        expected = (ff & fg) | ((ff ^ 0xFF) & fh)
        assert manager.to_truth_table(manager.ite(f, g, h)) == expected

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=100)
    def test_satcount(self, func):
        manager = BddManager(4)
        node = manager.from_truth_table(func)
        assert manager.satcount(node) == bin(func).count("1")

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=2),
        st.booleans(),
    )
    @settings(max_examples=100)
    def test_restrict(self, func, var, value):
        manager = BddManager(3)
        node = manager.from_truth_table(func)
        restricted = manager.restrict(node, var, value)
        for x in range(8):
            forced = (x | (1 << var)) if value else (x & ~(1 << var))
            assert manager.evaluate(restricted, x) == bool((func >> forced) & 1)

    def test_compose(self):
        manager = BddManager(3)
        # f = x0 AND x1; substitute x1 := x2 -> x0 AND x2.
        f = manager.apply_and(manager.variable(0), manager.variable(1))
        composed = manager.compose(f, 1, manager.variable(2))
        expected = manager.apply_and(manager.variable(0), manager.variable(2))
        assert composed == expected

    def test_quantification(self):
        manager = BddManager(2)
        f = manager.apply_and(manager.variable(0), manager.variable(1))
        assert manager.exists(f, [0]) == manager.variable(1)
        assert manager.forall(f, [0]) == manager.false()

    def test_support(self):
        manager = BddManager(4)
        f = manager.apply_xor(manager.variable(0), manager.variable(3))
        assert manager.support(f) == [0, 3]

    def test_node_count(self):
        manager = BddManager(3)
        f = manager.apply_and(
            manager.variable(0), manager.apply_and(manager.variable(1), manager.variable(2))
        )
        assert manager.node_count([f]) == 3

    def test_one_paths_cover_function(self):
        manager = BddManager(3)
        func = 0b10010110
        node = manager.from_truth_table(func)
        covered = 0
        for path in manager.one_paths(node):
            for x in range(8):
                if all(((x >> var) & 1) == int(val) for var, val in path.items()):
                    covered |= 1 << x
        assert covered == func
