"""Unit tests for the Verilog lexer and parser."""

import pytest

from repro.hdl.ast import (
    BinaryOp,
    BitSelect,
    Concat,
    Identifier,
    Number,
    PartSelect,
    Repeat,
    TernaryOp,
    UnaryOp,
)
from repro.hdl.errors import HdlError, LexerError, ParserError
from repro.hdl.lexer import tokenize
from repro.hdl.parser import parse_expression, parse_verilog


class TestLexer:
    def test_simple_tokens(self):
        tokens = tokenize("assign y = a + b;")
        kinds = [t.kind for t in tokens]
        values = [t.value for t in tokens]
        assert values[:7] == ["assign", "y", "=", "a", "+", "b", ";"]
        assert kinds[0] == "keyword"
        assert kinds[-1] == "eof"

    def test_sized_numbers(self):
        tokens = tokenize("8'b1010_1010 4'hF 12'd100 'd7 42")
        numbers = [t.value for t in tokens if t.kind == "number"]
        assert numbers == ["8'b1010_1010", "4'hF", "12'd100", "'d7", "42"]

    def test_comments_ignored(self):
        tokens = tokenize("a // line comment\n/* block\ncomment */ b")
        idents = [t.value for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_multichar_operators(self):
        tokens = tokenize("a << 2 >> 3 <= >= == != && ||")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_unterminated_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_invalid_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")

    def test_invalid_base(self):
        with pytest.raises(LexerError):
            tokenize("8'q0")


class TestExpressionParser:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = parse_expression("a << 1 < b")
        assert expr.op == "<"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "<<"

    def test_parentheses(self):
        expr = parse_expression("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"

    def test_ternary_right_associative(self):
        expr = parse_expression("a ? b : c ? d : e")
        assert isinstance(expr, TernaryOp)
        assert isinstance(expr.if_false, TernaryOp)

    def test_unary_operators(self):
        expr = parse_expression("~a & !b")
        assert expr.op == "&"
        assert isinstance(expr.left, UnaryOp) and expr.left.op == "~"
        assert isinstance(expr.right, UnaryOp) and expr.right.op == "!"

    def test_reduction_operator(self):
        expr = parse_expression("|a")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "|"

    def test_concat_and_repeat(self):
        expr = parse_expression("{a, 2'b01, {4{b}}}")
        assert isinstance(expr, Concat)
        assert len(expr.parts) == 3
        assert isinstance(expr.parts[2], Repeat)

    def test_bit_and_part_select(self):
        expr = parse_expression("x[3]")
        assert isinstance(expr, BitSelect)
        expr = parse_expression("x[7:4]")
        assert isinstance(expr, PartSelect)

    def test_sized_number_values(self):
        number = parse_expression("8'hff")
        assert isinstance(number, Number)
        assert number.value == 255 and number.width == 8
        number = parse_expression("4'b0101")
        assert number.value == 5 and number.width == 4

    def test_number_truncated_to_width(self):
        number = parse_expression("3'd9")
        assert number.value == 1  # 9 mod 8

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParserError):
            parse_expression("a + b extra")

    def test_unexpected_token(self):
        with pytest.raises(ParserError):
            parse_expression("+ ;")


SIMPLE_MODULE = """
module add3 #(parameter W = 4) (
    input  [W-1:0] a,
    input  [W-1:0] b,
    input  cin,
    output [W:0] total
);
    wire [W:0] partial = a + b;
    assign total = partial + cin;
endmodule
"""

NON_ANSI_MODULE = """
module buffer(a, y);
    input [3:0] a;
    output [3:0] y;
    assign y = a;
endmodule
"""


class TestModuleParser:
    def test_ansi_module(self):
        module = parse_verilog(SIMPLE_MODULE)
        assert module.name == "add3"
        assert [p.name for p in module.inputs()] == ["a", "b", "cin"]
        assert [p.name for p in module.outputs()] == ["total"]
        assert len(module.parameters) == 1
        assert module.parameters[0].name == "W"
        assert len(module.nets) == 1
        assert len(module.assigns) == 1

    def test_non_ansi_module(self):
        module = parse_verilog(NON_ANSI_MODULE)
        assert [p.name for p in module.inputs()] == ["a"]
        assert [p.name for p in module.outputs()] == ["y"]
        assert module.port("a").range is not None

    def test_port_lookup_error(self):
        module = parse_verilog(NON_ANSI_MODULE)
        with pytest.raises(KeyError):
            module.port("nope")

    def test_localparam_and_multiple_assigns(self):
        source = """
        module m (input [3:0] a, output [3:0] y, output z);
            localparam K = 3;
            assign y = a + K, z = a[0];
        endmodule
        """
        module = parse_verilog(source)
        assert len(module.assigns) == 2
        assert module.parameters[0].local

    def test_missing_semicolon(self):
        with pytest.raises(ParserError):
            parse_verilog("module m (input a, output y) assign y = a; endmodule")

    def test_unsupported_item(self):
        with pytest.raises(HdlError):
            parse_verilog(
                "module m (input a, output y); always @(a) y = a; endmodule"
            )
