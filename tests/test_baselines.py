"""Tests for the RESDIV and QNEWTON baseline designs (Table I)."""

import pytest

from repro.baselines.common import BaselineCost
from repro.baselines.qnewton import iteration_precisions, qnewton_resources
from repro.baselines.resdiv import build_resdiv_reciprocal, resdiv_resources
from repro.hdl.designs import intdiv_reference, newton_iterations


class TestResdivCircuit:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_reciprocal_matches_intdiv(self, n):
        circuit = build_resdiv_reciprocal(n)
        for x in range(1, 1 << n):
            assert circuit.evaluate(x) == intdiv_reference(n, x)

    def test_interface(self):
        circuit = build_resdiv_reciprocal(3)
        assert circuit.num_inputs() == 3
        assert circuit.num_outputs() == 3
        # Inputs (the divisor register) are preserved.
        for x in (1, 3, 5, 7):
            state = circuit.final_state(x)
            lines = circuit.input_lines()
            read = sum(((state >> lines[i]) & 1) << i for i in range(3))
            assert read == x

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_resdiv_reciprocal(0)


class TestResdivResources:
    def test_qubits_close_to_paper_scaling(self):
        # The paper reports 6n data qubits (48 at n = 8); our construction
        # adds a documented 2n+1 scratch lines for the controlled adder.
        for n in (4, 8, 16):
            cost = resdiv_resources(n)
            assert cost.details["data_qubits"] == 6 * n
            assert cost.qubits == 8 * n + 1

    def test_t_count_grows_quadratically(self):
        small = resdiv_resources(4).t_count
        large = resdiv_resources(8).t_count
        assert 3.0 < large / small < 5.0  # roughly (2x width)^2

    def test_row_format(self):
        cost = resdiv_resources(4)
        assert cost.as_row() == (4, cost.qubits, cost.t_count)
        assert isinstance(cost, BaselineCost)


class TestQnewtonResources:
    def test_precision_schedule(self):
        precisions = iteration_precisions(16)
        assert len(precisions) == newton_iterations(16)
        assert precisions == sorted(precisions)  # precision grows
        assert precisions[-1] == 16 + 2  # full precision plus guard bits

    def test_resources_scale_with_n(self):
        small = qnewton_resources(8)
        large = qnewton_resources(16)
        assert small.qubits < large.qubits
        assert small.t_count < large.t_count

    def test_qnewton_uses_fewer_qubits_than_resdiv(self):
        # The whole point of QNEWTON's variable precision is to use fewer
        # qubits than a naive wide datapath... but RESDIV stays cheaper on
        # qubits (Table I); check both orderings hold in our reproduction.
        for n in (8, 16, 32):
            resdiv = resdiv_resources(n)
            qnewton = qnewton_resources(n)
            assert qnewton.qubits > resdiv.qubits * 0.3
            assert qnewton.t_count != resdiv.t_count

    def test_details_breakdown(self):
        cost = qnewton_resources(8)
        assert set(cost.details) >= {
            "normalisation_t",
            "multiplier_t",
            "adder_t",
            "peak_scratch",
        }
        assert cost.t_count == (
            cost.details["normalisation_t"]
            + cost.details["multiplier_t"]
            + cost.details["adder_t"]
        )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            qnewton_resources(0)
