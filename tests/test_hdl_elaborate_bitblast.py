"""Tests for elaboration, word-level evaluation and bit-blasting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.bitblast import bitblast
from repro.hdl.elaborator import elaborate
from repro.hdl.errors import ElaborationError
from repro.hdl.parser import parse_verilog
from repro.hdl.synthesize import synthesize_to_netlist, synthesize_verilog


def simulate_aig(aig, input_widths, values):
    """Drive the AIG with named word values and return output words."""
    minterm = 0
    offset = 0
    for name, width in input_widths:
        minterm |= (values[name] & ((1 << width) - 1)) << offset
        offset += width
    word = aig.simulate_minterm(minterm)
    outputs = {}
    offset = 0
    for po_name in aig.po_names():
        base = po_name.rsplit("[", 1)[0]
        outputs.setdefault(base, 0)
    for j, po_name in enumerate(aig.po_names()):
        base, index = po_name.rsplit("[", 1)
        outputs[base] |= ((word >> j) & 1) << int(index[:-1])
    return outputs


ALU_SOURCE = """
module alu (
    input  [3:0] a,
    input  [3:0] b,
    input  [1:0] sel,
    output [3:0] y,
    output flag
);
    wire [3:0] sum  = a + b;
    wire [3:0] diff = a - b;
    wire [3:0] prod = a * b;
    wire [3:0] logical = a & b;
    assign y = (sel == 0) ? sum : (sel == 1) ? diff : (sel == 2) ? prod : logical;
    assign flag = (a < b) | (a == b);
endmodule
"""


class TestElaboration:
    def test_alu_reference_semantics(self):
        netlist = synthesize_to_netlist(ALU_SOURCE)
        for a in range(16):
            for b in range(0, 16, 3):
                for sel in range(4):
                    out = netlist.evaluate({"a": a, "b": b, "sel": sel})
                    expected = [
                        (a + b) & 0xF,
                        (a - b) & 0xF,
                        (a * b) & 0xF,
                        a & b,
                    ][sel]
                    assert out["y"] == expected
                    assert out["flag"] == int(a <= b)

    def test_parameter_override(self):
        source = """
        module pass #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
            assign y = a;
        endmodule
        """
        netlist = elaborate(parse_verilog(source), {"W": 7})
        assert netlist.input_width("a") == 7
        assert netlist.output_width("y") == 7

    def test_unknown_parameter_override(self):
        source = "module m (input a, output y); assign y = a; endmodule"
        with pytest.raises(ElaborationError):
            elaborate(parse_verilog(source), {"BOGUS": 1})

    def test_undriven_output_rejected(self):
        source = "module m (input a, output y); endmodule"
        with pytest.raises(ElaborationError):
            elaborate(parse_verilog(source))

    def test_multiple_drivers_rejected(self):
        source = """
        module m (input a, output y);
            assign y = a;
            assign y = ~a;
        endmodule
        """
        with pytest.raises(ElaborationError):
            elaborate(parse_verilog(source))

    def test_combinational_cycle_rejected(self):
        source = """
        module m (input a, output y);
            wire u;
            wire v;
            assign u = v ^ a;
            assign v = u;
            assign y = v;
        endmodule
        """
        with pytest.raises(ElaborationError):
            elaborate(parse_verilog(source))

    def test_cycle_through_net_initialiser(self):
        source = """
        module m (input a, output y);
            wire u = u ^ a;
            assign y = u;
        endmodule
        """
        with pytest.raises(ElaborationError):
            elaborate(parse_verilog(source))

    def test_non_zero_lsb_rejected(self):
        source = "module m (input [4:1] a, output y); assign y = a[1]; endmodule"
        with pytest.raises(ElaborationError):
            elaborate(parse_verilog(source))

    def test_width_context_propagates_carry(self):
        # The sum must keep its carry because the target is wider.
        source = """
        module m (input [3:0] a, input [3:0] b, output [4:0] s);
            assign s = a + b;
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        assert netlist.evaluate({"a": 15, "b": 15})["s"] == 30

    def test_concat_and_replication(self):
        source = """
        module m (input [1:0] a, output [5:0] y);
            assign y = {a, {2{a[0]}}, 2'b10};
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        assert netlist.evaluate({"a": 0b01})["y"] == 0b01_11_10
        assert netlist.evaluate({"a": 0b10})["y"] == 0b10_00_10

    def test_reduction_and_logical_operators(self):
        source = """
        module m (input [3:0] a, input [3:0] b, output [3:0] y);
            assign y = {&a, |a, ^a, (a != 0) && (b != 0)};
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        out = netlist.evaluate({"a": 0b1111, "b": 0})["y"]
        assert out == 0b1100  # {&a=1, |a=1, ^a=0, logical=0}
        out = netlist.evaluate({"a": 0b0111, "b": 3})["y"]
        assert out == 0b0111

    def test_dynamic_bit_select(self):
        source = """
        module m (input [7:0] a, input [2:0] i, output y);
            assign y = a[i];
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        for i in range(8):
            assert netlist.evaluate({"a": 0b10110100, "i": i})["y"] == (0b10110100 >> i) & 1

    def test_shift_by_variable_amount(self):
        source = """
        module m (input [7:0] a, input [3:0] k, output [7:0] l, output [7:0] r);
            assign l = a << k;
            assign r = a >> k;
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        for k in range(16):
            out = netlist.evaluate({"a": 0xB7, "k": k})
            assert out["l"] == (0xB7 << k) & 0xFF
            assert out["r"] == 0xB7 >> k

    def test_division_and_modulo(self):
        source = """
        module m (input [7:0] a, input [7:0] b, output [7:0] q, output [7:0] r);
            assign q = a / b;
            assign r = a % b;
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        assert netlist.evaluate({"a": 200, "b": 7}) == {"q": 28, "r": 4}
        # Division by zero convention.
        assert netlist.evaluate({"a": 200, "b": 0}) == {"q": 255, "r": 200}


class TestBitblast:
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_alu_aig_matches_netlist(self, a, b, sel):
        netlist = synthesize_to_netlist(ALU_SOURCE)
        aig = bitblast(netlist)
        expected = netlist.evaluate({"a": a, "b": b, "sel": sel})
        widths = [("a", 4), ("b", 4), ("sel", 2)]
        outputs = simulate_aig(aig, widths, {"a": a, "b": b, "sel": sel})
        assert outputs["y"] == expected["y"]
        assert outputs["flag"] == expected["flag"]

    def test_divider_aig_matches_netlist(self):
        source = """
        module m (input [4:0] a, input [4:0] b, output [4:0] q, output [4:0] r);
            assign q = a / b;
            assign r = a % b;
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        aig = bitblast(netlist)
        widths = [("a", 5), ("b", 5)]
        for a in range(0, 32, 3):
            for b in range(0, 32, 5):
                expected = netlist.evaluate({"a": a, "b": b})
                outputs = simulate_aig(aig, widths, {"a": a, "b": b})
                assert outputs == expected

    def test_shifts_and_mux_aig(self):
        source = """
        module m (input [7:0] a, input [2:0] k, input s, output [7:0] y);
            assign y = s ? (a << k) : (a >> k);
        endmodule
        """
        netlist = synthesize_to_netlist(source)
        aig = bitblast(netlist)
        widths = [("a", 8), ("k", 3), ("s", 1)]
        for a in (0, 1, 0x5A, 0xFF):
            for k in range(8):
                for s in (0, 1):
                    expected = netlist.evaluate({"a": a, "k": k, "s": s})
                    outputs = simulate_aig(aig, widths, {"a": a, "k": k, "s": s})
                    assert outputs == expected

    def test_pi_po_naming(self):
        aig = synthesize_verilog(ALU_SOURCE)
        assert aig.pi_names()[0] == "a[0]"
        assert aig.pi_names()[-1] == "sel[1]"
        assert aig.po_names()[-1] == "flag[0]"
