"""Focused coverage for quantum/mapping.py negative-control wrappers and
quantum/tcount.py model variants (satellite of the verify subsystem PR).
"""

import pytest

from repro.quantum.mapping import map_to_clifford_t
from repro.quantum.statevector import simulate_basis_state
from repro.quantum.tcount import (
    available_models,
    circuit_t_count,
    mct_t_count,
    t_count_histogram,
)
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate


def _wrap_gate(gate: ToffoliGate, num_lines: int) -> ReversibleCircuit:
    circuit = ReversibleCircuit("wrap")
    for i in range(num_lines):
        circuit.add_input_line(i)
        circuit.set_output(i, i)
    circuit.append(gate)
    return circuit


class TestNegativeControlWrappers:
    @pytest.mark.parametrize("polarities", [(True,), (False,)])
    def test_cnot_polarity_wrappers(self, polarities):
        gate = ToffoliGate(((0, polarities[0]),), 1)
        circuit = _wrap_gate(gate, 2)
        quantum = map_to_clifford_t(circuit)
        for x in range(4):
            expected = gate.apply(x)
            assert simulate_basis_state(quantum, x) == expected
        # Negative controls cost only Clifford X wrappers, never T gates.
        assert quantum.t_count() == 0

    @pytest.mark.parametrize(
        "polarities",
        [(True, True), (True, False), (False, True), (False, False)],
    )
    def test_toffoli_polarity_combinations(self, polarities):
        gate = ToffoliGate(((0, polarities[0]), (1, polarities[1])), 2)
        circuit = _wrap_gate(gate, 3)
        quantum = map_to_clifford_t(circuit)
        for x in range(8):
            assert simulate_basis_state(quantum, x) == gate.apply(x)
        assert quantum.t_count() == 7

    def test_wrapper_x_gates_come_in_pairs(self):
        gate = ToffoliGate(((0, False), (1, False)), 2)
        circuit = _wrap_gate(gate, 3)
        counts = map_to_clifford_t(circuit).gate_counts()
        # Two negative controls -> two X before + two X after.
        assert counts["x"] == 4

    @pytest.mark.parametrize("num_controls", [3, 4])
    def test_mixed_polarity_large_gates(self, num_controls):
        polarities = tuple(
            (line, line % 2 == 0) for line in range(num_controls)
        )
        gate = ToffoliGate(polarities, num_controls)
        circuit = _wrap_gate(gate, num_controls + 1)
        quantum = map_to_clifford_t(circuit)
        # Clean-ancilla chain: k - 2 shared ancillas appended.
        assert quantum.num_qubits == circuit.num_lines() + num_controls - 2
        for x in range(1 << (num_controls + 1)):
            assert simulate_basis_state(quantum, x) == gate.apply(x)

    def test_negative_controls_free_in_both_models(self):
        positive = ToffoliGate(((0, True), (1, True), (2, True)), 3)
        negative = ToffoliGate(((0, False), (1, False), (2, False)), 3)
        for model in available_models():
            a = circuit_t_count(_wrap_gate(positive, 4), model=model)
            b = circuit_t_count(_wrap_gate(negative, 4), model=model)
            assert a == b


class TestTcountModels:
    def test_available_models_exposes_both(self):
        models = tuple(available_models())
        assert "barenco" in models
        assert "rtof" in models

    @pytest.mark.parametrize("model", ["barenco", "rtof"])
    def test_small_gates_are_free(self, model):
        assert mct_t_count(0, model) == 0
        assert mct_t_count(1, model) == 0
        assert mct_t_count(2, model) == 7

    @pytest.mark.parametrize("model", ["barenco", "rtof"])
    def test_monotone_in_control_count(self, model):
        counts = [mct_t_count(k, model) for k in range(12)]
        assert counts == sorted(counts)
        # Strictly increasing once gates stop being free.
        for k in range(2, 11):
            assert counts[k + 1] > counts[k]

    @pytest.mark.parametrize("k", range(3, 10))
    def test_rtof_strictly_cheaper_above_two_controls(self, k):
        assert mct_t_count(k, "rtof") < mct_t_count(k, "barenco")

    @pytest.mark.parametrize("model", ["barenco", "rtof"])
    def test_closed_forms(self, model):
        for k in range(3, 8):
            if model == "barenco":
                assert mct_t_count(k, model) == 7 * (2 * k - 3)
            else:
                assert mct_t_count(k, model) == 8 * (k - 2) + 7

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            mct_t_count(3, "maslov2020")
        with pytest.raises(ValueError):
            mct_t_count(-1)

    def test_histogram_sums_to_circuit_t_count(self):
        circuit = ReversibleCircuit("hist")
        for i in range(5):
            circuit.add_input_line(i)
        circuit.append(ToffoliGate.x(0))
        circuit.append(ToffoliGate.cnot(0, 1))
        circuit.append(ToffoliGate.toffoli(0, 1, 2))
        circuit.append(ToffoliGate.from_lines([0, 1, 2], [3], 4))
        for model in available_models():
            histogram = t_count_histogram(circuit, model=model)
            assert sum(histogram.values()) == circuit_t_count(circuit, model=model)
        assert circuit_t_count(circuit, model="rtof") == 7 + (8 * 2 + 7)
