"""Metamorphic/property tests for the reversible pebbling scheduler.

Every schedule a strategy emits must survive :func:`validate_schedule` (the
machine-checked pebble-game rules); on top of that the suite pins the
strategy-level invariants promised by the module:

* ``bennett`` — pebble peak equals the LUT count, zero recomputation, and
  the uncompute suffix is exactly the reversed compute prefix,
* ``eager``   — pebble peak equals the largest single-output cone,
* ``bounded`` — the pebble peak never exceeds the budget, infeasible
  budgets are rejected, and the gate count degrades monotonically as the
  budget shrinks.

The LUT DAGs are seeded random AIGs (``repro.verify.fuzz``), so a failing
case prints a seed that reproduces the exact structure.
"""

import pytest

from repro.logic.aig import lit_node
from repro.logic.cuts import lut_map
from repro.reversible.lut_synth import synthesize_schedule
from repro.reversible.pebbling import (
    COMPUTE,
    COPY,
    UNCOMPUTE,
    InvalidScheduleError,
    PebbleSchedule,
    PebbleStep,
    bennett_schedule,
    bounded_schedule,
    eager_schedule,
    make_schedule,
    minimum_pebbles,
    validate_schedule,
)
from repro.verify.differential import check_equivalent
from repro.verify.fuzz import random_aig

SEEDS = range(12)
LUT_SIZES = (2, 3, 4)


def mapping_for(seed, k=3, num_pis=4, num_gates=14, num_pos=3):
    aig = random_aig(seed, num_pis=num_pis, num_gates=num_gates, num_pos=num_pos)
    return lut_map(aig, k=k)


class TestEveryStrategyValidates:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", LUT_SIZES)
    def test_all_strategies_pass_the_validator(self, seed, k):
        mapping = mapping_for(seed, k=k)
        schedules = [
            bennett_schedule(mapping),
            eager_schedule(mapping),
            bounded_schedule(mapping, minimum_pebbles(mapping)),
            bounded_schedule(mapping, max(1, mapping.num_luts())),
        ]
        for schedule in schedules:
            stats = validate_schedule(schedule)
            assert stats.num_steps == len(schedule)
            assert stats.num_copies == mapping.aig.num_pos()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_make_schedule_dispatcher(self, seed):
        mapping = mapping_for(seed)
        for strategy in ("bennett", "eager", "per_output", "bounded"):
            schedule = make_schedule(mapping, strategy=strategy)
            validate_schedule(schedule)
        assert make_schedule(mapping, "per_output").strategy == "eager"
        with pytest.raises(ValueError):
            make_schedule(mapping, strategy="greedy-ish")


class TestBennettProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", LUT_SIZES)
    def test_pebble_peak_equals_lut_count(self, seed, k):
        mapping = mapping_for(seed, k=k)
        schedule = bennett_schedule(mapping)
        assert schedule.pebble_peak() == mapping.num_luts()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_recomputation(self, seed):
        schedule = bennett_schedule(mapping_for(seed))
        assert schedule.num_recomputes() == 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reversed_computes_equal_uncompute_suffix(self, seed):
        schedule = bennett_schedule(mapping_for(seed))
        computes = [step.node for step in schedule.compute_steps()]
        suffix = schedule.steps[-len(computes):] if computes else []
        assert all(step.op == UNCOMPUTE for step in suffix)
        assert [step.node for step in suffix] == list(reversed(computes))


class TestEagerProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", LUT_SIZES)
    def test_pebble_peak_is_largest_cone(self, seed, k):
        mapping = mapping_for(seed, k=k)
        schedule = eager_schedule(mapping)
        largest_cone = max(
            (len(mapping.lut_cone(lit_node(po))) for po in mapping.aig.pos()),
            default=0,
        )
        assert schedule.pebble_peak() == largest_cone

    @pytest.mark.parametrize("seed", SEEDS)
    def test_each_cone_cleans_up_before_the_next_copy(self, seed):
        # Metamorphic shape check: between two copies, uncomputes mirror the
        # computes of the same cone in reverse.
        schedule = eager_schedule(mapping_for(seed))
        segment = []
        for step in schedule.steps:
            if step.op == COMPUTE:
                segment.append(step.node)
            elif step.op == UNCOMPUTE:
                assert step.node == segment.pop()
        assert segment == []

    @pytest.mark.parametrize("seed", SEEDS)
    def test_eager_never_uses_fewer_gates_than_bennett(self, seed):
        mapping = mapping_for(seed)
        eager = synthesize_schedule(eager_schedule(mapping))
        bennett = synthesize_schedule(bennett_schedule(mapping))
        assert eager.num_gates() >= bennett.num_gates()
        assert eager.num_lines() <= bennett.num_lines()


class TestBoundedProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", LUT_SIZES)
    def test_budget_respected_for_every_feasible_budget(self, seed, k):
        mapping = mapping_for(seed, k=k)
        floor = minimum_pebbles(mapping)
        for budget in range(floor, max(1, mapping.num_luts()) + 1):
            schedule = bounded_schedule(mapping, budget)
            stats = validate_schedule(schedule)
            assert stats.pebble_peak <= budget
            assert schedule.max_pebbles == budget

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("k", LUT_SIZES)
    def test_gate_count_degrades_monotonically(self, seed, k):
        mapping = mapping_for(seed, k=k)
        floor = minimum_pebbles(mapping)
        budgets = range(floor, max(1, mapping.num_luts()) + 1)
        gate_counts = [
            synthesize_schedule(bounded_schedule(mapping, budget)).num_gates()
            for budget in budgets
        ]
        assert all(a >= b for a, b in zip(gate_counts, gate_counts[1:])), (
            f"seed {seed}, k {k}: gate counts not monotone: {gate_counts}"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_infeasible_budget_rejected(self, seed):
        # One pebble can never compute a LUT that depends on another LUT.
        mapping = mapping_for(seed)
        if any(mapping.dependencies(root) for root in mapping.order):
            with pytest.raises(ValueError, match="minimum"):
                bounded_schedule(mapping, 1)

    def test_every_budget_at_or_above_minimum_is_accepted(self):
        # Regression: greedy feasibility is NOT monotone in the budget;
        # these corpora contain budgets where the greedy run strands while
        # neighbouring budgets succeed.  bounded_schedule must skip such
        # anchors instead of crashing, so every budget >= minimum_pebbles
        # yields a valid schedule.
        for seed, k, max_cuts in [(585, 2, 4), (21, 3, 4)]:
            aig = random_aig(seed, num_pis=5, num_gates=30 if seed == 585 else 25,
                             num_pos=4)
            mapping = lut_map(aig, k=k, max_cuts=max_cuts)
            floor = minimum_pebbles(mapping)
            for budget in range(floor, max(1, mapping.num_luts()) + 1):
                schedule = bounded_schedule(mapping, budget)
                assert validate_schedule(schedule).pebble_peak <= budget

    def test_deep_dependency_chain_does_not_overflow_recursion(self):
        # Regression: the bounded scheduler walks the LUT DAG with an
        # explicit stack; a dependency chain deeper than Python's default
        # recursion limit must schedule (and validate) fine.
        import sys

        from repro.logic.aig import Aig

        # Each stage XORs in a fresh primary input, so no small cut can
        # absorb the chain and the k = 2 LUT DAG stays ~3x deeper than
        # the stage count.
        aig = Aig("chain")
        literal = aig.add_pi()
        for _ in range(1500):
            literal = aig.create_xor(literal, aig.add_pi())
        aig.add_po(literal)
        mapping = lut_map(aig, k=2)
        assert mapping.depth() > sys.getrecursionlimit()
        schedule = bounded_schedule(mapping, minimum_pebbles(mapping))
        stats = validate_schedule(schedule)
        assert stats.pebble_peak <= schedule.max_pebbles

    def test_feasible_budget_below_minimum_is_probed_not_rejected(self):
        # A budget below the guaranteed threshold must still be accepted
        # when its own greedy run happens to succeed (and cleanly rejected
        # otherwise) — never crash, never refuse a workable budget.
        for seed, k in [(21, 3), (585, 2)]:
            aig = random_aig(seed, num_pis=5, num_gates=25, num_pos=4)
            mapping = lut_map(aig, k=k, max_cuts=4)
            floor = minimum_pebbles(mapping)
            for budget in range(1, floor):
                try:
                    schedule = bounded_schedule(mapping, budget)
                except ValueError:
                    continue
                assert validate_schedule(schedule).pebble_peak <= budget

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fractional_budget_resolves_to_a_feasible_one(self, seed):
        mapping = mapping_for(seed)
        schedule = bounded_schedule(mapping, 0.25)
        stats = validate_schedule(schedule)
        assert stats.pebble_peak <= schedule.max_pebbles
        assert schedule.max_pebbles >= minimum_pebbles(mapping)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_full_budget_matches_bennett_gate_count(self, seed):
        # With the whole DAG's worth of pebbles the scheduler never has to
        # recompute, so it meets the Bennett lower bound of the gate count.
        mapping = mapping_for(seed)
        bounded = synthesize_schedule(
            bounded_schedule(mapping, max(1, mapping.num_luts()))
        )
        bennett = synthesize_schedule(bennett_schedule(mapping))
        assert bounded.num_gates() <= bennett.num_gates()


class TestScheduleExecution:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_strategy_synthesises_equivalently(self, seed):
        aig = random_aig(seed, num_pis=4, num_gates=12, num_pos=3)
        mapping = lut_map(aig, k=3)
        for schedule in (
            bennett_schedule(mapping),
            eager_schedule(mapping),
            bounded_schedule(mapping, 0.5),
        ):
            circuit = synthesize_schedule(schedule)
            check = check_equivalent(aig, circuit, mode="full")
            assert check.equivalent, f"seed {seed}: {check.message}"

    @pytest.mark.parametrize("seed", range(4))
    def test_tbs_blocks_agree_with_esop_blocks(self, seed):
        aig = random_aig(seed, num_pis=3, num_gates=8, num_pos=2)
        mapping = lut_map(aig, k=3)
        schedule = bennett_schedule(mapping)
        esop = synthesize_schedule(schedule, lut_synth="esop")
        tbs = synthesize_schedule(schedule, lut_synth="tbs")
        for circuit in (esop, tbs):
            check = check_equivalent(aig, circuit, mode="full")
            assert check.equivalent, f"seed {seed}: {check.message}"
        assert esop.num_lines() == tbs.num_lines()

    def test_unknown_sub_synthesizer_rejected(self):
        schedule = bennett_schedule(mapping_for(0))
        with pytest.raises(ValueError):
            synthesize_schedule(schedule, lut_synth="magic")

    @pytest.mark.parametrize("strategy", ["bennett", "eager", "bounded"])
    def test_lut_synthesis_wrapper(self, strategy):
        from repro.reversible.lut_synth import lut_synthesis

        aig = random_aig(3, num_pis=4, num_gates=12, num_pos=3)
        circuit = lut_synthesis(aig, k=3, strategy=strategy, max_pebbles=0.5)
        check = check_equivalent(aig, circuit, mode="full")
        assert check.equivalent, check.message


class TestValidatorRejectsTamperedSchedules:
    def _schedule(self, seed=0):
        return bennett_schedule(mapping_for(seed))

    def test_dropped_uncompute_leaves_ancilla_dirty(self):
        schedule = self._schedule()
        tampered = PebbleSchedule(schedule.mapping, schedule.steps[:-1])
        with pytest.raises(InvalidScheduleError, match="dirty"):
            validate_schedule(tampered)

    def test_compute_before_fanin_rejected(self):
        schedule = self._schedule()
        steps = list(schedule.steps)
        # Find a compute whose LUT has dependencies and hoist it to the front.
        target = next(
            step
            for step in steps
            if step.op == COMPUTE and schedule.mapping.dependencies(step.node)
        )
        steps.remove(target)
        steps.insert(0, target)
        with pytest.raises(InvalidScheduleError, match="fanin"):
            validate_schedule(PebbleSchedule(schedule.mapping, steps))

    def test_double_compute_rejected(self):
        schedule = self._schedule()
        first = schedule.steps[0]
        tampered = PebbleSchedule(schedule.mapping, [first] + list(schedule.steps))
        with pytest.raises(InvalidScheduleError, match="already pebbled"):
            validate_schedule(tampered)

    def test_copy_of_unpebbled_driver_rejected(self):
        mapping = mapping_for(0)
        copies = [
            step for step in bennett_schedule(mapping).steps if step.op == COPY
        ]
        driven = [
            step for step in copies if lit_node(mapping.aig.pos()[step.output]) in mapping.luts
        ]
        assert driven, "corpus must contain a LUT-driven output"
        with pytest.raises(InvalidScheduleError, match="unpebbled"):
            validate_schedule(PebbleSchedule(mapping, [driven[0]]))

    def test_duplicate_copy_rejected(self):
        schedule = self._schedule()
        copies = [step for step in schedule.steps if step.op == COPY]
        steps = list(schedule.steps) + [copies[0]]
        with pytest.raises(InvalidScheduleError, match="copied twice"):
            validate_schedule(PebbleSchedule(schedule.mapping, steps))

    def test_missing_output_rejected(self):
        schedule = self._schedule()
        steps = [step for step in schedule.steps if step.op != COPY]
        with pytest.raises(InvalidScheduleError, match="never copied"):
            validate_schedule(PebbleSchedule(schedule.mapping, steps))

    def test_mismatched_copy_driver_rejected(self):
        schedule = self._schedule()
        steps = [
            PebbleStep(COPY, step.node + 1, step.output)
            if step.op == COPY
            else step
            for step in schedule.steps
        ]
        with pytest.raises(InvalidScheduleError, match="driver"):
            validate_schedule(PebbleSchedule(schedule.mapping, steps))

    def test_declared_budget_enforced(self):
        schedule = self._schedule()
        assert schedule.mapping.num_luts() > 1
        tampered = PebbleSchedule(
            schedule.mapping, list(schedule.steps), max_pebbles=1
        )
        with pytest.raises(InvalidScheduleError, match="budget"):
            validate_schedule(tampered)

    def test_unknown_op_rejected(self):
        schedule = self._schedule()
        steps = list(schedule.steps) + [PebbleStep("teleport", 0)]
        with pytest.raises(InvalidScheduleError, match="unknown op"):
            validate_schedule(PebbleSchedule(schedule.mapping, steps))

    def test_uncompute_of_unpebbled_node_rejected(self):
        schedule = self._schedule()
        first_uncompute = next(
            step for step in schedule.steps if step.op == UNCOMPUTE
        )
        with pytest.raises(InvalidScheduleError, match="not pebbled"):
            validate_schedule(PebbleSchedule(schedule.mapping, [first_uncompute]))
