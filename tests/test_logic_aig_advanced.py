"""Deeper structural and property-based tests for AIGs and their optimisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig, lit_node, lit_not
from repro.logic.aig_opt import balance, dc2, refactor
from repro.logic.cec import check_equivalence
from repro.logic.collapse import collapse_to_bdd, collapse_to_esop
from repro.logic.truth_table import tt_mask


def build_function_aig(columns, num_inputs):
    """Construct an AIG for explicit output columns via minterm expansion."""
    aig = Aig("spec")
    literals = [aig.add_pi() for _ in range(num_inputs)]
    for j, column in enumerate(columns):
        minterms = []
        for x in range(1 << num_inputs):
            if (column >> x) & 1:
                terms = [
                    literals[i] if (x >> i) & 1 else lit_not(literals[i])
                    for i in range(num_inputs)
                ]
                minterms.append(aig.create_and_multi(terms))
        aig.add_po(aig.create_or_multi(minterms), f"f{j}")
    return aig


columns_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=3
)


class TestStructuralInvariants:
    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cleanup_is_idempotent(self, columns):
        aig = build_function_aig(columns, 4)
        once = aig.cleanup()
        twice = once.cleanup()
        assert once.num_nodes() == twice.num_nodes()
        assert once.to_truth_table() == twice.to_truth_table()

    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_fanins_precede_nodes(self, columns):
        aig = build_function_aig(columns, 4)
        for node in aig.and_nodes():
            f0, f1 = aig.fanins(node)
            assert lit_node(f0) < node
            assert lit_node(f1) < node

    @given(columns_strategy)
    @settings(max_examples=40, deadline=None)
    def test_strashing_no_duplicate_fanin_pairs(self, columns):
        aig = build_function_aig(columns, 4)
        seen = set()
        for node in aig.and_nodes():
            pair = aig.fanins(node)
            assert pair not in seen
            seen.add(pair)

    @given(columns_strategy)
    @settings(max_examples=30, deadline=None)
    def test_depth_is_consistent_with_levels(self, columns):
        aig = build_function_aig(columns, 4).cleanup()
        levels = aig.levels()
        assert aig.depth() == max(
            (levels[lit_node(po)] for po in aig.pos()), default=0
        )


class TestOptimisationQuality:
    @given(columns_strategy)
    @settings(max_examples=25, deadline=None)
    def test_balance_never_increases_depth(self, columns):
        aig = build_function_aig(columns, 4)
        balanced = balance(aig)
        assert balanced.depth() <= aig.cleanup().depth()

    @given(columns_strategy)
    @settings(max_examples=20, deadline=None)
    def test_dc2_equivalent_and_not_larger_than_twice(self, columns):
        aig = build_function_aig(columns, 4)
        optimized = dc2(aig)
        assert check_equivalence(aig, optimized).equivalent
        # dc2 may occasionally grow a tiny bit through balancing, but must
        # stay in the same ballpark.
        assert optimized.num_nodes() <= max(8, 2 * aig.cleanup().num_nodes())

    def test_refactor_removes_known_redundancy(self):
        # (a AND b) OR (a AND c) OR (a AND d) refactors towards a AND (b+c+d).
        aig = Aig()
        a, b, c, d = (aig.add_pi() for _ in range(4))
        f = aig.create_or_multi(
            [aig.create_and(a, b), aig.create_and(a, c), aig.create_and(a, d)]
        )
        aig.add_po(f)
        optimized = refactor(aig)
        assert check_equivalence(aig, optimized).equivalent
        assert optimized.num_nodes() <= aig.cleanup().num_nodes()


class TestCollapseConsistency:
    @given(columns_strategy)
    @settings(max_examples=25, deadline=None)
    def test_bdd_and_esop_agree_with_simulation(self, columns):
        aig = build_function_aig(columns, 4)
        manager, roots = collapse_to_bdd(aig)
        cover = collapse_to_esop(aig)
        table = aig.to_truth_table()
        mask = tt_mask(4)
        for j, root in enumerate(roots):
            assert manager.to_truth_table(root) == table.column(j) & mask
        assert cover.to_truth_table() == table

    @given(columns_strategy)
    @settings(max_examples=20, deadline=None)
    def test_random_simulation_agrees_with_exhaustive(self, columns):
        aig = build_function_aig(columns, 4)
        patterns = aig.simulate_random(64, seed=7)
        table = aig.to_truth_table()
        # Reconstruct the same random inputs and compare output bits.
        import numpy as np

        rng = np.random.default_rng(7)
        bits = [rng.integers(0, 2, size=64) for _ in range(aig.num_pis())]
        for t in range(64):
            minterm = sum(int(bits[i][t]) << i for i in range(aig.num_pis()))
            expected = table.evaluate(minterm)
            actual = sum(((patterns[j] >> t) & 1) << j for j in range(aig.num_pos()))
            assert actual == expected
