"""Unit tests for the bit-parallel simulation core (repro.verify.bitsim).

The load-bearing property is exact agreement with the per-minterm reference
semantics of every structure (``Aig.simulate_minterm``,
``Xmg.simulate_minterm``, ``ReversibleCircuit.evaluate``/``final_state``,
``TruthTable.evaluate``) — the acceptance criterion of the subsystem is
"identical verdicts to the legacy per-input paths".
"""

import numpy as np
import pytest

from repro.core.flows import run_flow
from repro.logic.truth_table import TruthTable
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.verify import bitsim
from repro.verify.bitsim import (
    PatternBatch,
    exhaustive_batch,
    pack_bits,
    random_batch,
    simulate_aig,
    simulate_reversible,
    simulate_reversible_states,
    simulate_truth_table,
    simulate_xmg,
    unpack_bits,
)
from repro.verify.fuzz import random_aig, random_truth_table, random_xmg


class TestPacking:
    @pytest.mark.parametrize("num_patterns", [1, 7, 63, 64, 65, 130, 256])
    def test_pack_unpack_roundtrip(self, num_patterns):
        rng = np.random.default_rng(num_patterns)
        bits = rng.integers(0, 2, size=(3, num_patterns)).astype(bool)
        words = pack_bits(bits)
        assert words.dtype == np.uint64
        assert words.shape == (3, (num_patterns + 63) // 64)
        assert np.array_equal(unpack_bits(words, num_patterns), bits)

    def test_pack_pads_tail_with_zeros(self):
        bits = np.ones((1, 3), dtype=bool)
        words = pack_bits(bits)
        assert int(words[0, 0]) == 0b111

    def test_pack_single_row_vector(self):
        words = pack_bits(np.array([True, False, True]))
        assert int(words[0, 0]) == 0b101


class TestBatches:
    @pytest.mark.parametrize("num_inputs", [0, 1, 3, 5, 6, 7, 9])
    def test_exhaustive_batch_enumerates_all_minterms(self, num_inputs):
        batch = exhaustive_batch(num_inputs)
        assert batch.exhaustive
        assert batch.num_patterns == 1 << num_inputs
        assert batch.minterms() == list(range(1 << num_inputs))

    def test_exhaustive_batch_rejects_huge_inputs(self):
        with pytest.raises(ValueError):
            exhaustive_batch(31)

    def test_random_batch_is_seed_deterministic(self):
        a = random_batch(5, 100, seed=7)
        b = random_batch(5, 100, seed=7)
        c = random_batch(5, 100, seed=8)
        assert np.array_equal(a.inputs, b.inputs)
        assert not np.array_equal(a.inputs, c.inputs)
        assert not a.exhaustive

    def test_random_batch_masks_tail_bits(self):
        batch = random_batch(4, 70, seed=3)
        tail = batch.inputs[:, -1]
        assert np.all(tail >> np.uint64(70 - 64) == 0)

    def test_tail_mask(self):
        batch = random_batch(2, 70, seed=1)
        mask = batch.tail_mask()
        assert int(mask[0]) == (1 << 64) - 1
        assert int(mask[1]) == (1 << 6) - 1

    def test_minterm_out_of_range(self):
        batch = exhaustive_batch(3)
        with pytest.raises(ValueError):
            batch.minterm(8)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PatternBatch(2, 64, np.zeros((2, 2), dtype=np.uint64), False)


class TestStructureSimulators:
    @pytest.mark.parametrize("seed", range(5))
    def test_aig_matches_per_minterm_reference(self, seed):
        aig = random_aig(seed, num_pis=5, num_gates=15, num_pos=3)
        batch = exhaustive_batch(5)
        outputs = simulate_aig(aig, batch)
        for x in range(32):
            assert bitsim.output_word_at(outputs, x) == aig.simulate_minterm(x)

    @pytest.mark.parametrize("seed", range(5))
    def test_xmg_matches_per_minterm_reference(self, seed):
        xmg = random_xmg(seed, num_pis=5, num_gates=12, num_pos=3)
        batch = exhaustive_batch(5)
        outputs = simulate_xmg(xmg, batch)
        for x in range(32):
            assert bitsim.output_word_at(outputs, x) == xmg.simulate_minterm(x)

    @pytest.mark.parametrize("seed", range(3))
    def test_truth_table_random_batch_matches_evaluate(self, seed):
        table = random_truth_table(seed, num_inputs=6, num_outputs=4)
        batch = random_batch(6, 100, seed=seed + 1)
        outputs = simulate_truth_table(table, batch)
        for t, minterm in enumerate(batch.minterms()):
            assert bitsim.output_word_at(outputs, t) == table.evaluate(minterm)

    def test_reversible_matches_evaluate_and_final_state(self):
        # A circuit with inputs, a set constant, negative controls and an
        # uncontrolled NOT, exercising every initial-state and trigger path.
        circuit = ReversibleCircuit("mix")
        x0 = circuit.add_input_line(0)
        x1 = circuit.add_input_line(1)
        anc = circuit.add_constant_line(1)
        out = circuit.add_constant_line(0)
        circuit.set_output(out, 0)
        circuit.append(ToffoliGate.from_lines([x0], [x1], out))
        circuit.append(ToffoliGate.cnot(anc, out))
        circuit.append(ToffoliGate.x(anc))
        circuit.append(ToffoliGate.toffoli(x0, x1, out))
        batch = exhaustive_batch(2)
        outputs = simulate_reversible(circuit, batch)
        states = simulate_reversible_states(circuit, batch)
        for x in range(4):
            assert bitsim.output_word_at(outputs, x) == circuit.evaluate(x)
            reference = circuit.final_state(x)
            for line in range(circuit.num_lines()):
                got = (int(states[line, 0]) >> x) & 1
                assert got == (reference >> line) & 1

    def test_zero_output_circuit_keeps_word_axis(self):
        # Regression: outputs_from_states built np.array([]) for circuits
        # with no primary outputs, collapsing (0, W) to (0,) and breaking
        # downstream masking/first-difference scans on the word axis.
        circuit = ReversibleCircuit("no-outputs")
        x0 = circuit.add_input_line(0)
        x1 = circuit.add_input_line(1)
        circuit.append(ToffoliGate.cnot(x0, x1))
        batch = random_batch(2, 70, seed=9)  # 2 words wide
        outputs = simulate_reversible(circuit, batch)
        assert outputs.shape == (0, batch.num_words)
        assert outputs.dtype == np.uint64
        # Empty-output comparisons must still work along the word axis.
        assert bitsim.first_difference(outputs, outputs.copy(), batch) is None

    def test_network_simulators_chunk_correctly(self, monkeypatch):
        # The network simulators process word columns in memory-bounded
        # chunks; force tiny chunks so a small batch crosses many
        # boundaries and the stitched output must still be exact.
        monkeypatch.setattr(bitsim, "_CHUNK_WORDS", 2)
        batch = exhaustive_batch(9)  # 8 words -> 4 chunks
        aig = random_aig(3, num_pis=9, num_gates=20, num_pos=3)
        outputs = simulate_aig(aig, batch)
        xmg = random_xmg(4, num_pis=9, num_gates=15, num_pos=2)
        xmg_outputs = simulate_xmg(xmg, batch)
        for x in range(0, 512, 7):
            assert bitsim.output_word_at(outputs, x) == aig.simulate_minterm(x)
            assert bitsim.output_word_at(xmg_outputs, x) == xmg.simulate_minterm(x)

    def test_input_count_mismatch_rejected(self):
        aig = random_aig(0, num_pis=4)
        with pytest.raises(ValueError):
            simulate_aig(aig, exhaustive_batch(3))
        xmg = random_xmg(0, num_pis=4)
        with pytest.raises(ValueError):
            simulate_xmg(xmg, exhaustive_batch(3))
        table = random_truth_table(0, num_inputs=4)
        with pytest.raises(ValueError):
            simulate_truth_table(table, exhaustive_batch(3))


class TestDifferenceHelpers:
    def test_first_difference_and_word_extraction(self):
        table = random_truth_table(1, num_inputs=7, num_outputs=3)
        words = np.array(table.words)
        words[100] ^= np.uint64(0b10)  # flip output 1 of minterm 100
        mutated = TruthTable(7, 3, words)
        batch = exhaustive_batch(7)
        a = simulate_truth_table(table, batch)
        b = simulate_truth_table(mutated, batch)
        index = bitsim.first_difference(a, b, batch)
        assert index == 100
        assert bitsim.output_word_at(a, 100) ^ bitsim.output_word_at(b, 100) == 0b10

    def test_first_difference_none_on_equal(self):
        table = random_truth_table(2, num_inputs=5, num_outputs=2)
        batch = exhaustive_batch(5)
        a = simulate_truth_table(table, batch)
        assert bitsim.first_difference(a, a.copy(), batch) is None


class TestLegacyAgreement:
    """bitsim verdicts equal the per-input loop on real flow outputs."""

    @pytest.mark.parametrize(
        "flow,design,bitwidth,parameters",
        [
            ("symbolic", "intdiv", 3, {}),
            ("esop", "intdiv", 4, {"p": 0}),
            ("esop", "newton", 2, {"p": 1}),
            ("hierarchical", "intdiv", 4, {"strategy": "bennett"}),
            ("hierarchical", "newton", 2, {"strategy": "per_output"}),
        ],
    )
    def test_flow_outputs_agree_with_per_input_loop(
        self, flow, design, bitwidth, parameters
    ):
        result = run_flow(flow, design, bitwidth, verify=False, **parameters)
        circuit = result.circuit
        batch = exhaustive_batch(circuit.num_inputs())
        outputs = simulate_reversible(circuit, batch)
        for x in range(batch.num_patterns):
            assert bitsim.output_word_at(outputs, x) == circuit.evaluate(x)
