"""Unit tests for Bennett and optimum embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.designs import intdiv_reference
from repro.logic.truth_table import TruthTable
from repro.reversible.embedding import (
    bennett_embedding,
    minimum_additional_lines,
    optimum_embedding,
)


def reciprocal_table(n):
    return TruthTable.from_callable(lambda x: intdiv_reference(n, x), n, n)


class TestMinimumLines:
    def test_reversible_function_needs_no_lines(self):
        table = TruthTable.from_callable(lambda x: x ^ (x >> 1), 3, 3)
        # x -> x xor (x >> 1) is a bijection on 3 bits.
        assert table.is_reversible()
        assert minimum_additional_lines(table) == 0

    def test_constant_function(self):
        table = TruthTable.from_callable(lambda x: 0, 3, 1)
        assert minimum_additional_lines(table) == 3

    def test_and_function(self):
        # AND has 3 minterms mapping to 0 -> ceil(log2(3)) = 2 additional lines.
        table = TruthTable.from_callable(lambda x: int(x == 3), 2, 1)
        assert minimum_additional_lines(table) == 2

    def test_reciprocal_matches_paper(self):
        # The paper's Table II reports 2n-1 qubits for the reciprocal, i.e.
        # n-1 additional lines.
        for n in (4, 5, 6, 7, 8):
            table = reciprocal_table(n)
            assert minimum_additional_lines(table) == n - 1


class TestBennettEmbedding:
    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_bennett_is_valid(self, n, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 4))
        words = rng.integers(0, 1 << m, size=1 << n).astype(np.uint64)
        table = TruthTable(n, m, words)
        embedding = bennett_embedding(table)
        assert embedding.num_lines == n + m
        assert embedding.is_valid()

    def test_bennett_keeps_inputs(self):
        table = reciprocal_table(4)
        embedding = bennett_embedding(table)
        for x in range(16):
            state = embedding.state_for_input(x)
            image = int(embedding.permutation[state])
            assert image & 0xF == x  # inputs preserved on the low lines


class TestOptimumEmbedding:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_reciprocal_embedding(self, n):
        table = reciprocal_table(n)
        embedding = optimum_embedding(table)
        assert embedding.num_lines == 2 * n - 1
        assert embedding.is_valid()

    def test_reversible_function_stays_square(self):
        table = TruthTable.from_callable(lambda x: (x + 1) & 0x7, 3, 3)
        embedding = optimum_embedding(table)
        assert embedding.num_lines == 3
        assert embedding.is_valid()

    def test_extra_lines_can_be_forced(self):
        table = reciprocal_table(3)
        embedding = optimum_embedding(table, extra_lines=4)
        assert embedding.num_lines == 3 + 4
        assert embedding.is_valid()

    def test_extra_lines_below_minimum_rejected(self):
        table = TruthTable.from_callable(lambda x: 0, 3, 1)
        with pytest.raises(ValueError):
            optimum_embedding(table, extra_lines=1)

    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=30, deadline=None)
    def test_random_functions_embed_correctly(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(1, 4))
        words = rng.integers(0, 1 << m, size=1 << n).astype(np.uint64)
        table = TruthTable(n, m, words)
        embedding = optimum_embedding(table)
        assert embedding.is_valid()
        # Optimum embedding uses exactly max(n, m + l) lines with l from Eq. (3).
        assert embedding.num_lines == max(n, m + minimum_additional_lines(table))
        # ... which never exceeds the Bennett bound of n + m lines.
        assert embedding.num_lines <= table.num_inputs + table.num_outputs
