"""Tests for the AIGER / PLA / REAL / QASM interchange formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.synthesize import synthesize_reciprocal_design
from repro.io.aiger import read_aiger, write_aiger
from repro.io.pla import read_pla, write_pla
from repro.io.qasm import parse_qasm, write_qasm
from repro.io.realfmt import read_real, write_real
from repro.logic.aig import Aig, lit_not
from repro.logic.esop import esop_from_columns
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.mapping import map_to_clifford_t
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.esop_synth import esop_synthesis
from repro.reversible.gates import ToffoliGate


def build_sample_aig():
    aig = Aig("sample")
    a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
    aig.add_po(aig.create_xor(aig.create_and(a, b), c), "f")
    aig.add_po(lit_not(aig.create_or(a, c)), "g")
    return aig


class TestAiger:
    def test_roundtrip_preserves_function(self):
        aig = build_sample_aig()
        text = write_aiger(aig)
        parsed = read_aiger(text)
        assert parsed.num_pis() == aig.num_pis()
        assert parsed.num_pos() == aig.num_pos()
        assert parsed.to_truth_table() == aig.to_truth_table()
        assert parsed.pi_names() == aig.pi_names()
        assert parsed.po_names() == aig.po_names()

    def test_header_counts(self):
        aig = build_sample_aig()
        text = write_aiger(aig)
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == 3  # inputs
        assert int(header[4]) == 2  # outputs

    def test_reciprocal_roundtrip(self):
        _, aig = synthesize_reciprocal_design("intdiv", 4)
        parsed = read_aiger(write_aiger(aig))
        assert parsed.to_truth_table() == aig.to_truth_table()

    def test_invalid_header_rejected(self):
        with pytest.raises(ValueError):
            read_aiger("not an aiger file")
        with pytest.raises(ValueError):
            read_aiger("")

    def test_latches_rejected(self):
        with pytest.raises(ValueError):
            read_aiger("aag 3 1 1 1 0\n2\n4\n6\n")

    def test_truncated_file_rejected(self):
        with pytest.raises(ValueError):
            read_aiger("aag 3 2 0 1 1\n2\n4")

    def test_without_symbols(self):
        aig = build_sample_aig()
        parsed = read_aiger(write_aiger(aig, include_symbols=False))
        assert parsed.to_truth_table() == aig.to_truth_table()
        assert parsed.pi_names() == ["pi0", "pi1", "pi2"]


class TestPla:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_cover(self, columns):
        cover = esop_from_columns(columns, 3)
        parsed = read_pla(write_pla(cover))
        assert parsed.num_inputs == cover.num_inputs
        assert parsed.num_outputs == cover.num_outputs
        assert parsed.to_truth_table() == cover.to_truth_table()

    def test_names_emitted(self):
        cover = esop_from_columns([0b1000], 2)
        text = write_pla(cover, input_names=["a", "b"], output_names=["f"])
        assert ".ilb a b" in text
        assert ".ob f" in text
        assert ".type fr" in text

    def test_name_length_validation(self):
        cover = esop_from_columns([0b1000], 2)
        with pytest.raises(ValueError):
            write_pla(cover, input_names=["a"])
        with pytest.raises(ValueError):
            write_pla(cover, output_names=["f", "g"])

    def test_sop_type_with_disjoint_terms_accepted(self):
        text = ".i 2\n.o 1\n.type f\n11 1\n00 1\n.e\n"
        cover = read_pla(text)
        assert cover.num_terms() == 2

    def test_sop_type_with_overlap_rejected(self):
        text = ".i 2\n.o 1\n.type f\n1- 1\n11 1\n.e\n"
        with pytest.raises(ValueError):
            read_pla(text)

    def test_malformed_files_rejected(self):
        with pytest.raises(ValueError):
            read_pla("11 1\n")  # term before .i/.o
        with pytest.raises(ValueError):
            read_pla(".i 2\n.o 1\n.foo\n")
        with pytest.raises(ValueError):
            read_pla(".i 2\n.o 1\n111 1\n")  # wrong input width
        with pytest.raises(ValueError):
            read_pla(".i 2\n")


class TestReal:
    def build_circuit(self):
        circuit = ReversibleCircuit("sample")
        a = circuit.add_input_line(0, "a")
        b = circuit.add_input_line(1, "b")
        anc = circuit.add_constant_line(0, "anc")
        out = circuit.add_constant_line(0, "out")
        circuit.set_output(out, 0)
        circuit.set_garbage(anc)
        circuit.append(ToffoliGate.toffoli(a, b, anc))
        circuit.append(ToffoliGate.from_lines([anc], [a], out))
        circuit.append(ToffoliGate.x(anc))
        return circuit

    def test_write_contains_header(self):
        text = write_real(self.build_circuit())
        assert ".numvars 4" in text
        assert ".variables a b anc out" in text
        assert ".begin" in text and ".end" in text
        assert "t3 a b anc" in text
        assert "-a" in text  # negative control marker

    def test_roundtrip_gates(self):
        circuit = self.build_circuit()
        parsed = read_real(write_real(circuit))
        assert parsed.num_lines() == circuit.num_lines()
        assert parsed.num_gates() == circuit.num_gates()
        assert np.array_equal(parsed.to_permutation(), circuit.to_permutation())

    def test_constants_become_ancillas(self):
        parsed = read_real(write_real(self.build_circuit()))
        assert len(parsed.constant_lines()) == 2

    def test_esop_circuit_roundtrip(self):
        cover = esop_from_columns([0b0110, 0b1000], 2)
        circuit = esop_synthesis(cover)
        parsed = read_real(write_real(circuit))
        assert np.array_equal(parsed.to_permutation(), circuit.to_permutation())

    def test_missing_variables_rejected(self):
        with pytest.raises(ValueError):
            read_real(".version 2.0\n.begin\n.end\n")

    def test_trivial_gates_normalized_on_export(self):
        # The .real format cannot mention one variable twice in a control
        # list: unsatisfiable gates are dropped, duplicates deduplicated.
        circuit = ReversibleCircuit()
        for i in range(3):
            circuit.add_input_line(i)
            circuit.set_output(i, i)
        circuit.append(ToffoliGate(((0, True), (0, False)), 1))
        circuit.append(ToffoliGate(((0, True), (0, True)), 2))
        text = write_real(circuit)
        parsed = read_real(text)
        assert parsed.num_gates() == 1
        assert parsed.gates()[0] == ToffoliGate(((0, True),), 2)
        assert np.array_equal(
            parsed.to_permutation(), circuit.to_permutation()
        )

    def test_unsupported_gate_rejected(self):
        text = ".variables a b\n.begin\nf2 a b\n.end\n"
        with pytest.raises(ValueError):
            read_real(text)


class TestQasm:
    def test_simple_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.add("h", 0)
        circuit.add("cx", 0, 1)
        circuit.add("tdg", 1)
        text = write_qasm(circuit)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[2];" in text
        assert "h q[0];" in text
        assert "cx q[0], q[1];" in text
        assert "tdg q[1];" in text

    def test_custom_register_name(self):
        circuit = QuantumCircuit(1)
        circuit.add("x", 0)
        assert "x anc[0];" in write_qasm(circuit, register="anc")

    def test_mapped_reciprocal_exports(self):
        _, aig = synthesize_reciprocal_design("intdiv", 3)
        from repro.logic.esop import esop_from_truth_table

        circuit = esop_synthesis(esop_from_truth_table(aig.to_truth_table()))
        quantum = map_to_clifford_t(circuit)
        text = write_qasm(quantum)
        assert text.count("\n") == quantum.num_gates() + 3


class TestQasmRoundTrip:
    """Export -> parse is lossless over the full gate vocabulary."""

    @staticmethod
    def _random_circuit(data, num_qubits=4):
        from repro.quantum.circuit import SUPPORTED_GATES

        names = sorted(SUPPORTED_GATES)
        circuit = QuantumCircuit(num_qubits)
        for pick, first, second in data:
            name = names[pick % len(names)]
            arity = SUPPORTED_GATES[name]
            a = first % num_qubits
            if arity == 1:
                circuit.add(name, a)
            else:
                b = second % num_qubits
                if b == a:
                    b = (a + 1) % num_qubits
                circuit.add(name, a, b)
        return circuit

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        circuit = self._random_circuit(data)
        parsed = parse_qasm(write_qasm(circuit))
        assert parsed.num_qubits == circuit.num_qubits
        assert parsed.gates() == circuit.gates()

    def test_every_supported_gate_round_trips(self):
        from repro.quantum.circuit import SUPPORTED_GATES

        circuit = QuantumCircuit(2)
        for name, arity in sorted(SUPPORTED_GATES.items()):
            circuit.add(name, *range(arity))
        parsed = parse_qasm(write_qasm(circuit))
        assert parsed.gates() == circuit.gates()

    def test_rtof_mapped_circuit_round_trips(self):
        rev = ReversibleCircuit()
        for i in range(4):
            rev.add_input_line(i)
            rev.set_output(i, i)
        rev.append(ToffoliGate.from_lines([0, 1, 2], [], 3))
        quantum = map_to_clifford_t(rev, model="rtof")
        parsed = parse_qasm(write_qasm(quantum))
        assert parsed.gates() == quantum.gates()
        assert parsed.t_count() == quantum.t_count()

    def test_custom_register_round_trips(self):
        circuit = QuantumCircuit(2, name="anc")
        circuit.add("cx", 0, 1)
        parsed = parse_qasm(write_qasm(circuit, register="anc"))
        assert parsed.gates() == circuit.gates()

    def test_parse_rejects_unknown_gate(self):
        with pytest.raises(ValueError):
            parse_qasm("qreg q[2];\nccx q[0], q[1];\n")

    def test_parse_rejects_out_of_range_qubit(self):
        with pytest.raises(ValueError):
            parse_qasm("qreg q[2];\nx q[5];\n")

    def test_parse_rejects_gate_before_register(self):
        with pytest.raises(ValueError):
            parse_qasm("OPENQASM 2.0;\nx q[0];\n")

    def test_parse_rejects_missing_register(self):
        with pytest.raises(ValueError):
            parse_qasm("OPENQASM 2.0;\n")
