"""Unit tests for the reversible-circuit peephole optimisation passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.reversible.optimize import (
    cancel_adjacent_gates,
    merge_not_gates,
    optimize_circuit,
    remove_trivial_gates,
)


def build_circuit(num_lines, gates):
    circuit = ReversibleCircuit()
    for _ in range(num_lines):
        circuit.add_constant_line(0)
    circuit.extend(gates)
    return circuit


def random_gates(draw_data, num_lines=4, max_gates=12):
    """Build a deterministic pseudo-random gate list from drawn integers."""
    gates = []
    for target, control_mask, polarity_mask in draw_data:
        target %= num_lines
        controls = []
        for line in range(num_lines):
            if line == target:
                continue
            if (control_mask >> line) & 1:
                controls.append((line, bool((polarity_mask >> line) & 1)))
        gates.append(ToffoliGate(tuple(controls), target))
    return gates


gate_data = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=0,
    max_size=12,
)


class TestCancellation:
    def test_adjacent_identical_gates_cancel(self):
        gate = ToffoliGate.toffoli(0, 1, 2)
        circuit = build_circuit(3, [gate, gate])
        optimized = cancel_adjacent_gates(circuit)
        assert optimized.num_gates() == 0

    def test_cancellation_across_commuting_gate(self):
        a = ToffoliGate.toffoli(0, 1, 2)
        b = ToffoliGate.cnot(0, 3)  # commutes with a (disjoint targets)
        circuit = build_circuit(4, [a, b, a])
        optimized = cancel_adjacent_gates(circuit)
        assert optimized.num_gates() == 1
        assert optimized.gates() == [b]

    def test_no_cancellation_across_blocking_gate(self):
        a = ToffoliGate.toffoli(0, 1, 2)
        blocker = ToffoliGate.cnot(3, 1)  # writes a control line of a
        circuit = build_circuit(4, [a, blocker, a])
        optimized = cancel_adjacent_gates(circuit)
        assert optimized.num_gates() == 3

    @given(gate_data)
    @settings(max_examples=100, deadline=None)
    def test_cancellation_preserves_function(self, data):
        circuit = build_circuit(4, random_gates(data))
        optimized = cancel_adjacent_gates(circuit)
        assert np.array_equal(circuit.to_permutation(), optimized.to_permutation())
        assert optimized.num_gates() <= circuit.num_gates()


class TestNotMerging:
    def test_not_sandwich_merges_into_polarity(self):
        gates = [
            ToffoliGate.x(0),
            ToffoliGate.toffoli(0, 1, 2),
            ToffoliGate.x(0),
        ]
        circuit = build_circuit(3, gates)
        optimized = merge_not_gates(circuit)
        assert optimized.num_gates() == 1
        merged = optimized.gates()[0]
        assert dict(merged.controls)[0] is False  # control polarity flipped

    def test_not_on_target_not_merged(self):
        gates = [
            ToffoliGate.x(2),
            ToffoliGate.toffoli(0, 1, 2),
            ToffoliGate.x(2),
        ]
        circuit = build_circuit(3, gates)
        optimized = merge_not_gates(circuit)
        assert optimized.num_gates() == 3

    @given(gate_data)
    @settings(max_examples=100, deadline=None)
    def test_merging_preserves_function(self, data):
        circuit = build_circuit(4, random_gates(data))
        optimized = merge_not_gates(circuit)
        assert np.array_equal(circuit.to_permutation(), optimized.to_permutation())


class TestFullScript:
    @given(gate_data)
    @settings(max_examples=100, deadline=None)
    def test_optimize_preserves_function(self, data):
        circuit = build_circuit(4, random_gates(data))
        optimized = optimize_circuit(circuit)
        assert np.array_equal(circuit.to_permutation(), optimized.to_permutation())
        assert optimized.num_gates() <= circuit.num_gates()
        assert optimized.t_count() <= circuit.t_count()

    def test_or_block_pattern_shrinks(self):
        # The OR block of the hierarchical flow: negative-control Toffoli
        # surrounded by X gates on the same ancilla cancels against its own
        # uncompute copy.
        gates = [
            ToffoliGate.from_lines([], [0, 1], 2),
            ToffoliGate.x(2),
            ToffoliGate.x(2),
            ToffoliGate.from_lines([], [0, 1], 2),
        ]
        circuit = build_circuit(3, gates)
        optimized = optimize_circuit(circuit)
        assert optimized.num_gates() == 0

    def test_remove_trivial_is_identity_preserving(self):
        circuit = build_circuit(3, [ToffoliGate.toffoli(0, 1, 2)])
        assert remove_trivial_gates(circuit).num_gates() == 1


class TestRemoveTrivialGates:
    """Regression tests: the pass actually removes trivial gates now."""

    def test_unsatisfiable_gate_dropped(self):
        gate = ToffoliGate(((0, True), (0, False)), 1)
        circuit = build_circuit(2, [gate])
        optimized = remove_trivial_gates(circuit)
        assert optimized.num_gates() == 0
        assert np.array_equal(
            circuit.to_permutation(), optimized.to_permutation()
        )

    def test_unsatisfiable_gate_among_real_gates(self):
        keep = ToffoliGate.toffoli(0, 1, 2)
        trivial = ToffoliGate(((0, True), (0, False), (1, True)), 3)
        circuit = build_circuit(4, [keep, trivial, keep, ToffoliGate.x(3)])
        optimized = remove_trivial_gates(circuit)
        assert optimized.num_gates() == 3
        assert np.array_equal(
            circuit.to_permutation(), optimized.to_permutation()
        )

    def test_duplicate_control_entries_deduplicated(self):
        gate = ToffoliGate(((0, True), (0, True), (1, False)), 2)
        circuit = build_circuit(3, [gate])
        optimized = remove_trivial_gates(circuit)
        assert optimized.num_gates() == 1
        normalized = optimized.gates()[0]
        assert not normalized.has_duplicate_controls()
        assert normalized.num_controls() == 2
        assert np.array_equal(
            circuit.to_permutation(), optimized.to_permutation()
        )

    def test_deduplication_restores_honest_t_count(self):
        # A duplicated 2-control gate must not be charged as a 3-control
        # gate anywhere in the stack.
        gate = ToffoliGate(((0, True), (0, True), (1, True)), 2)
        circuit = build_circuit(3, [gate])
        assert circuit.t_count() == 7  # models normalise on the fly
        assert remove_trivial_gates(circuit).t_count() == 7

    def test_unsatisfiable_gates_cost_no_t(self):
        gate = ToffoliGate(((0, True), (0, False), (1, True)), 2)
        circuit = build_circuit(3, [gate])
        assert circuit.t_count() == 0

    def test_optimize_circuit_runs_trivial_removal(self):
        trivial = ToffoliGate(((0, True), (0, False)), 1)
        circuit = build_circuit(2, [trivial])
        assert optimize_circuit(circuit).num_gates() == 0

    def test_roles_preserved(self):
        circuit = ReversibleCircuit()
        circuit.add_input_line(0, "a")
        circuit.add_constant_line(0, "anc")
        circuit.set_output(1, 0)
        circuit.append(ToffoliGate.cnot(0, 1))
        circuit.append(ToffoliGate.x(1))
        circuit.append(ToffoliGate.x(1))
        optimized = optimize_circuit(circuit)
        assert optimized.num_gates() == 1
        assert optimized.output_lines() == {0: 1}
        assert optimized.input_lines() == {0: 0}
