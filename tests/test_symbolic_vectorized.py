"""Property tests pinning the vectorised symbolic kernels to their oracles.

The BDD manager's iterative walks and memoised truth-table sweep, the
bit-sliced transformation-based synthesis kernel and the structural-prefix
cut-enumeration cache are rewrites of reference implementations that stay
in the tree as oracles (``*_reference``).  These tests cross-check the
rewrites on *random* inputs — random functions through the BDD manager,
random AIGs through the collapse pipeline, random permutations through TBS
(gate for gate), random XMGs through the cut cache — plus the golden
INTDIV(8) refactoring pipeline, the explicit-table allocation guards and
the MCT-cost memoisation regression.
"""

import dis

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.reversible.tbs as tbs_module
from repro.logic.aig import Aig
from repro.logic.bdd import BddManager
from repro.logic.collapse import bdd_to_truth_table, collapse_to_bdd
from repro.logic.cuts import (
    clear_cut_enumeration_cache,
    cut_enumeration_cache_stats,
    enumerate_cuts,
)
from repro.logic.truth_table import TruthTable, tt_mask
from repro.logic.xmg import Xmg
from repro.logic.xmg_mapping import aig_to_xmg
from repro.opt.xmg_passes import xmg_refactor
from repro.reversible.embedding import bennett_embedding, optimum_embedding
from repro.reversible.tbs import (
    MAX_TBS_LINES,
    synthesize_permutation_gates,
    synthesize_permutation_gates_reference,
    transformation_based_synthesis,
)
from repro.verify.differential import check_equivalent


# ---------------------------------------------------------------------------
# random network generators (deterministic per hypothesis example)
# ---------------------------------------------------------------------------

def _random_aig(num_pis, gate_choices):
    """An AIG whose gates pick random (possibly complemented) fanins."""
    aig = Aig("random")
    lits = [aig.add_pi() for _ in range(num_pis)]
    for a_pick, b_pick, a_neg, b_neg in gate_choices:
        a = lits[a_pick % len(lits)] ^ (1 if a_neg else 0)
        b = lits[b_pick % len(lits)] ^ (1 if b_neg else 0)
        lits.append(aig.create_and(a, b))
    aig.add_po(lits[-1])
    return aig


def _random_xmg(num_pis, gate_choices):
    """An XMG mixing MAJ and XOR gates over random complemented fanins."""
    xmg = Xmg("random")
    lits = [xmg.add_pi() for _ in range(num_pis)]
    for use_maj, a_pick, b_pick, c_pick, a_neg, b_neg, c_neg in gate_choices:
        a = lits[a_pick % len(lits)] ^ (1 if a_neg else 0)
        b = lits[b_pick % len(lits)] ^ (1 if b_neg else 0)
        c = lits[c_pick % len(lits)] ^ (1 if c_neg else 0)
        lits.append(
            xmg.create_maj(a, b, c) if use_maj else xmg.create_xor(a, b)
        )
    xmg.add_po(lits[-1])
    return xmg


_AIG_GATES = st.lists(
    st.tuples(
        st.integers(0, 63), st.integers(0, 63), st.booleans(), st.booleans()
    ),
    min_size=1,
    max_size=40,
)

_XMG_GATES = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 63), st.integers(0, 63), st.integers(0, 63),
        st.booleans(), st.booleans(), st.booleans(),
    ),
    min_size=2,
    max_size=24,
)


# ---------------------------------------------------------------------------
# BDD: iterative walks vs the recursive oracles
# ---------------------------------------------------------------------------

class TestBddIterativeVsRecursive:
    @settings(max_examples=60, deadline=None)
    @given(
        op=st.sampled_from(["and", "or", "xor"]),
        num_vars=st.integers(1, 7),
        data=st.data(),
    )
    def test_apply_matches_reference(self, op, num_vars, data):
        fa = data.draw(st.integers(0, tt_mask(num_vars)))
        fb = data.draw(st.integers(0, tt_mask(num_vars)))
        # Two fresh managers so neither path sees the other's cache entries.
        fast = BddManager(num_vars)
        slow = BddManager(num_vars)
        fast_node = fast._apply(
            op, fast.from_truth_table(fa), fast.from_truth_table(fb)
        )
        slow_node = slow._apply_reference(
            op, slow.from_truth_table(fa), slow.from_truth_table(fb)
        )
        assert fast.to_truth_table_reference(fast_node) == \
            slow.to_truth_table_reference(slow_node)

    @settings(max_examples=60, deadline=None)
    @given(num_vars=st.integers(1, 7), data=st.data())
    def test_not_restrict_satcount_match_references(self, num_vars, data):
        func = data.draw(st.integers(0, tt_mask(num_vars)))
        manager = BddManager(num_vars)
        node = manager.from_truth_table(func)
        assert manager.apply_not(node) == manager.apply_not_reference(node)
        assert manager.satcount(node) == manager.satcount_reference(node)
        for var in range(num_vars):
            for value in (False, True):
                assert manager.restrict(node, var, value) == \
                    manager.restrict_reference(node, var, value)

    @settings(max_examples=60, deadline=None)
    @given(num_vars=st.integers(0, 8), data=st.data())
    def test_truth_table_sweep_matches_reference(self, num_vars, data):
        funcs = data.draw(
            st.lists(st.integers(0, tt_mask(num_vars)), min_size=1, max_size=5)
        )
        manager = BddManager(num_vars)
        roots = [manager.from_truth_table(f) for f in funcs]
        # The shared sweep must agree with the per-root recursive oracle and
        # round-trip the constructing functions.
        assert manager.to_truth_tables(roots) == [
            manager.to_truth_table_reference(r) for r in roots
        ] == funcs
        for root, func in zip(roots, funcs):
            assert manager.to_truth_table(root) == func

    @settings(max_examples=20, deadline=None)
    @given(num_vars=st.integers(6, 9), data=st.data())
    def test_word_sweep_matches_int_sweep(self, num_vars, data):
        # Force the packed-word sweep on widths the int sweep would normally
        # handle (the default threshold is 10 variables; the word layout
        # itself starts at 6), so both sweeps see the same inputs.
        import repro.logic.bdd as bdd_module

        funcs = data.draw(
            st.lists(st.integers(0, tt_mask(num_vars)), min_size=1, max_size=4)
        )
        manager = BddManager(num_vars)
        roots = [manager.from_truth_table(f) for f in funcs]
        expected = manager.to_truth_tables(roots)
        original = bdd_module._WORD_SWEEP_MIN_VARS
        bdd_module._WORD_SWEEP_MIN_VARS = 0
        try:
            assert manager.to_truth_tables(roots) == expected == funcs
        finally:
            bdd_module._WORD_SWEEP_MIN_VARS = original

    @settings(max_examples=25, deadline=None)
    @given(num_pis=st.integers(2, 7), gates=_AIG_GATES)
    def test_collapse_pipeline_matches_direct_expansion(self, num_pis, gates):
        aig = _random_aig(num_pis, gates)
        manager, roots = collapse_to_bdd(aig)
        assert bdd_to_truth_table(manager, roots).words.tolist() == \
            aig.to_truth_table().words.tolist()


# ---------------------------------------------------------------------------
# TBS: bit-sliced kernel vs the scanning oracle, gate for gate
# ---------------------------------------------------------------------------

class TestTbsBitslicedVsReference:
    @settings(max_examples=40, deadline=None)
    @given(
        num_lines=st.integers(1, 5),
        bidirectional=st.booleans(),
        data=st.data(),
    )
    def test_random_permutations_gate_for_gate(
        self, num_lines, bidirectional, data
    ):
        perm = data.draw(st.permutations(range(1 << num_lines)))
        fast = synthesize_permutation_gates(perm, num_lines, bidirectional)
        ref = synthesize_permutation_gates_reference(
            perm, num_lines, bidirectional
        )
        assert fast == ref

    def test_structured_permutations_gate_for_gate(self):
        # Larger widths on structured permutations (adders, bit-reversal,
        # rotations) where the reference is still affordable.
        num_lines = 7
        size = 1 << num_lines
        cases = [
            [(x + 13) % size for x in range(size)],
            [int(f"{x:07b}"[::-1], 2) for x in range(size)],
            list(range(size))[::-1],
        ]
        for perm in cases:
            for bidirectional in (False, True):
                assert synthesize_permutation_gates(
                    perm, num_lines, bidirectional
                ) == synthesize_permutation_gates_reference(
                    perm, num_lines, bidirectional
                )

    def test_circuit_applies_the_permutation(self):
        rng = np.random.default_rng(7)
        for num_lines in (3, 4, 5):
            perm = rng.permutation(1 << num_lines)
            circuit = transformation_based_synthesis(perm, num_lines)
            # Gate-level replay independent of the synthesis kernels.
            values = list(range(1 << num_lines))
            for gate in circuit.gates():
                care, polarity = gate.control_masks()
                values = [
                    v ^ (1 << gate.target) if (v & care) == polarity else v
                    for v in values
                ]
            assert values == list(perm)


class TestTbsGuards:
    def test_transformation_based_synthesis_rejects_huge_tables(self):
        # range() is a Sequence, so nothing is allocated before the guard.
        with pytest.raises(ValueError, match="MAX_TBS_LINES"):
            transformation_based_synthesis(
                range(1 << (MAX_TBS_LINES + 1)), MAX_TBS_LINES + 1
            )
        with pytest.raises(ValueError, match="MAX_TBS_LINES"):
            synthesize_permutation_gates(
                range(1 << (MAX_TBS_LINES + 1)), MAX_TBS_LINES + 1
            )

    def test_embeddings_reject_unallocatable_tables(self, monkeypatch):
        import repro.reversible.embedding as embedding_module

        monkeypatch.setattr(embedding_module, "MAX_TBS_LINES", 4)
        table = TruthTable.from_columns([0b10110110, 0b01011100], 3)
        # bennett needs n + m = 5 lines, optimum max(n, m + l) lines.
        with pytest.raises(ValueError, match="MAX_TBS_LINES=4"):
            bennett_embedding(table)
        with pytest.raises(ValueError, match="MAX_TBS_LINES=4"):
            optimum_embedding(table, extra_lines=3)

    def test_embeddings_within_the_cap_still_work(self):
        table = TruthTable.from_columns([0b0110, 0b1000], 2)
        assert bennett_embedding(table).is_valid()
        assert optimum_embedding(table).is_valid()


class TestMctCostHoisting:
    def test_cost_import_is_hoisted_out_of_the_loops(self):
        # Regression: _gate_list_cost used to re-import mct_t_count on every
        # call, i.e. once per candidate gate list of every permutation row.
        # The import must now execute once, at module import time.
        assert hasattr(tbs_module, "mct_t_count")
        for fn in (tbs_module._gate_list_cost, tbs_module._mct_cost,
                   tbs_module._gate_masks_transforming):
            opnames = {inst.opname for inst in dis.get_instructions(fn)}
            assert "IMPORT_NAME" not in opnames, f"{fn.__name__} re-imports"

    def test_cost_memo_matches_direct_computation(self):
        from repro.quantum.tcount import mct_t_count

        tbs_module._MCT_COST_MEMO.clear()
        for arity in (0, 1, 2, 3, 5, 7):
            assert tbs_module._mct_cost(arity) == mct_t_count(arity)
            # Second call is served from the memo and stays correct.
            assert tbs_module._mct_cost(arity) == mct_t_count(arity)
            assert arity in tbs_module._MCT_COST_MEMO


# ---------------------------------------------------------------------------
# cut-enumeration cache and the batch-cut refactoring path
# ---------------------------------------------------------------------------

class TestCutEnumerationCache:
    @settings(max_examples=25, deadline=None)
    @given(
        num_pis=st.integers(2, 5),
        gates=_XMG_GATES,
        split=st.integers(1, 23),
    )
    def test_warm_cache_matches_cold_enumeration(self, num_pis, gates, split):
        # Enumerate a prefix network first (filling the cache), then the
        # full network warm; the result must equal a cold enumeration.
        split = min(split, len(gates) - 1)
        prefix_xmg = _random_xmg(num_pis, gates[:split] + gates[-1:])
        full_xmg = _random_xmg(num_pis, gates)
        clear_cut_enumeration_cache()
        cold = enumerate_cuts(full_xmg, k=4)
        clear_cut_enumeration_cache()
        enumerate_cuts(prefix_xmg, k=4)
        warm = enumerate_cuts(full_xmg, k=4)
        assert warm == cold

    def test_repeat_enumeration_reuses_every_node(self):
        xmg = _random_xmg(4, [(True, 0, 1, 2, False, True, False),
                              (False, 3, 4, 0, True, False, False),
                              (True, 4, 5, 1, False, False, True)])
        clear_cut_enumeration_cache()
        first = enumerate_cuts(xmg, k=4)
        stats = cut_enumeration_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = enumerate_cuts(xmg, k=4)
        stats = cut_enumeration_cache_stats()
        assert stats["hits"] == 1
        assert stats["nodes_reused"] >= len(list(xmg.nodes())) - 1
        assert second == first

    def test_different_parameters_do_not_share_entries(self):
        xmg = _random_xmg(3, [(True, 0, 1, 2, False, False, False),
                              (False, 2, 3, 0, True, False, False)])
        clear_cut_enumeration_cache()
        by_depth = enumerate_cuts(xmg, k=4, selection="depth")
        by_area = enumerate_cuts(xmg, k=4, selection="area")
        stats = cut_enumeration_cache_stats()
        assert stats["misses"] == 2  # parameter mismatch never hits
        clear_cut_enumeration_cache()
        assert enumerate_cuts(xmg, k=4, selection="area") == by_area
        clear_cut_enumeration_cache()
        assert enumerate_cuts(xmg, k=4, selection="depth") == by_depth


class TestRefactorGolden:
    def test_intdiv8_refactor_is_equivalent_and_deterministic(self):
        from repro.hdl import synthesize_verilog
        from repro.hdl.designs import intdiv_verilog

        xmg = aig_to_xmg(synthesize_verilog(intdiv_verilog(8)))
        clear_cut_enumeration_cache()
        cold = xmg_refactor(xmg)
        warm = xmg_refactor(xmg)  # second run reuses the cached enumeration
        for candidate in (cold, warm):
            result = check_equivalent(xmg, candidate)
            assert result.equivalent, result.message
        # The cache must not change what the pass produces.
        assert (cold.num_maj(), cold.num_xor(), cold.num_gates()) == \
            (warm.num_maj(), warm.num_xor(), warm.num_gates())
        assert cut_enumeration_cache_stats()["hits"] >= 1
