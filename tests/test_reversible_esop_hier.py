"""Unit tests for ESOP-based and hierarchical reversible synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.designs import intdiv_reference
from repro.hdl.synthesize import synthesize_reciprocal_design
from repro.logic.esop import esop_from_columns, esop_from_truth_table, minimize_esop
from repro.logic.truth_table import TruthTable
from repro.logic.xmg_mapping import aig_to_xmg
from repro.reversible.esop_synth import esop_synthesis
from repro.reversible.hierarchical import hierarchical_synthesis
from repro.reversible.verification import verify_circuit


def reciprocal_table(n):
    return TruthTable.from_callable(lambda x: intdiv_reference(n, x), n, n)


class TestEsopSynthesis:
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=3),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_covers(self, columns, p):
        cover = minimize_esop(esop_from_columns(columns, 3))
        circuit = esop_synthesis(cover, p=p)
        table = TruthTable.from_columns(columns, 3)
        result = verify_circuit(circuit, table, check_clean_ancillas=True)
        assert result, result.message

    @pytest.mark.parametrize("p", [0, 1])
    def test_reciprocal(self, p):
        n = 5
        table = reciprocal_table(n)
        cover = minimize_esop(esop_from_truth_table(table))
        circuit = esop_synthesis(cover, p=p)
        result = verify_circuit(circuit, table, check_clean_ancillas=True)
        assert result, result.message
        if p == 0:
            assert circuit.num_lines() == 2 * n  # the paper's p = 0 line count
        else:
            assert circuit.num_lines() >= 2 * n

    def test_p0_max_controls_bounded_by_inputs(self):
        n = 5
        cover = minimize_esop(esop_from_truth_table(reciprocal_table(n)))
        circuit = esop_synthesis(cover, p=0)
        assert circuit.max_controls() <= n

    def test_factoring_reduces_t_count_or_equal(self):
        n = 6
        cover = minimize_esop(esop_from_truth_table(reciprocal_table(n)))
        base = esop_synthesis(cover, p=0)
        factored = esop_synthesis(cover, p=1)
        assert factored.num_lines() >= base.num_lines()
        # Factoring trades qubits for T gates; allow equality for small n.
        assert factored.t_count() <= base.t_count() * 1.1

    def test_inputs_preserved(self):
        n = 4
        table = reciprocal_table(n)
        cover = esop_from_truth_table(table)
        circuit = esop_synthesis(cover)
        for x in range(1 << n):
            state = circuit.final_state(x)
            for i, line in circuit.input_lines().items():
                assert (state >> line) & 1 == (x >> i) & 1

    def test_negative_p_rejected(self):
        cover = esop_from_columns([0b1000], 2)
        with pytest.raises(ValueError):
            esop_synthesis(cover, p=-1)


class TestHierarchicalSynthesis:
    @pytest.mark.parametrize("design", ["intdiv", "newton"])
    @pytest.mark.parametrize("strategy", ["bennett", "per_output"])
    def test_reciprocal_designs(self, design, strategy):
        n = 4
        _, aig = synthesize_reciprocal_design(design, n)
        xmg = aig_to_xmg(aig, k=4)
        circuit = hierarchical_synthesis(xmg, strategy=strategy)
        result = verify_circuit(circuit, aig.to_truth_table(), check_clean_ancillas=True)
        assert result, result.message

    def test_strategy_alias_eager(self):
        _, aig = synthesize_reciprocal_design("intdiv", 3)
        xmg = aig_to_xmg(aig)
        circuit = hierarchical_synthesis(xmg, strategy="eager")
        assert verify_circuit(circuit, aig.to_truth_table())

    def test_unknown_strategy(self):
        _, aig = synthesize_reciprocal_design("intdiv", 3)
        xmg = aig_to_xmg(aig)
        with pytest.raises(ValueError):
            hierarchical_synthesis(xmg, strategy="pebble")

    def test_per_output_uses_fewer_lines(self):
        _, aig = synthesize_reciprocal_design("intdiv", 5)
        xmg = aig_to_xmg(aig)
        bennett = hierarchical_synthesis(xmg, strategy="bennett")
        per_output = hierarchical_synthesis(xmg, strategy="per_output")
        assert per_output.num_lines() <= bennett.num_lines()
        # ... at the price of additional gates when logic is shared.
        assert per_output.num_gates() >= bennett.num_gates() * 0.5

    def test_per_output_pass_through_uses_2n_lines(self):
        # Regression for the copy-target pool: a design whose outputs are
        # bare primary inputs must use exactly inputs + outputs qubits —
        # no ancilla is allocated for a trivial cone.
        from repro.hdl.synthesize import synthesize_verilog

        n = 4
        source = (
            f"module pass (input [{n-1}:0] a, output [{n-1}:0] y);\n"
            "    assign y = a;\nendmodule\n"
        )
        aig = synthesize_verilog(source)
        xmg = aig_to_xmg(aig)
        for strategy in ("bennett", "per_output"):
            circuit = hierarchical_synthesis(xmg, strategy=strategy)
            assert circuit.num_lines() == 2 * n, strategy
            assert verify_circuit(circuit, aig.to_truth_table())

    def test_per_output_trivial_output_reuses_freed_ancilla(self):
        # One computed cone followed by a bare-PI output: after the cone is
        # uncomputed its ancilla is zero again, so the trivial output's copy
        # target must reuse it instead of allocating a fresh line.
        from repro.logic.xmg import Xmg

        xmg = Xmg("mix")
        a, b, c = xmg.add_pi("a"), xmg.add_pi("b"), xmg.add_pi("c")
        xmg.add_po(xmg.create_maj(a, b, c), "m")
        xmg.add_po(a, "y")
        per_output = hierarchical_synthesis(xmg, strategy="per_output")
        # 3 inputs + 1 cone ancilla (claimed as output m) + ... the second
        # output reuses the freed cone line: 5 lines, not 6.
        assert per_output.num_lines() == 5
        bennett = hierarchical_synthesis(xmg, strategy="bennett")
        assert bennett.num_lines() == 6
        from repro.verify.differential import check_equivalent

        for circuit in (per_output, bennett):
            check = check_equivalent(xmg, circuit, mode="full")
            assert check.equivalent, check.message

    def test_per_output_constant_outputs_cost_no_ancilla(self):
        from repro.logic.xmg import Xmg

        xmg = Xmg("consts")
        a = xmg.add_pi("a")
        xmg.add_po(Xmg.CONST1, "one")
        xmg.add_po(Xmg.CONST0, "zero")
        xmg.add_po(a, "y")
        circuit = hierarchical_synthesis(xmg, strategy="per_output")
        assert circuit.num_lines() == 4  # 1 input + 3 output lines
        assert circuit.evaluate(0) == 0b001
        assert circuit.evaluate(1) == 0b101

    def test_max_controls_is_two(self):
        _, aig = synthesize_reciprocal_design("intdiv", 4)
        xmg = aig_to_xmg(aig)
        circuit = hierarchical_synthesis(xmg)
        assert circuit.max_controls() <= 2

    def test_inputs_preserved_and_ancillas_clean(self):
        _, aig = synthesize_reciprocal_design("intdiv", 4)
        xmg = aig_to_xmg(aig)
        circuit = hierarchical_synthesis(xmg, strategy="bennett")
        table = aig.to_truth_table()
        for x in range(16):
            state = circuit.final_state(x)
            for i, line in circuit.input_lines().items():
                assert (state >> line) & 1 == (x >> i) & 1
        assert verify_circuit(circuit, table, check_clean_ancillas=True)

    def test_xor_nodes_cost_no_t_gates(self):
        # A pure parity function must synthesise to a T-free circuit.
        from repro.logic.aig import Aig

        aig = Aig("parity")
        lits = [aig.add_pi() for _ in range(4)]
        aig.add_po(aig.create_xor_multi(lits), "p")
        xmg = aig_to_xmg(aig)
        circuit = hierarchical_synthesis(xmg)
        assert circuit.t_count() == 0
        assert verify_circuit(circuit, aig.to_truth_table())
