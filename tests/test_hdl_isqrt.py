"""Tests for the ISQRT(n) inverse-square-root design."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import design_source, run_flow
from repro.hdl.isqrt import isqrt_exact, isqrt_iterations, isqrt_reference, isqrt_verilog
from repro.hdl.synthesize import synthesize_to_netlist, synthesize_verilog


class TestReferenceModel:
    def test_iteration_counts_grow_slowly(self):
        assert isqrt_iterations(4) <= isqrt_iterations(8) <= isqrt_iterations(16)
        assert isqrt_iterations(8) >= 2

    def test_perfect_squares(self):
        # The iteration truncates towards zero, so perfect squares land at
        # most one ulp below the exact value: 1/sqrt(4) = 0.5, 1/sqrt(16) = 0.25.
        n = 6
        assert abs(isqrt_reference(n, 4) - (1 << n) // 2) <= 1
        assert abs(isqrt_reference(n, 16) - (1 << n) // 4) <= 1

    def test_one_saturates(self):
        # 1/sqrt(1) = 1.0 is not representable; the design truncates to 0
        # (the same convention as INTDIV/NEWTON for x = 1).
        assert isqrt_reference(6, 1) in (0, (1 << 6) - 1)

    @given(st.integers(min_value=4, max_value=10), st.integers(min_value=2, max_value=1023))
    @settings(max_examples=200)
    def test_close_to_exact(self, n, x):
        x %= 1 << n
        if x < 2:
            return
        approx = isqrt_reference(n, x)
        exact = isqrt_exact(n, x)
        assert abs(approx - exact) <= max(4.0, exact * 0.05)

    @given(st.integers(min_value=2, max_value=255))
    @settings(max_examples=100)
    def test_monotone_decreasing(self, x):
        n = 8
        assert isqrt_reference(n, x) >= isqrt_reference(n, min(255, x + 1)) - 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            isqrt_reference(0, 3)
        with pytest.raises(ValueError):
            isqrt_iterations(0)
        with pytest.raises(ValueError):
            isqrt_exact(4, 0)
        with pytest.raises(ValueError):
            isqrt_verilog(0)


class TestGeneratedVerilog:
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_netlist_matches_reference(self, n):
        netlist = synthesize_to_netlist(isqrt_verilog(n))
        for x in range(1 << n):
            assert netlist.evaluate({"x": x})["y"] == isqrt_reference(n, x)

    def test_bitblast_matches_reference(self):
        n = 4
        aig = synthesize_verilog(isqrt_verilog(n))
        table = aig.to_truth_table()
        for x in range(1 << n):
            assert table.evaluate(x) == isqrt_reference(n, x)

    def test_design_source_registered(self):
        source = design_source("isqrt", 5)
        assert "module isqrt" in source
        assert source.count("Newton iteration") == isqrt_iterations(5)


class TestIsqrtThroughFlows:
    @pytest.mark.parametrize("flow", ["esop", "hierarchical"])
    def test_flows_verify(self, flow):
        result = run_flow(flow, "isqrt", 4)
        assert result.report.verified is True
        assert result.report.qubits > 0

    def test_symbolic_flow_line_optimal(self):
        result = run_flow("symbolic", "isqrt", 4)
        assert result.report.verified is True
        # The inverse square root also collides heavily, so the optimum
        # embedding needs fewer than the Bennett bound of 2n lines.
        assert result.report.qubits <= 2 * 4
