"""Unit tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_length,
    bits_to_int,
    clog2,
    int_to_bits,
    iter_minterms,
    popcount,
    reverse_bits,
    sign_extend,
    to_unsigned,
)


class TestClog2:
    def test_powers_of_two(self):
        assert clog2(1) == 0
        assert clog2(2) == 1
        assert clog2(4) == 2
        assert clog2(1024) == 10

    def test_non_powers(self):
        assert clog2(3) == 2
        assert clog2(5) == 3
        assert clog2(1000) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            clog2(0)
        with pytest.raises(ValueError):
            clog2(-1)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_defining_property(self, value):
        k = clog2(value)
        assert (1 << k) >= value
        assert k == 0 or (1 << (k - 1)) < value


class TestBitConversions:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip(self, value):
        bits = int_to_bits(value, 64)
        assert bits_to_int(bits) == value

    def test_little_endian(self):
        assert int_to_bits(6, 4) == [0, 1, 1, 0]
        assert bits_to_int([0, 1, 1, 0]) == 6

    def test_negative_values_wrap(self):
        assert int_to_bits(-1, 4) == [1, 1, 1, 1]

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestMisc:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        with pytest.raises(ValueError):
            popcount(-1)

    def test_bit_length(self):
        assert bit_length(0) == 1
        assert bit_length(1) == 1
        assert bit_length(255) == 8

    def test_iter_minterms(self):
        assert list(iter_minterms(3)) == list(range(8))
        assert list(iter_minterms(0)) == [0]

    def test_reverse_bits(self):
        assert reverse_bits(0b001, 3) == 0b100
        assert reverse_bits(0b110, 3) == 0b011

    @given(st.integers(min_value=0, max_value=255))
    def test_reverse_involution(self, value):
        assert reverse_bits(reverse_bits(value, 8), 8) == value

    def test_sign_extend(self):
        assert sign_extend(0b1111, 4) == -1
        assert sign_extend(0b0111, 4) == 7
        assert sign_extend(0b1000, 4) == -8

    @given(st.integers(min_value=-128, max_value=127))
    def test_sign_roundtrip(self, value):
        assert sign_extend(to_unsigned(value, 8), 8) == value
