"""Property-based tests over the reversible synthesis stack.

These are the "invariants" layer of the test-suite: for randomly drawn
functions and permutations, every synthesis back-end must produce circuits
that (a) realise exactly the specified function, (b) preserve declared
inputs / restore clean ancillas where promised, and (c) never break under
the peephole optimiser or the Clifford+T cost accounting.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import run_flow
from repro.logic.esop import esop_from_columns, minimize_esop
from repro.logic.truth_table import TruthTable
from repro.logic.xmg import Xmg
from repro.quantum.tcount import mct_t_count
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.embedding import bennett_embedding, optimum_embedding
from repro.reversible.esop_synth import esop_synthesis
from repro.reversible.hierarchical import hierarchical_synthesis
from repro.reversible.optimize import optimize_circuit
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.reversible.tbs import synthesize_permutation_gates
from repro.reversible.verification import verify_circuit
from repro.verify.differential import check_equivalent
from repro.verify.fuzz import random_aig, random_xmg


def random_table(seed, num_inputs=3, num_outputs=3):
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 1 << num_outputs, size=1 << num_inputs).astype(np.uint64)
    return TruthTable(num_inputs, num_outputs, words)


class TestPermutationSynthesisProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_synthesis_inverse_composition_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        num_lines = int(rng.integers(2, 5))
        permutation = rng.permutation(1 << num_lines)
        gates = synthesize_permutation_gates(permutation, num_lines)

        circuit = ReversibleCircuit()
        for _ in range(num_lines):
            circuit.add_constant_line(0)
        circuit.extend(gates)
        forward = circuit.to_permutation()
        backward = circuit.inverse().to_permutation()
        assert np.array_equal(backward[forward], np.arange(1 << num_lines))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_gate_count_bounded(self, seed):
        rng = np.random.default_rng(seed)
        num_lines = int(rng.integers(2, 5))
        permutation = rng.permutation(1 << num_lines)
        gates = synthesize_permutation_gates(permutation, num_lines)
        # The MMD bound: at most n * 2^n gates.
        assert len(gates) <= num_lines * (1 << num_lines)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_optimizer_preserves_synthesised_permutations(self, seed):
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(16)
        gates = synthesize_permutation_gates(permutation, 4)
        circuit = ReversibleCircuit()
        for _ in range(4):
            circuit.add_constant_line(0)
        circuit.extend(gates)
        optimized = optimize_circuit(circuit)
        assert np.array_equal(optimized.to_permutation(), circuit.to_permutation())


class TestEmbeddingAndSynthesisProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_symbolic_tbs_realises_random_functions(self, seed):
        table = random_table(seed)
        circuit = symbolic_tbs(table)
        result = verify_circuit(circuit, table)
        assert result, result.message

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_optimum_never_uses_more_lines_than_bennett(self, seed):
        table = random_table(seed)
        assert optimum_embedding(table).num_lines <= bennett_embedding(table).num_lines

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_esop_synthesis_of_random_functions(self, seed):
        table = random_table(seed)
        cover = minimize_esop(esop_from_columns(table.columns(), table.num_inputs))
        circuit = esop_synthesis(cover, p=seed % 2)
        result = verify_circuit(circuit, table, check_clean_ancillas=True)
        assert result, result.message
        # T-count accounting is consistent between the circuit and the model.
        assert circuit.t_count() == sum(
            mct_t_count(g.num_controls()) for g in circuit.gates()
        )


class TestHierarchicalProperties:
    def random_xmg(self, seed, num_inputs=4, num_gates=8):
        rng = np.random.default_rng(seed)
        xmg = Xmg()
        literals = [xmg.add_pi() for _ in range(num_inputs)]
        for _ in range(num_gates):
            choice = rng.integers(0, 3)
            a, b, c = (int(literals[rng.integers(0, len(literals))]) for _ in range(3))
            if choice == 0:
                literals.append(xmg.create_maj(a, b ^ 1, c))
            elif choice == 1:
                literals.append(xmg.create_xor(a, b))
            else:
                literals.append(xmg.create_and(a, c ^ 1))
        for index, lit in enumerate(literals[-2:]):
            xmg.add_po(lit, f"f{index}")
        return xmg

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_random_xmgs_compile_correctly(self, seed):
        xmg = self.random_xmg(seed)
        table = xmg.to_truth_table()
        for strategy in ("bennett", "per_output"):
            circuit = hierarchical_synthesis(xmg, strategy=strategy)
            result = verify_circuit(circuit, table, check_clean_ancillas=True)
            assert result, result.message

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_t_count_tracks_majority_nodes(self, seed):
        xmg = self.random_xmg(seed).cleanup()
        circuit = hierarchical_synthesis(xmg, strategy="bennett")
        # Bennett: every MAJ node is computed and uncomputed -> exactly two
        # Toffoli gates per (reachable) majority node, XORs are free.
        assert circuit.t_count() == 2 * xmg.num_maj() * 7


class TestDifferentialFlowProperties:
    """End-to-end flow invariants checked with the differential engine.

    Unlike the per-back-end properties above, these run the *flows* of
    :mod:`repro.core.flows` (optimisation scripts included) on fuzzed
    networks and cross-check layers with ``repro.verify``.
    """

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_symbolic_flow_differentially_verified(self, seed):
        aig = random_aig(seed, num_pis=3, num_gates=8, num_pos=2)
        result = run_flow("symbolic", aig, 3, verify=False)
        check = check_equivalent(aig, result.circuit, mode="full")
        assert check.equivalent, check.message

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_esop_flow_differentially_verified(self, seed):
        aig = random_aig(seed, num_pis=4, num_gates=10, num_pos=3)
        result = run_flow("esop", aig, 4, verify=False, p=seed % 3)
        check = check_equivalent(aig, result.circuit, mode="full")
        assert check.equivalent, check.message

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_hierarchical_flow_differentially_verified(self, seed):
        aig = random_aig(seed, num_pis=4, num_gates=10, num_pos=2)
        strategy = "bennett" if seed % 2 == 0 else "per_output"
        result = run_flow("hierarchical", aig, 4, verify=False, strategy=strategy)
        check = check_equivalent(aig, result.circuit, mode="full")
        assert check.equivalent, check.message

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_xmg_mapping_preserves_function(self, seed):
        # The XMG layer itself (input of the hierarchical back-end) must
        # match its source network under the differential checker.
        from repro.logic.xmg_mapping import aig_to_xmg

        aig = random_aig(seed, num_pis=4, num_gates=12, num_pos=3)
        xmg = aig_to_xmg(aig, k=3 + seed % 2)
        check = check_equivalent(aig, xmg, mode="full")
        assert check.equivalent, check.message

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_sampled_and_full_modes_agree_on_flows(self, seed):
        # A sampled check must never contradict the complete verdict.
        xmg = random_xmg(seed, num_pis=4, num_gates=8, num_pos=2)
        circuit = hierarchical_synthesis(xmg, strategy="bennett")
        full = check_equivalent(xmg, circuit, mode="full")
        sampled = check_equivalent(
            xmg, circuit, mode="sampled", num_samples=8, seed=seed
        )
        assert full.equivalent, full.message
        assert sampled.equivalent, sampled.message
