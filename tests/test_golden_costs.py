"""Golden regression table for the paper's named designs.

Pins the (qubits, T-count) results of every flow configuration on the
reciprocal designs at small bit-widths.  The flows are deterministic, so
any change to these numbers is a *semantic* change to a synthesis
algorithm — intentional improvements must update this table explicitly in
the same commit, and accidental drift fails loudly.

Runtime is excluded on purpose (it is the one non-deterministic metric,
cf. ``CostReport.metrics``).
"""

import pytest

from repro.core.flows import run_flow

#: (design, bitwidth, flow, parameters) -> (qubits, T-count under "rtof").
GOLDEN_COSTS = [
    ("intdiv", 3, "symbolic", {}, 5, 290),
    ("intdiv", 3, "esop", {"p": 0}, 6, 36),
    ("intdiv", 3, "esop", {"p": 1}, 6, 36),
    ("intdiv", 3, "hierarchical", {"strategy": "bennett"}, 51, 532),
    ("intdiv", 3, "hierarchical", {"strategy": "per_output"}, 49, 868),
    ("intdiv", 4, "symbolic", {}, 7, 2959),
    ("intdiv", 4, "esop", {"p": 0}, 8, 142),
    ("intdiv", 4, "esop", {"p": 1}, 12, 120),
    ("intdiv", 4, "hierarchical", {"strategy": "bennett"}, 115, 1190),
    ("intdiv", 4, "hierarchical", {"strategy": "per_output"}, 112, 2688),
    ("intdiv", 5, "symbolic", {}, 9, 25264),
    ("intdiv", 5, "esop", {"p": 0}, 10, 336),
    ("intdiv", 5, "esop", {"p": 1}, 15, 248),
    ("intdiv", 5, "hierarchical", {"strategy": "bennett"}, 188, 1960),
    ("intdiv", 5, "hierarchical", {"strategy": "per_output"}, 184, 5432),
    ("newton", 2, "symbolic", {}, 3, 28),
    ("newton", 2, "esop", {"p": 0}, 4, 7),
    ("newton", 2, "esop", {"p": 1}, 4, 7),
    ("newton", 2, "hierarchical", {"strategy": "bennett"}, 5, 14),
    ("newton", 2, "hierarchical", {"strategy": "per_output"}, 4, 14),
    ("newton", 3, "symbolic", {}, 5, 282),
    ("newton", 3, "esop", {"p": 0}, 6, 44),
    ("newton", 3, "esop", {"p": 1}, 7, 43),
    ("newton", 3, "hierarchical", {"strategy": "bennett"}, 635, 6370),
    ("newton", 3, "hierarchical", {"strategy": "per_output"}, 608, 17346),
    # LUT-based pebbling flow: one (strategy, k) grid per design so both
    # the scheduler and the area-flow mapper are pinned.
    ("intdiv", 3, "lut", {"strategy": "bennett", "k": 2}, 64, 658),
    ("intdiv", 3, "lut", {"strategy": "bennett", "k": 3}, 9, 58),
    ("intdiv", 3, "lut", {"strategy": "eager", "k": 2}, 62, 1106),
    ("intdiv", 3, "lut", {"strategy": "bounded", "k": 2, "max_pebbles": 0.5}, 30, 1302),
    ("intdiv", 4, "lut", {"strategy": "bennett", "k": 3}, 55, 1088),
    ("intdiv", 4, "lut", {"strategy": "eager", "k": 3}, 52, 2488),
    ("intdiv", 4, "lut", {"strategy": "bounded", "k": 3, "max_pebbles": 0.5}, 32, 2270),
]


def _label(case):
    design, bitwidth, flow, parameters, _, _ = case
    params = ",".join(f"{k}={v}" for k, v in parameters.items())
    return f"{design}({bitwidth})/{flow}" + (f"[{params}]" if params else "")


@pytest.mark.parametrize("case", GOLDEN_COSTS, ids=_label)
def test_golden_cost(case):
    design, bitwidth, flow, parameters, qubits, t_count = case
    result = run_flow(flow, design, bitwidth, verify="full", **parameters)
    assert result.report.verified is True
    assert (result.report.qubits, result.report.t_count) == (qubits, t_count), (
        f"{_label(case)} drifted to "
        f"({result.report.qubits}, {result.report.t_count})"
    )


def test_golden_table_covers_every_flow_configuration():
    configurations = {
        (flow, tuple(sorted(parameters.items())))
        for _, _, flow, parameters, _, _ in GOLDEN_COSTS
    }
    # The paper's five configurations plus six lut (strategy, k) points.
    assert len(configurations) == 5 + 6
    flows = {flow for _, _, flow, _, _, _ in GOLDEN_COSTS}
    assert flows == {"symbolic", "esop", "hierarchical", "lut"}
