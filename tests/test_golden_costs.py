"""Golden regression table for the paper's named designs.

Pins the (qubits, T-count) results of every flow configuration on the
reciprocal designs at small bit-widths.  The flows are deterministic, so
any change to these numbers is a *semantic* change to a synthesis
algorithm — intentional improvements must update this table explicitly in
the same commit, and accidental drift fails loudly.

Runtime is excluded on purpose (it is the one non-deterministic metric,
cf. ``CostReport.metrics``).
"""

import pytest

from repro.core.flows import run_flow

#: (design, bitwidth, flow, parameters) -> (qubits, T-count under "rtof").
GOLDEN_COSTS = [
    ("intdiv", 3, "symbolic", {}, 5, 290),
    ("intdiv", 3, "esop", {"p": 0}, 6, 36),
    ("intdiv", 3, "esop", {"p": 1}, 6, 36),
    ("intdiv", 3, "hierarchical", {"strategy": "bennett"}, 51, 532),
    ("intdiv", 3, "hierarchical", {"strategy": "per_output"}, 49, 868),
    ("intdiv", 4, "symbolic", {}, 7, 2959),
    ("intdiv", 4, "esop", {"p": 0}, 8, 142),
    ("intdiv", 4, "esop", {"p": 1}, 12, 120),
    ("intdiv", 4, "hierarchical", {"strategy": "bennett"}, 115, 1190),
    ("intdiv", 4, "hierarchical", {"strategy": "per_output"}, 112, 2688),
    ("intdiv", 5, "symbolic", {}, 9, 25264),
    ("intdiv", 5, "esop", {"p": 0}, 10, 336),
    ("intdiv", 5, "esop", {"p": 1}, 15, 248),
    ("intdiv", 5, "hierarchical", {"strategy": "bennett"}, 188, 1960),
    ("intdiv", 5, "hierarchical", {"strategy": "per_output"}, 184, 5432),
    ("newton", 2, "symbolic", {}, 3, 28),
    ("newton", 2, "esop", {"p": 0}, 4, 7),
    ("newton", 2, "esop", {"p": 1}, 4, 7),
    ("newton", 2, "hierarchical", {"strategy": "bennett"}, 5, 14),
    ("newton", 2, "hierarchical", {"strategy": "per_output"}, 4, 14),
    ("newton", 3, "symbolic", {}, 5, 282),
    ("newton", 3, "esop", {"p": 0}, 6, 44),
    ("newton", 3, "esop", {"p": 1}, 7, 43),
    ("newton", 3, "hierarchical", {"strategy": "bennett"}, 635, 6370),
    ("newton", 3, "hierarchical", {"strategy": "per_output"}, 608, 17346),
    # LUT-based pebbling flow: one (strategy, k) grid per design so both
    # the scheduler and the area-flow mapper are pinned.
    ("intdiv", 3, "lut", {"strategy": "bennett", "k": 2}, 64, 658),
    ("intdiv", 3, "lut", {"strategy": "bennett", "k": 3}, 9, 58),
    ("intdiv", 3, "lut", {"strategy": "eager", "k": 2}, 62, 1106),
    ("intdiv", 3, "lut", {"strategy": "bounded", "k": 2, "max_pebbles": 0.5}, 30, 1302),
    ("intdiv", 4, "lut", {"strategy": "bennett", "k": 3}, 55, 1088),
    ("intdiv", 4, "lut", {"strategy": "eager", "k": 3}, 52, 2488),
    ("intdiv", 4, "lut", {"strategy": "bounded", "k": 3, "max_pebbles": 0.5}, 32, 2270),
]


#: Explicit rtof-mapped resources on a pinned sub-grid:
#: (design, bitwidth, flow, parameters) -> (T-count, T-depth, mapped qubits).
#: The T-count column must equal the closed-form column of GOLDEN_COSTS for
#: the same configuration — the explicit expansion realizes the model.
GOLDEN_RTOF_RESOURCES = [
    ("intdiv", 3, "symbolic", {}, 290, 175, 7),
    ("intdiv", 3, "esop", {"p": 0}, 36, 19, 7),
    ("intdiv", 3, "hierarchical", {"strategy": "bennett"}, 532, 192, 51),
    ("intdiv", 3, "lut", {"strategy": "bennett", "k": 3}, 58, 31, 10),
    ("intdiv", 4, "esop", {"p": 0}, 142, 90, 10),
    ("intdiv", 4, "esop", {"p": 1}, 120, 50, 13),
    ("intdiv", 4, "hierarchical", {"strategy": "bennett"}, 1190, 322, 115),
    ("intdiv", 4, "lut", {"strategy": "bennett", "k": 3}, 1088, 487, 56),
    ("newton", 2, "symbolic", {}, 28, 16, 3),
    ("newton", 3, "esop", {"p": 0}, 44, 26, 7),
    ("newton", 3, "hierarchical", {"strategy": "bennett"}, 6370, 903, 635),
]


def _label(case):
    design, bitwidth, flow, parameters, _, _ = case
    params = ",".join(f"{k}={v}" for k, v in parameters.items())
    return f"{design}({bitwidth})/{flow}" + (f"[{params}]" if params else "")


def _rtof_label(case):
    design, bitwidth, flow, parameters, _, _, _ = case
    params = ",".join(f"{k}={v}" for k, v in parameters.items())
    return f"{design}({bitwidth})/{flow}" + (f"[{params}]" if params else "")


@pytest.mark.parametrize("case", GOLDEN_COSTS, ids=_label)
def test_golden_cost(case):
    design, bitwidth, flow, parameters, qubits, t_count = case
    result = run_flow(flow, design, bitwidth, verify="full", **parameters)
    assert result.report.verified is True
    assert (result.report.qubits, result.report.t_count) == (qubits, t_count), (
        f"{_label(case)} drifted to "
        f"({result.report.qubits}, {result.report.t_count})"
    )


@pytest.mark.parametrize("case", GOLDEN_RTOF_RESOURCES, ids=_rtof_label)
def test_golden_rtof_resources(case):
    """The explicit rtof mapping is pinned: T-count, T-depth, mapped qubits.

    The mapper itself asserts that every expanded gate spends exactly the
    closed-form ``mct_t_count``; this table additionally pins the resulting
    resource vector so T-depth regressions are loud.
    """
    design, bitwidth, flow, parameters, t_count, t_depth, qc_qubits = case
    result = run_flow(
        flow, design, bitwidth, verify="full", map_model="rtof", **parameters
    )
    report = result.report
    assert report.verified is True
    # The explicit circuit realizes the closed-form rtof T-count exactly.
    assert report.extra["qc_t_count"] == report.t_count
    assert (report.t_count, report.t_depth, report.qc_qubits) == (
        t_count,
        t_depth,
        qc_qubits,
    ), (
        f"{_rtof_label(case)} drifted to "
        f"({report.t_count}, {report.t_depth}, {report.qc_qubits})"
    )


def test_rtof_golden_t_counts_match_closed_form_table():
    """The rtof grid's T-count column agrees with GOLDEN_COSTS."""
    closed_form = {
        (design, bitwidth, flow, tuple(sorted(parameters.items()))): t
        for design, bitwidth, flow, parameters, _, t in GOLDEN_COSTS
    }
    for design, bitwidth, flow, parameters, t_count, _, _ in GOLDEN_RTOF_RESOURCES:
        key = (design, bitwidth, flow, tuple(sorted(parameters.items())))
        if key in closed_form:
            assert closed_form[key] == t_count, key


@pytest.mark.parametrize("model", ["rtof", "barenco"])
def test_explicit_t_count_equals_closed_form_on_fuzzed_circuits(model):
    """Property: map_to_clifford_t(model=m) spends circuit_t_count(m) T gates."""
    import numpy as np

    from repro.quantum.mapping import map_to_clifford_t
    from repro.quantum.tcount import circuit_t_count
    from repro.reversible.circuit import ReversibleCircuit
    from repro.reversible.gates import ToffoliGate

    for seed in range(20):
        rng = np.random.default_rng(seed)
        num_lines = int(rng.integers(3, 8))
        circuit = ReversibleCircuit(f"fuzz{seed}")
        for i in range(num_lines):
            circuit.add_input_line(i)
            circuit.set_output(i, i)
        for _ in range(int(rng.integers(0, 12))):
            target = int(rng.integers(0, num_lines))
            controls = tuple(
                (line, bool(rng.integers(0, 2)))
                for line in range(num_lines)
                if line != target and rng.integers(0, 2)
            )
            circuit.append(ToffoliGate(controls, target))
        quantum = map_to_clifford_t(circuit, model=model)
        assert quantum.t_count() == circuit_t_count(circuit, model=model), seed


def test_golden_table_covers_every_flow_configuration():
    configurations = {
        (flow, tuple(sorted(parameters.items())))
        for _, _, flow, parameters, _, _ in GOLDEN_COSTS
    }
    # The paper's five configurations plus six lut (strategy, k) points.
    assert len(configurations) == 5 + 6
    flows = {flow for _, _, flow, _, _, _ in GOLDEN_COSTS}
    assert flows == {"symbolic", "esop", "hierarchical", "lut"}
