"""Tests for the circuit-level pass framework: rev/qc targets, libraries, flows.

The central properties: every registered reversible pass preserves the
circuit permutation on fuzzed cascades, every Clifford+T pass preserves
the full unitary (checked amplitude-by-amplitude, phases included), the
pipeline engine dispatches cost/copy/guard per target type, and the flow
parameters ``rev_opt`` / ``map_model`` / ``qc_opt`` thread end to end.
"""

import numpy as np
import pytest

from repro.core.flows import run_flow
from repro.opt import (
    DEFAULT_QC_PIPELINE,
    DEFAULT_REV_PIPELINE,
    PipelineError,
    PipelineVerificationError,
    available_passes,
    get_pass,
    named_pipelines,
    parse_pipeline,
    qc_cancel,
    qc_merge,
    target_copy,
    target_cost,
    target_kind,
    target_stats,
)
from repro.opt.targets import reversible_depth
from repro.quantum.circuit import SUPPORTED_GATES, QuantumCircuit
from repro.quantum.mapping import map_to_clifford_t
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.verify.differential import check_equivalent, check_quantum_equivalent

FUZZ_SEEDS = range(10)


def random_reversible(seed, num_lines=4, max_gates=14):
    rng = np.random.default_rng(seed)
    circuit = ReversibleCircuit(f"fuzz{seed}")
    for i in range(num_lines):
        circuit.add_input_line(i)
        circuit.set_output(i, i)
    for _ in range(int(rng.integers(0, max_gates + 1))):
        target = int(rng.integers(0, num_lines))
        controls = []
        for line in range(num_lines):
            if line == target:
                continue
            draw = rng.integers(0, 3)
            if draw:
                controls.append((line, bool(draw - 1)))
        circuit.append(ToffoliGate(tuple(controls), target))
    return circuit


def random_quantum(seed, num_qubits=4, max_gates=24):
    rng = np.random.default_rng(seed)
    names = sorted(SUPPORTED_GATES)
    circuit = QuantumCircuit(num_qubits, name=f"qfuzz{seed}")
    for _ in range(int(rng.integers(0, max_gates + 1))):
        name = names[int(rng.integers(0, len(names)))]
        qubits = rng.choice(num_qubits, size=SUPPORTED_GATES[name], replace=False)
        circuit.add(name, *(int(q) for q in qubits))
    return circuit


# ---------------------------------------------------------------------------
# Target dispatch
# ---------------------------------------------------------------------------


class TestTargets:
    def test_target_kind_tags(self):
        assert target_kind(random_reversible(0)) == "rev"
        assert target_kind(random_quantum(0)) == "qc"
        with pytest.raises(TypeError):
            target_kind(object())

    def test_rev_cost_is_t_count_then_gates(self):
        circuit = random_reversible(1)
        assert target_cost(circuit) == (circuit.t_count(), circuit.num_gates())

    def test_qc_cost_is_t_count_then_gates(self):
        circuit = random_quantum(1)
        assert target_cost(circuit) == (circuit.t_count(), circuit.num_gates())

    def test_target_copy_is_isolated(self):
        circuit = random_reversible(2)
        copy = target_copy(circuit)
        copy.append(ToffoliGate.x(0))
        assert copy.num_gates() == circuit.num_gates() + 1

    def test_target_stats_shapes(self):
        rev = random_reversible(3)
        stats = target_stats(rev)
        assert stats.kind == "rev"
        assert stats.num_gates == rev.num_gates()
        assert stats.num_pis == rev.num_inputs()
        qc = random_quantum(3)
        qstats = target_stats(qc)
        assert qstats.kind == "qc"
        assert qstats.num_gates == qc.num_gates()

    def test_reversible_depth_bounds(self):
        circuit = random_reversible(4)
        depth = reversible_depth(circuit)
        assert 0 <= depth <= circuit.num_gates()
        # Disjoint gates share a layer.
        parallel = ReversibleCircuit()
        for i in range(4):
            parallel.add_input_line(i)
        parallel.append(ToffoliGate.cnot(0, 1))
        parallel.append(ToffoliGate.cnot(2, 3))
        assert reversible_depth(parallel) == 1


# ---------------------------------------------------------------------------
# Registry / CLI surface
# ---------------------------------------------------------------------------


class TestRegistryTargets:
    def test_rev_and_qc_passes_registered(self):
        rev_names = {p.name for p in available_passes("rev")}
        qc_names = {p.name for p in available_passes("qc")}
        assert {"rev_cancel", "rev_not_merge", "rev_trivial"} <= rev_names
        assert {"qc_cancel", "qc_merge"} <= qc_names
        # Target filters are disjoint from the logic-network libraries.
        assert "balance" not in rev_names and "xmg_rewrite" not in qc_names

    def test_short_aliases(self):
        assert get_pass("rc") is get_pass("rev_cancel")
        assert get_pass("rn") is get_pass("rev_not_merge")
        assert get_pass("rt") is get_pass("rev_trivial")
        assert get_pass("qcc") is get_pass("qc_cancel")
        assert get_pass("qcm") is get_pass("qc_merge")

    def test_default_pipelines_registered(self):
        pipelines = named_pipelines()
        assert DEFAULT_REV_PIPELINE in pipelines
        assert DEFAULT_QC_PIPELINE in pipelines
        assert parse_pipeline(DEFAULT_REV_PIPELINE).network_types() == {"rev"}
        assert parse_pipeline(DEFAULT_QC_PIPELINE).network_types() == {"qc"}

    def test_type_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            parse_pipeline("rev_cancel").run(random_quantum(0))
        with pytest.raises(TypeError):
            get_pass("qc_cancel").apply(random_reversible(0))


# ---------------------------------------------------------------------------
# Reversible pass library
# ---------------------------------------------------------------------------


class TestRevPasses:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("name", ["rev_cancel", "rev_not_merge", "rev_trivial"])
    def test_passes_preserve_permutation(self, name, seed):
        circuit = random_reversible(seed)
        optimized = get_pass(name).apply(circuit)
        assert np.array_equal(
            circuit.to_permutation(), optimized.to_permutation()
        )
        assert optimized.num_gates() <= circuit.num_gates()

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_default_pipeline_guarded(self, seed):
        circuit = random_reversible(seed)
        result = parse_pipeline(DEFAULT_REV_PIPELINE).run(circuit, guard="full")
        assert result.cost == (
            result.network.t_count(),
            result.network.num_gates(),
        )
        assert result.network.t_count() <= circuit.t_count()

    def test_keep_best_under_t_count(self):
        # rev_trivial drops the unsatisfiable 2-control gate: T-count falls
        # even though an identity-returning pass later would not improve.
        circuit = ReversibleCircuit()
        for i in range(3):
            circuit.add_input_line(i)
            circuit.set_output(i, i)
        circuit.append(ToffoliGate(((0, True), (0, False), (1, True)), 2))
        circuit.append(ToffoliGate.toffoli(0, 1, 2))
        result = parse_pipeline("rt").run(circuit)
        assert result.network.num_gates() == 1
        assert result.network.t_count() == 7

    def test_guard_catches_broken_pass(self):
        from repro.opt import Pass, register_pass, unregister_pass

        def break_it(circuit):
            damaged = circuit.copy()
            damaged.append(ToffoliGate.x(0))
            return damaged

        register_pass(
            Pass("rev_broken_tmp", break_it, network_types=("rev",))
        )
        try:
            with pytest.raises(PipelineVerificationError):
                parse_pipeline("rev_broken_tmp").run(
                    random_reversible(0, max_gates=4), guard="full"
                )
        finally:
            unregister_pass("rev_broken_tmp")


# ---------------------------------------------------------------------------
# Clifford+T pass library
# ---------------------------------------------------------------------------


class TestQcPasses:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    @pytest.mark.parametrize("func", [qc_cancel, qc_merge])
    def test_passes_preserve_unitary(self, func, seed):
        circuit = random_quantum(seed)
        optimized = func(circuit)
        check = check_quantum_equivalent(circuit, optimized, mode="full")
        assert check.equivalent, check.message
        assert optimized.num_gates() <= circuit.num_gates()

    def test_cancel_involutions_and_inverses(self):
        circuit = QuantumCircuit(2)
        circuit.add("h", 0)
        circuit.add("h", 0)
        circuit.add("t", 1)
        circuit.add("tdg", 1)
        circuit.add("cx", 0, 1)
        circuit.add("cx", 0, 1)
        assert qc_cancel(circuit).num_gates() == 0

    def test_merge_folds_t_pairs_into_clifford(self):
        circuit = QuantumCircuit(1)
        circuit.add("t", 0)
        circuit.add("t", 0)
        merged = qc_merge(circuit)
        assert [g.name for g in merged.gates()] == ["s"]
        assert merged.t_count() == 0

    def test_merge_skips_unrepresentable_sums(self):
        circuit = QuantumCircuit(1)
        circuit.add("t", 0)
        circuit.add("s", 0)  # 3 π/4 units: no single-gate replacement
        merged = qc_merge(circuit)
        assert merged.num_gates() == 2

    def test_cancellation_across_commuting_gates(self):
        circuit = QuantumCircuit(2)
        circuit.add("t", 0)
        circuit.add("cx", 0, 1)  # diagonal on the control commutes
        circuit.add("tdg", 0)
        optimized = qc_cancel(circuit)
        assert [g.name for g in optimized.gates()] == ["cx"]

    def test_no_cancellation_across_blocking_gate(self):
        circuit = QuantumCircuit(2)
        circuit.add("t", 1)
        circuit.add("cx", 0, 1)  # writes the target: blocks
        circuit.add("tdg", 1)
        assert qc_cancel(circuit).num_gates() == 3

    def test_guard_catches_phase_only_change(self):
        from repro.opt import Pass, register_pass, unregister_pass

        def drop_phase(circuit):
            return circuit.with_gates(
                [g for g in circuit.gates() if g.name != "t"]
            )

        register_pass(Pass("qc_broken_tmp", drop_phase, network_types=("qc",)))
        try:
            circuit = QuantumCircuit(2)
            circuit.add("h", 0)
            circuit.add("t", 0)
            circuit.add("h", 0)
            with pytest.raises(PipelineVerificationError):
                parse_pipeline("qc_broken_tmp").run(circuit, guard="full")
        finally:
            unregister_pass("qc_broken_tmp")

    def test_default_pipeline_shrinks_mapped_cascades(self):
        # Two identical Toffolis in a row: the mapped circuit folds to
        # nothing under cancellation.
        rev = ReversibleCircuit()
        for i in range(3):
            rev.add_input_line(i)
            rev.set_output(i, i)
        gate = ToffoliGate.toffoli(0, 1, 2)
        rev.append(gate)
        rev.append(gate)
        quantum = map_to_clifford_t(rev)
        result = parse_pipeline(DEFAULT_QC_PIPELINE).run(quantum, guard="full")
        assert result.network.t_count() < quantum.t_count()


# ---------------------------------------------------------------------------
# Flow threading
# ---------------------------------------------------------------------------


class TestFlowThreading:
    def test_rev_opt_parameter_runs_and_verifies(self):
        plain = run_flow("lut", "intdiv", 4, verify="full",
                         strategy="eager", k=3)
        optimized = run_flow("lut", "intdiv", 4, verify="full",
                             strategy="eager", k=3, rev_opt="rev-default")
        assert optimized.report.verified is True
        assert optimized.report.gate_count <= plain.report.gate_count
        assert optimized.report.extra["rev_opt_pipeline"]

    def test_post_optimize_compatibility_alias(self):
        result = run_flow("hierarchical", "intdiv", 3, verify="full",
                          post_optimize=True)
        assert result.report.verified is True
        assert result.report.extra["rev_opt_pipeline"]

    def test_map_model_folds_resources_into_report(self):
        result = run_flow("esop", "intdiv", 4, verify="full",
                          p=0, map_model="rtof")
        report = result.report
        assert report.t_depth is not None
        assert 0 < report.t_depth <= report.t_count
        assert report.qc_depth >= report.t_depth
        assert report.qc_qubits >= report.qubits
        assert report.extra["qc_t_count"] == report.t_count
        assert report.extra["map_model"] == "rtof"
        # Serialisation round-trip keeps the new first-class fields.
        from repro.core.cost import CostReport

        clone = CostReport.from_dict(report.to_dict())
        assert clone.t_depth == report.t_depth

    def test_map_model_off_by_default(self):
        result = run_flow("esop", "intdiv", 3, verify="off", p=0)
        assert result.report.t_depth is None
        assert "resources" not in result.context

    def test_qc_opt_never_increases_t_count(self):
        base = run_flow("esop", "intdiv", 4, verify="off", p=0,
                        map_model="rtof")
        folded = run_flow("esop", "intdiv", 4, verify="off", p=0,
                          map_model="rtof", qc_opt="qc-default")
        assert (
            folded.context["resources"].t_count
            <= base.context["resources"].t_count
        )

    def test_qc_opt_inherits_opt_guard(self):
        from repro.opt import Pass, register_pass, unregister_pass

        def drop_t(circuit):
            return circuit.with_gates(
                [g for g in circuit.gates() if not g.is_t_like()]
            )

        register_pass(Pass("qc_broken_flow_tmp", drop_t, network_types=("qc",)))
        try:
            # Unguarded: the broken pass silently corrupts the mapping.
            result = run_flow("esop", "intdiv", 3, verify="off", p=0,
                              map_model="rtof", qc_opt="qc_broken_flow_tmp")
            assert result.context["resources"].t_count == 0
            # opt_guard reaches the qc stage (the mapped circuit is small
            # enough for the statevector checker) and fails loudly.
            with pytest.raises(PipelineVerificationError):
                run_flow("esop", "intdiv", 3, verify="off", p=0,
                         map_model="rtof", qc_opt="qc_broken_flow_tmp",
                         opt_guard="full")
            # An explicit qc_opt_guard="off" opts back out.
            result = run_flow("esop", "intdiv", 3, verify="off", p=0,
                              map_model="rtof", qc_opt="qc_broken_flow_tmp",
                              opt_guard="full", qc_opt_guard="off")
            assert result.context["resources"].t_count == 0
        finally:
            unregister_pass("qc_broken_flow_tmp")

    def test_rev_opt_in_explorer_sweep(self):
        from repro.core.explorer import flow_default_configurations

        labels = [c.label() for c in flow_default_configurations("esop")]
        assert any("rev_opt=rev-default" in label for label in labels)
