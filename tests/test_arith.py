"""Unit tests for the reversible arithmetic building blocks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.adders import controlled_add, cuccaro_add, cuccaro_subtract
from repro.arith.divider import build_restoring_divider, divider_reference
from repro.arith.fixed_point import (
    FixedPointFormat,
    from_fixed,
    to_fixed,
    truncated_multiply,
)
from repro.arith.multiplier import build_multiplier
from repro.reversible.circuit import ReversibleCircuit


def build_adder_test_circuit(width, subtract=False, carry_out=True):
    circuit = ReversibleCircuit("adder")
    a = [circuit.add_input_line(i, f"a{i}") for i in range(width)]
    b = [circuit.add_input_line(width + i, f"b{i}") for i in range(width)]
    carry = circuit.add_constant_line(0, "c")
    out = circuit.add_constant_line(0, "z") if carry_out else None
    if subtract:
        cuccaro_subtract(circuit, a, b, carry, borrow_out=out)
    else:
        cuccaro_add(circuit, a, b, carry, carry_out=out)
    return circuit, a, b, carry, out


def run_register_circuit(circuit, assignments):
    """Simulate with a dict line->bit and return the final state."""
    state = 0
    for line, bit in assignments.items():
        if bit:
            state |= 1 << line
    return circuit.apply_to_state(state)


def read_register(state, lines):
    value = 0
    for i, line in enumerate(lines):
        if (state >> line) & 1:
            value |= 1 << i
    return value


class TestCuccaroAdder:
    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31))
    @settings(max_examples=80, deadline=None)
    def test_addition(self, a_value, b_value):
        width = 5
        circuit, a, b, carry, out = build_adder_test_circuit(width)
        assignments = {}
        for i in range(width):
            assignments[a[i]] = (a_value >> i) & 1
            assignments[b[i]] = (b_value >> i) & 1
        state = run_register_circuit(circuit, assignments)
        total = a_value + b_value
        assert read_register(state, b) == total & 31
        assert read_register(state, [out]) == total >> 5
        assert read_register(state, a) == a_value  # addend preserved
        assert read_register(state, [carry]) == 0  # ancilla restored

    @given(st.integers(min_value=0, max_value=31), st.integers(min_value=0, max_value=31))
    @settings(max_examples=80, deadline=None)
    def test_subtraction(self, a_value, b_value):
        width = 5
        circuit, a, b, carry, out = build_adder_test_circuit(width, subtract=True)
        assignments = {}
        for i in range(width):
            assignments[a[i]] = (a_value >> i) & 1
            assignments[b[i]] = (b_value >> i) & 1
        state = run_register_circuit(circuit, assignments)
        assert read_register(state, b) == (b_value - a_value) & 31
        assert read_register(state, [out]) == int(b_value < a_value)
        assert read_register(state, a) == a_value
        assert read_register(state, [carry]) == 0

    def test_width_mismatch_rejected(self):
        circuit = ReversibleCircuit()
        lines = [circuit.add_constant_line(0) for _ in range(5)]
        with pytest.raises(ValueError):
            cuccaro_add(circuit, lines[:2], lines[2:5], lines[0])

    def test_t_count_scales_linearly(self):
        widths = [4, 8, 16]
        counts = []
        for width in widths:
            circuit, *_ = build_adder_test_circuit(width)
            counts.append(circuit.t_count())
        # 2 Toffolis per bit position -> 14 T per bit with the rtof model.
        assert counts == [2 * width * 7 for width in widths]


class TestControlledAdd:
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_controlled_addition(self, a_value, b_value, control_value):
        width = 4
        circuit = ReversibleCircuit()
        control = circuit.add_input_line(0, "ctl")
        a = [circuit.add_input_line(1 + i) for i in range(width)]
        b = [circuit.add_input_line(1 + width + i) for i in range(width)]
        mask = [circuit.add_constant_line(0) for _ in range(width)]
        carry = circuit.add_constant_line(0)
        controlled_add(circuit, control, a, b, mask, carry)

        assignments = {control: int(control_value)}
        for i in range(width):
            assignments[a[i]] = (a_value >> i) & 1
            assignments[b[i]] = (b_value >> i) & 1
        state = run_register_circuit(circuit, assignments)
        expected = (b_value + a_value) & 15 if control_value else b_value
        assert read_register(state, b) == expected
        assert read_register(state, a) == a_value
        assert read_register(state, mask) == 0
        assert read_register(state, [carry]) == 0

    def test_mask_width_checked(self):
        circuit = ReversibleCircuit()
        lines = [circuit.add_constant_line(0) for _ in range(10)]
        with pytest.raises(ValueError):
            controlled_add(circuit, lines[0], lines[1:4], lines[4:7], lines[7:8], lines[9])


class TestMultiplier:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_small_widths(self, width):
        circuit = build_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                word = circuit.evaluate(a | (b << width))
                assert word == a * b

    def test_scratch_restored(self):
        width = 3
        circuit = build_multiplier(width)
        for x in (0b101_011, 0b111_111):
            state = circuit.final_state(x)
            for line, value in circuit.constant_lines().items():
                if not circuit.line_info(line).is_output():
                    assert (state >> line) & 1 == value

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_multiplier(0)


class TestRestoringDivider:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive_small_widths(self, width):
        circuit = build_restoring_divider(width)
        for dividend in range(1 << width):
            for divisor in range(1, 1 << width):
                word = circuit.evaluate(dividend | (divisor << width))
                quotient = word & ((1 << width) - 1)
                remainder = word >> width
                expected_q, expected_r = divider_reference(width, dividend, divisor)
                assert quotient == expected_q
                assert remainder == expected_r

    def test_divisor_preserved(self):
        width = 3
        circuit = build_restoring_divider(width)
        for dividend, divisor in ((5, 3), (7, 1), (6, 6)):
            state = circuit.final_state(dividend | (divisor << width))
            lines = circuit.input_lines()
            read = 0
            for i in range(width):
                if (state >> lines[width + i]) & 1:
                    read |= 1 << i
            assert read == divisor

    def test_reference_division_by_zero_convention(self):
        assert divider_reference(4, 9, 0) == (15, 9)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_restoring_divider(0)


class TestFixedPoint:
    def test_roundtrip(self):
        fmt = FixedPointFormat(3, 8)
        assert from_fixed(to_fixed(1.5, fmt), fmt) == pytest.approx(1.5)
        assert fmt.total_bits() == 11
        assert fmt.scale() == 256

    def test_bounds_checked(self):
        fmt = FixedPointFormat(1, 3)
        with pytest.raises(ValueError):
            to_fixed(4.0, fmt)
        with pytest.raises(ValueError):
            to_fixed(-1.0, fmt)
        with pytest.raises(ValueError):
            from_fixed(1 << 10, fmt)
        with pytest.raises(ValueError):
            FixedPointFormat(-1, 3)
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)

    def test_truncated_multiply_matches_paper_operator(self):
        # Q3.4 times Q3.4 truncated back to Q3.4.
        fmt = FixedPointFormat(3, 4)
        u = to_fixed(1.5, fmt)
        v = to_fixed(2.25, fmt)
        product = truncated_multiply(u, fmt, v, fmt, fmt)
        assert from_fixed(product, fmt) == pytest.approx(3.375, abs=1 / 16)

    @given(st.integers(min_value=0, max_value=127), st.integers(min_value=0, max_value=127))
    @settings(max_examples=100)
    def test_truncation_never_rounds_up(self, u, v):
        fmt = FixedPointFormat(3, 4)
        product = truncated_multiply(u, fmt, v, fmt, fmt)
        exact = (u / 16) * (v / 16)
        if exact <= fmt.max_value():
            assert from_fixed(product, fmt) <= exact + 1e-12
