"""Unit tests for Toffoli gates and reversible circuits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate


class TestToffoliGate:
    def test_not_gate(self):
        gate = ToffoliGate.x(2)
        assert gate.is_not()
        assert gate.apply(0b000) == 0b100
        assert gate.apply(0b100) == 0b000

    def test_cnot_positive_and_negative(self):
        positive = ToffoliGate.cnot(0, 1)
        assert positive.apply(0b01) == 0b11
        assert positive.apply(0b00) == 0b00
        negative = ToffoliGate.cnot(0, 1, polarity=False)
        assert negative.apply(0b00) == 0b10
        assert negative.apply(0b01) == 0b01

    def test_toffoli_semantics(self):
        gate = ToffoliGate.toffoli(0, 1, 2)
        assert gate.apply(0b011) == 0b111
        assert gate.apply(0b111) == 0b011
        assert gate.apply(0b001) == 0b001

    def test_mixed_polarity(self):
        gate = ToffoliGate.from_lines([0], [1], 2)
        # Triggers when line0=1 and line1=0.
        assert gate.apply(0b001) == 0b101
        assert gate.apply(0b011) == 0b011

    def test_validation(self):
        with pytest.raises(ValueError):
            ToffoliGate(((0, True),), 0)
        with pytest.raises(ValueError):
            ToffoliGate(((-1, True),), 0)

    def test_contradictory_controls_never_trigger(self):
        # Both polarities on one line are representable (rewriting passes
        # produce them) and make the gate a provable identity.
        gate = ToffoliGate(((0, True), (0, False)), 1)
        assert gate.is_unsatisfiable()
        for state in range(4):
            assert gate.apply(state) == state
        with pytest.raises(ValueError):
            gate.normalized()

    def test_duplicate_controls_normalize(self):
        gate = ToffoliGate(((0, True), (0, True)), 1)
        assert gate.has_duplicate_controls()
        assert not gate.is_unsatisfiable()
        normalized = gate.normalized()
        assert normalized.controls == ((0, True),)
        for state in range(4):
            assert gate.apply(state) == normalized.apply(state)

    @given(st.integers(min_value=0, max_value=255))
    def test_involution(self, state):
        gate = ToffoliGate.from_lines([0, 3], [5], 6)
        assert gate.apply(gate.apply(state)) == state

    def test_masks_and_queries(self):
        gate = ToffoliGate.from_lines([1], [3], 0)
        care, polarity = gate.control_masks()
        assert care == 0b1010
        assert polarity == 0b0010
        assert gate.num_controls() == 2
        assert gate.positive_controls() == (1,)
        assert gate.negative_controls() == (3,)
        assert gate.max_line() == 3

    def test_remapped(self):
        gate = ToffoliGate.toffoli(0, 1, 2)
        remapped = gate.remapped({0: 5, 1: 6, 2: 7})
        assert remapped.target == 7
        assert set(line for line, _ in remapped.controls) == {5, 6}


class TestReversibleCircuit:
    def build_full_adder_circuit(self):
        """Cuccaro-less toy adder: computes (a, b, 0) -> (a, b, a xor b ... )."""
        circuit = ReversibleCircuit("toy")
        a = circuit.add_input_line(0, "a")
        b = circuit.add_input_line(1, "b")
        out = circuit.add_constant_line(0, "sum")
        circuit.set_output(out, 0)
        circuit.append(ToffoliGate.cnot(a, out))
        circuit.append(ToffoliGate.cnot(b, out))
        return circuit

    def test_line_roles(self):
        circuit = self.build_full_adder_circuit()
        assert circuit.num_lines() == 3
        assert circuit.num_inputs() == 2
        assert circuit.num_outputs() == 1
        assert circuit.input_lines() == {0: 0, 1: 1}
        assert circuit.output_lines() == {0: 2}
        assert circuit.constant_lines() == {2: 0}

    def test_evaluate_xor(self):
        circuit = self.build_full_adder_circuit()
        for x in range(4):
            assert circuit.evaluate(x) == ((x & 1) ^ (x >> 1))

    def test_gate_bounds_checked(self):
        circuit = ReversibleCircuit()
        circuit.add_input_line(0)
        with pytest.raises(ValueError):
            circuit.append(ToffoliGate.cnot(0, 5))

    def test_line_validation(self):
        circuit = ReversibleCircuit()
        with pytest.raises(ValueError):
            circuit.add_line(constant=2)
        with pytest.raises(ValueError):
            circuit.add_line(input_index=0, constant=0)
        with pytest.raises(ValueError):
            circuit.set_output(3, 0)

    def test_histogram_and_max_controls(self):
        circuit = ReversibleCircuit()
        for _ in range(4):
            circuit.add_constant_line(0)
        circuit.append(ToffoliGate.x(0))
        circuit.append(ToffoliGate.cnot(0, 1))
        circuit.append(ToffoliGate.toffoli(0, 1, 2))
        circuit.append(ToffoliGate.from_lines([0, 1, 2], [], 3))
        assert circuit.gate_histogram() == {0: 1, 1: 1, 2: 1, 3: 1}
        assert circuit.max_controls() == 3
        assert circuit.num_gates() == 4

    def test_t_count_models(self):
        circuit = ReversibleCircuit()
        for _ in range(5):
            circuit.add_constant_line(0)
        circuit.append(ToffoliGate.toffoli(0, 1, 2))
        circuit.append(ToffoliGate.from_lines([0, 1, 2, 3], [], 4))
        assert circuit.t_count("barenco") == 7 + 7 * 5
        assert circuit.t_count("rtof") == 7 + (8 * 2 + 7)

    def test_inverse_restores_state(self):
        circuit = self.build_full_adder_circuit()
        inverse = circuit.inverse()
        for x in range(4):
            state = circuit.apply_to_state(circuit.initial_state(x))
            restored = inverse.apply_to_state(state)
            assert restored == circuit.initial_state(x)

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=20)
    def test_permutation_matches_apply(self, state):
        circuit = self.build_full_adder_circuit()
        perm = circuit.to_permutation()
        assert perm[state] == circuit.apply_to_state(state)

    def test_permutation_is_bijection(self):
        circuit = self.build_full_adder_circuit()
        perm = circuit.to_permutation()
        assert sorted(perm.tolist()) == list(range(8))

    def test_copy_independent(self):
        circuit = self.build_full_adder_circuit()
        clone = circuit.copy()
        clone.append(ToffoliGate.x(0))
        assert clone.num_gates() == circuit.num_gates() + 1
