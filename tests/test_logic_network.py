"""Tests for the shared literal encoding and the logic-network protocol."""

import pytest

import repro.logic.aig as aig_module
import repro.logic.xmg as xmg_module
from repro.logic import lits
from repro.logic.aig import Aig
from repro.logic.cuts import cut_truth_table, lut_map
from repro.logic.lits import lit_is_compl, lit_node
from repro.logic.network import (
    LogicNetwork,
    NetworkStats,
    collect_cone,
    cone_truth_table,
    network_cost,
    network_kind,
    network_stats,
    transitive_fanin,
)
from repro.logic.truth_table import tt_mask
from repro.logic.xmg import Xmg
from repro.verify.fuzz import random_aig, random_xmg


def sample_aig():
    aig = Aig("sample")
    a, b, c = aig.add_pi("a"), aig.add_pi("b"), aig.add_pi("c")
    aig.add_po(aig.create_and(aig.create_or(a, b), c), "f")
    return aig


def sample_xmg():
    xmg = Xmg("sample")
    a, b, c = xmg.add_pi("a"), xmg.add_pi("b"), xmg.add_pi("c")
    xmg.add_po(xmg.create_xor(xmg.create_maj(a, b, c), a), "f")
    return xmg


class TestLitsDeduplication:
    def test_aig_reexports_shared_functions(self):
        assert aig_module.make_lit is lits.make_lit
        assert aig_module.lit_node is lits.lit_node
        assert aig_module.lit_is_compl is lits.lit_is_compl
        assert aig_module.lit_not is lits.lit_not
        assert aig_module.lit_not_cond is lits.lit_not_cond

    def test_xmg_reexports_shared_functions(self):
        assert xmg_module.make_lit is lits.make_lit
        assert xmg_module.lit_node is lits.lit_node
        assert xmg_module.lit_is_compl is lits.lit_is_compl
        assert xmg_module.lit_not is lits.lit_not
        assert xmg_module.lit_not_cond is lits.lit_not_cond

    def test_encoding(self):
        assert lits.make_lit(5) == 10
        assert lits.make_lit(5, True) == 11
        assert lits.lit_node(11) == 5
        assert lits.lit_is_compl(11) and not lits.lit_is_compl(10)
        assert lits.lit_not(10) == 11
        assert lits.lit_not_cond(10, False) == 10
        assert lits.lit_not_cond(10, True) == 11


class TestProtocolConformance:
    @pytest.mark.parametrize("factory", [sample_aig, sample_xmg])
    def test_isinstance(self, factory):
        assert isinstance(factory(), LogicNetwork)

    def test_network_kind(self):
        assert network_kind(sample_aig()) == "aig"
        assert network_kind(sample_xmg()) == "xmg"

    def test_network_kind_rejects_non_networks(self):
        with pytest.raises(TypeError):
            network_kind(object())

    def test_uniform_gate_surface_aig(self):
        aig = sample_aig()
        assert aig.num_gates() == aig.num_nodes()
        assert aig.gate_nodes() == aig.and_nodes()
        for node in aig.gate_nodes():
            assert aig.is_gate(node)
        assert not aig.is_gate(0)
        assert not aig.is_gate(lit_node(aig.pis()[0]))

    def test_uniform_gate_surface_xmg(self):
        xmg = sample_xmg()
        assert xmg.num_gates() == xmg.num_maj() + xmg.num_xor()
        for node in xmg.gate_nodes():
            assert xmg.is_gate(node)
        assert not xmg.is_gate(0)

    def test_eval_gate_aig(self):
        aig = sample_aig()
        node = aig.gate_nodes()[0]
        assert aig.eval_gate(node, [0b1100, 0b1010]) == 0b1000

    def test_eval_gate_xmg(self):
        xmg = sample_xmg()
        maj = [n for n in xmg.gate_nodes() if xmg.is_maj(n)][0]
        xor = [n for n in xmg.gate_nodes() if xmg.is_xor(n)][0]
        assert xmg.eval_gate(maj, [0b1100, 0b1010, 0b1111]) == 0b1110
        assert xmg.eval_gate(xor, [0b1100, 0b1010]) == 0b0110

    def test_eval_gate_rejects_non_gates(self):
        xmg = sample_xmg()
        with pytest.raises(ValueError):
            xmg.eval_gate(0, [0, 0])


class TestNetworkStats:
    def test_aig_stats(self):
        stats = network_stats(sample_aig())
        assert stats == NetworkStats(
            kind="aig", num_pis=3, num_pos=1, num_gates=2, depth=2
        )
        assert stats.as_dict() == {"gates": 2, "depth": 2}

    def test_xmg_stats(self):
        stats = network_stats(sample_xmg())
        assert stats.kind == "xmg"
        assert stats.num_maj == 1 and stats.num_xor == 1
        assert stats.as_dict() == {"gates": 2, "depth": 2, "maj": 1, "xor": 1}

    def test_cost_is_lexicographic(self):
        assert network_cost(sample_aig()) == (2, 2)
        assert network_cost(sample_xmg()) == (1, 2, 2)


class TestTraversal:
    @pytest.mark.parametrize(
        "network",
        [random_aig(seed) for seed in range(5)]
        + [random_xmg(seed) for seed in range(5)],
        ids=lambda network: network.name,
    )
    def test_cone_truth_table_matches_node_tables(self, network):
        """Cone extraction agrees with whole-network simulation.

        The cone of any PO root with no stop set reaches primary inputs
        only; its truth table re-indexed through the leaf columns must
        reproduce the root's global truth table on every minterm.
        """
        tables = network.node_truth_tables()
        for po in network.pos():
            root = lit_node(po)
            if not network.is_gate(root):
                continue
            leaves, internal = collect_cone(network, root, set())
            assert internal == sorted(internal)
            assert all(not network.is_gate(leaf) for leaf in leaves)
            truth = cone_truth_table(network, root, leaves, internal)
            for minterm in range(1 << network.num_pis()):
                index = 0
                for j, leaf in enumerate(leaves):
                    if (tables[leaf] >> minterm) & 1:
                        index |= 1 << j
                assert ((truth >> index) & 1) == ((tables[root] >> minterm) & 1)

    def test_constant_fanin_is_not_a_cone_variable(self):
        """XMG cones with constant MAJ operands keep their true arity.

        MAJ(a, b, 0) is how an XMG represents AND; the constant node must
        evaluate as fixed 0 in the cone truth table, not surface as a
        phantom leaf variable.
        """
        xmg = Xmg()
        a, b = xmg.add_pi(), xmg.add_pi()
        or_lit = xmg.create_maj(a, b, Xmg.CONST1)
        xmg.add_po(or_lit)
        root = lit_node(or_lit)
        leaves, internal = collect_cone(xmg, root, set())
        assert leaves == [lit_node(a), lit_node(b)]
        truth = cone_truth_table(xmg, root, leaves, internal)
        assert truth == 0b1110  # OR over exactly two variables

    def test_transitive_fanin(self):
        aig = sample_aig()
        pos_roots = [lit_node(po) for po in aig.pos()]
        fanin = transitive_fanin(aig, pos_roots)
        assert fanin == set(aig.gate_nodes())


class TestGenericCuts:
    @pytest.mark.parametrize("seed", range(6))
    def test_xmg_cut_truth_tables_are_consistent(self, seed):
        """Every LUT of an XMG cover simulates to its recorded function."""
        xmg = random_xmg(seed, num_pis=4, num_gates=14)
        mapping = lut_map(xmg, k=4, selection="area")
        covered = mapping.network
        assert covered.network_type == "xmg"
        tables = covered.node_truth_tables()
        for root, (leaves, truth) in mapping.luts.items():
            for minterm in range(1 << covered.num_pis()):
                index = 0
                for j, leaf in enumerate(leaves):
                    if (tables[leaf] >> minterm) & 1:
                        index |= 1 << j
                assert ((truth >> index) & 1) == (
                    (tables[root] >> minterm) & 1
                ), f"cut of node {root} disagrees on minterm {minterm}"

    def test_cut_truth_table_xmg_maj(self):
        xmg = Xmg()
        a, b, c = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        maj = xmg.create_maj(a, b, c)
        xmg.add_po(maj)
        from repro.logic.cuts import Cut

        cut = Cut(lit_node(maj), tuple(lit_node(x) for x in (a, b, c)))
        truth = cut_truth_table(xmg, cut)
        assert truth == 0b11101000  # MAJ3 truth table

    def test_lut_map_rejects_k_below_gate_arity(self):
        """A 3-fanin MAJ cannot be covered with k=2: loud error, no
        self-referential LUT."""
        xmg = Xmg()
        a, b, c = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        xmg.add_po(xmg.create_maj(a, b, c))
        with pytest.raises(ValueError, match="cannot cover"):
            lut_map(xmg, k=2)
        # k=3 covers it fine.
        assert lut_map(xmg, k=3).num_luts() == 1

    def test_lut_map_k2_still_covers_constant_fanin_majs(self):
        """MAJ(a, b, const) has two real fanins and stays k=2-coverable."""
        xmg = Xmg()
        a, b = xmg.add_pi(), xmg.add_pi()
        xmg.add_po(xmg.create_maj(a, b, Xmg.CONST0))
        assert lut_map(xmg, k=2).num_luts() == 1

    def test_lut_mapping_network_alias(self):
        mapping = lut_map(sample_aig(), k=2)
        assert mapping.network is mapping.aig

    def test_improper_cut_rejected_on_xmg(self):
        from repro.logic.cuts import Cut

        xmg = sample_xmg()
        root = max(xmg.gate_nodes())
        with pytest.raises(ValueError):
            cut_truth_table(xmg, Cut(root, ()))
