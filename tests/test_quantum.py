"""Unit tests for the quantum level: Clifford+T mapping and cost models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit, QuantumGate
from repro.quantum.mapping import map_to_clifford_t, toffoli_clifford_t
from repro.quantum.statevector import Statevector, circuit_permutation, simulate_basis_state
from repro.quantum.tcount import circuit_t_count, mct_t_count, t_count_histogram
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate


class TestQuantumCircuit:
    def test_gate_validation(self):
        with pytest.raises(ValueError):
            QuantumGate("bogus", (0,))
        with pytest.raises(ValueError):
            QuantumGate("cx", (0,))
        with pytest.raises(ValueError):
            QuantumGate("cx", (1, 1))
        with pytest.raises(ValueError):
            QuantumGate("x", (-1,))

    def test_circuit_statistics(self):
        circuit = QuantumCircuit(3)
        circuit.add("h", 0)
        circuit.add("t", 0)
        circuit.add("tdg", 1)
        circuit.add("cx", 0, 1)
        assert circuit.num_gates() == 4
        assert circuit.t_count() == 2
        assert circuit.gate_counts()["cx"] == 1
        assert circuit.t_depth() >= 1

    def test_qubit_bound_checked(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.add("x", 5)


class TestTcountModels:
    def test_small_gates_free(self):
        for model in ("barenco", "rtof"):
            assert mct_t_count(0, model) == 0
            assert mct_t_count(1, model) == 0
            assert mct_t_count(2, model) == 7

    def test_formulas(self):
        assert mct_t_count(3, "barenco") == 21
        assert mct_t_count(5, "barenco") == 49
        assert mct_t_count(3, "rtof") == 15
        assert mct_t_count(5, "rtof") == 31

    def test_rtof_never_exceeds_barenco(self):
        for k in range(0, 30):
            assert mct_t_count(k, "rtof") <= mct_t_count(k, "barenco")

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            mct_t_count(3, "exact")

    def test_circuit_t_count_and_histogram(self):
        circuit = ReversibleCircuit()
        for _ in range(6):
            circuit.add_constant_line(0)
        circuit.append(ToffoliGate.cnot(0, 1))
        circuit.append(ToffoliGate.toffoli(0, 1, 2))
        circuit.append(ToffoliGate.from_lines([0, 1, 2, 3], [], 5))
        assert circuit_t_count(circuit, "rtof") == 0 + 7 + (8 * 2 + 7)
        histogram = t_count_histogram(circuit, "rtof")
        assert histogram[1] == 0 and histogram[2] == 7


class TestCliffordTMapping:
    def test_toffoli_decomposition_t_count(self):
        gates = toffoli_clifford_t(0, 1, 2)
        t_like = sum(1 for g in gates if g.is_t_like())
        assert t_like == 7

    def test_toffoli_decomposition_is_correct(self):
        circuit = QuantumCircuit(3)
        circuit.extend(toffoli_clifford_t(0, 1, 2))
        for basis in range(8):
            expected = basis ^ (1 << 2) if (basis & 0b11) == 0b11 else basis
            assert simulate_basis_state(circuit, basis) == expected

    @pytest.mark.parametrize("num_controls", [0, 1, 2, 3, 4])
    def test_mct_mapping_realizes_gate(self, num_controls):
        rev = ReversibleCircuit()
        for _ in range(num_controls + 1):
            rev.add_constant_line(0)
        gate = ToffoliGate.from_lines(list(range(num_controls)), [], num_controls)
        rev.append(gate)
        quantum = map_to_clifford_t(rev)
        for basis in range(1 << rev.num_lines()):
            # The image must equal the classical gate action and the shared
            # ancilla qubits (if any) must return to zero.
            assert simulate_basis_state(quantum, basis) == gate.apply(basis)

    def test_negative_controls(self):
        rev = ReversibleCircuit()
        for _ in range(3):
            rev.add_constant_line(0)
        gate = ToffoliGate.from_lines([0], [1], 2)
        rev.append(gate)
        quantum = map_to_clifford_t(rev)
        images = list(circuit_permutation(quantum, 3))
        for basis in range(8):
            assert images[basis] == gate.apply(basis)

    def test_explicit_mapping_matches_closed_form_models(self):
        rev = ReversibleCircuit()
        for _ in range(7):
            rev.add_constant_line(0)
        rev.append(ToffoliGate.from_lines([0, 1, 2, 3, 4], [], 6))
        rev.append(ToffoliGate.toffoli(0, 1, 2))
        for model in ("barenco", "rtof"):
            quantum = map_to_clifford_t(rev, model=model)
            assert quantum.t_count() == circuit_t_count(rev, model)
        # rtof is the default model, as everywhere else in the stack.
        assert map_to_clifford_t(rev).t_count() == circuit_t_count(rev, "rtof")

    def test_ancillas_restored(self):
        rev = ReversibleCircuit()
        for _ in range(5):
            rev.add_constant_line(0)
        rev.append(ToffoliGate.from_lines([0, 1, 2, 3], [], 4))
        quantum = map_to_clifford_t(rev)
        # circuit_permutation raises if the shared ancillas do not return to 0.
        images = list(circuit_permutation(quantum, 5))
        assert sorted(images) == list(range(32))


class TestStatevector:
    def test_basis_state_initialisation(self):
        state = Statevector(3, 0b101)
        assert state.probability(0b101) == pytest.approx(1.0)

    def test_hadamard_superposition_rejected_as_basis(self):
        state = Statevector(1)
        state.apply(QuantumGate("h", (0,)))
        with pytest.raises(ValueError):
            state.dominant_basis_state()

    def test_hh_is_identity(self):
        state = Statevector(1, 1)
        state.apply(QuantumGate("h", (0,)))
        state.apply(QuantumGate("h", (0,)))
        assert state.dominant_basis_state() == 1

    def test_cx_and_cz(self):
        state = Statevector(2, 0b01)
        state.apply(QuantumGate("cx", (0, 1)))
        assert state.dominant_basis_state() == 0b11
        state.apply(QuantumGate("cz", (0, 1)))
        assert state.probability(0b11) == pytest.approx(1.0)

    def test_t_s_z_phases_compose(self):
        # T^4 = Z up to global phase; on |1> both give a -1 phase.
        state = Statevector(1, 1)
        for _ in range(4):
            state.apply(QuantumGate("t", (0,)))
        reference = Statevector(1, 1)
        reference.apply(QuantumGate("z", (0,)))
        assert state.amplitudes[1] == pytest.approx(reference.amplitudes[1])

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Statevector(0)
        with pytest.raises(ValueError):
            Statevector(2, 7)
