"""Unit tests for cut enumeration and LUT mapping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig, lit_node, lit_not
from repro.logic.cuts import Cut, cut_truth_table, enumerate_cuts, lut_map


def build_adder_aig(width=4):
    """Ripple-carry adder AIG: 2*width inputs, width+1 outputs."""
    aig = Aig("adder")
    a = [aig.add_pi(f"a{i}") for i in range(width)]
    b = [aig.add_pi(f"b{i}") for i in range(width)]
    carry = Aig.CONST0
    for i in range(width):
        s = aig.create_xor(aig.create_xor(a[i], b[i]), carry)
        carry = aig.create_or(
            aig.create_and(a[i], b[i]),
            aig.create_and(carry, aig.create_xor(a[i], b[i])),
        )
        aig.add_po(s, f"s{i}")
    aig.add_po(carry, "cout")
    return aig


class TestCutEnumeration:
    def test_pi_has_trivial_cut(self):
        aig = Aig()
        a = aig.add_pi()
        cuts = enumerate_cuts(aig, k=4)
        assert cuts[lit_node(a)] == [Cut(lit_node(a), (lit_node(a),))]

    def test_cut_sizes_bounded(self):
        aig = build_adder_aig(3)
        cuts = enumerate_cuts(aig, k=4)
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                assert cut.size() <= 4

    def test_cut_truth_table_of_and(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.create_and(a, b)
        aig.add_po(n)
        cuts = enumerate_cuts(aig, k=2)
        node = lit_node(n)
        non_trivial = [c for c in cuts[node] if c.leaves != (node,)]
        assert non_trivial
        truth = cut_truth_table(aig, non_trivial[0])
        assert truth == 0b1000

    def test_cut_truth_table_respects_complement_edges(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.create_and(lit_not(a), b)
        aig.add_po(n)
        cuts = enumerate_cuts(aig, k=2)
        node = lit_node(n)
        cut = [c for c in cuts[node] if c.leaves != (node,)][0]
        truth = cut_truth_table(aig, cut)
        # Leaves are sorted (a, b); NOT a AND b is minterm where a=0,b=1.
        assert truth == 0b0100


class TestLutMapping:
    def test_every_po_covered(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        for po in mapping.aig.pos():
            node = lit_node(po)
            assert node == 0 or mapping.aig.is_pi(node) or node in mapping.luts

    def test_lut_leaves_are_pis_or_luts(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        for root, (leaves, _) in mapping.luts.items():
            for leaf in leaves:
                assert mapping.aig.is_pi(leaf) or leaf in mapping.luts

    def test_lut_functions_reconstruct_outputs(self):
        aig = build_adder_aig(3)
        mapping = lut_map(aig, k=4)
        mapped_aig = mapping.aig

        # Evaluate the LUT network on every minterm and compare with the AIG.
        for x in range(1 << mapped_aig.num_pis()):
            values = {}
            for i, pi in enumerate(mapped_aig.pis()):
                values[lit_node(pi)] = (x >> i) & 1
            values[0] = 0
            for root in mapping.order:
                leaves, truth = mapping.luts[root]
                index = 0
                for pos, leaf in enumerate(leaves):
                    if values[leaf]:
                        index |= 1 << pos
                values[root] = (truth >> index) & 1
            word = 0
            for j, po in enumerate(mapped_aig.pos()):
                bit = values[lit_node(po)] ^ int(po & 1)
                word |= bit << j
            assert word == mapped_aig.simulate_minterm(x)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=4, deadline=None)
    def test_mapping_num_luts_reasonable(self, width):
        aig = build_adder_aig(width)
        mapping = lut_map(aig, k=4)
        # A k=4 cover never needs more LUTs than AND nodes.
        assert 0 < mapping.num_luts() <= mapping.aig.num_nodes()
