"""Unit tests for cut enumeration and LUT mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig, lit_node, lit_not
from repro.logic.cuts import (
    Cut,
    cut_truth_table,
    cut_truth_table_reference,
    cut_truth_tables,
    enumerate_cuts,
    filter_dominated_cuts,
    lut_map,
)


def build_adder_aig(width=4):
    """Ripple-carry adder AIG: 2*width inputs, width+1 outputs."""
    aig = Aig("adder")
    a = [aig.add_pi(f"a{i}") for i in range(width)]
    b = [aig.add_pi(f"b{i}") for i in range(width)]
    carry = Aig.CONST0
    for i in range(width):
        s = aig.create_xor(aig.create_xor(a[i], b[i]), carry)
        carry = aig.create_or(
            aig.create_and(a[i], b[i]),
            aig.create_and(carry, aig.create_xor(a[i], b[i])),
        )
        aig.add_po(s, f"s{i}")
    aig.add_po(carry, "cout")
    return aig


class TestCutEnumeration:
    def test_pi_has_trivial_cut(self):
        aig = Aig()
        a = aig.add_pi()
        cuts = enumerate_cuts(aig, k=4)
        assert cuts[lit_node(a)] == [Cut(lit_node(a), (lit_node(a),))]

    def test_cut_sizes_bounded(self):
        aig = build_adder_aig(3)
        cuts = enumerate_cuts(aig, k=4)
        for node, node_cuts in cuts.items():
            for cut in node_cuts:
                assert cut.size() <= 4

    def test_cut_truth_table_of_and(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.create_and(a, b)
        aig.add_po(n)
        cuts = enumerate_cuts(aig, k=2)
        node = lit_node(n)
        non_trivial = [c for c in cuts[node] if c.leaves != (node,)]
        assert non_trivial
        truth = cut_truth_table(aig, non_trivial[0])
        assert truth == 0b1000

    def test_cut_truth_table_respects_complement_edges(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.create_and(lit_not(a), b)
        aig.add_po(n)
        cuts = enumerate_cuts(aig, k=2)
        node = lit_node(n)
        cut = [c for c in cuts[node] if c.leaves != (node,)][0]
        truth = cut_truth_table(aig, cut)
        # Leaves are sorted (a, b); NOT a AND b is minterm where a=0,b=1.
        assert truth == 0b0100


class TestCutDominance:
    def test_filter_removes_supersets(self):
        cuts = [
            Cut(9, (1, 2)),
            Cut(9, (1, 2, 3)),  # dominated by {1, 2}
            Cut(9, (2, 4)),
            Cut(9, (1, 4)),
        ]
        kept = filter_dominated_cuts(cuts)
        assert kept == [Cut(9, (1, 2)), Cut(9, (2, 4)), Cut(9, (1, 4))]

    def test_filter_handles_unsorted_input(self):
        # A later, smaller cut must also knock out an earlier superset.
        cuts = [Cut(9, (1, 2, 3)), Cut(9, (1, 3))]
        assert filter_dominated_cuts(cuts) == [Cut(9, (1, 3))]

    def test_filter_deduplicates_equal_leaf_sets(self):
        cuts = [Cut(9, (1, 2)), Cut(9, (1, 2))]
        assert filter_dominated_cuts(cuts) == [Cut(9, (1, 2))]

    def test_filter_keeps_incomparable_cuts(self):
        cuts = [Cut(9, (1, 2)), Cut(9, (3, 4)), Cut(9, (1, 4))]
        assert filter_dominated_cuts(cuts) == cuts

    @pytest.mark.parametrize("selection", ["depth", "area"])
    def test_no_dominated_cut_survives_enumeration(self, selection):
        # A reconvergent structure: cuts of the top node include both
        # {x, y} and leaf sets reaching through them; no kept cut may be a
        # strict superset of another kept cut.
        aig = build_adder_aig(4)
        cuts = enumerate_cuts(aig, k=4, selection=selection)
        for node, node_cuts in cuts.items():
            non_trivial = [c for c in node_cuts if c.leaves != (node,)]
            for cut in non_trivial:
                leaves = set(cut.leaves)
                dominators = [
                    other
                    for other in non_trivial
                    if other is not cut and set(other.leaves) < leaves
                ]
                assert not dominators, (
                    f"node {node}: cut {cut.leaves} dominated by "
                    f"{dominators[0].leaves}"
                )

    def test_dominated_cut_never_survives_pruning_under_pressure(self):
        # With max_cuts = 1 only the best cut survives; it must be the
        # dominating one even though the dominated cut merges first.
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        ab = aig.create_and(a, b)
        top = aig.create_and(ab, a)  # reconverges on a
        aig.add_po(top)
        cuts = enumerate_cuts(aig, k=3, max_cuts=8)
        node = lit_node(top)
        leaf_sets = [set(c.leaves) for c in cuts[node]]
        # {a, ab} is dominated by nothing; {a, b, ab}-style supersets of
        # smaller kept cuts must be gone.
        for leaves in leaf_sets:
            assert not any(
                other < leaves for other in leaf_sets if other is not leaves
            )

    def test_max_cuts_pruning_keeps_priority_order(self):
        aig = build_adder_aig(4)
        for max_cuts in (1, 2, 4):
            cuts = enumerate_cuts(aig, k=4, max_cuts=max_cuts)
            for node in aig.nodes():
                if not aig.is_and(node):
                    continue
                # The kept non-trivial cuts stay in priority order (sorted
                # by size first), so the best cut heads the list.
                sizes = [c.size() for c in cuts[node] if c.leaves != (node,)]
                assert sizes == sorted(sizes)
                assert all(size <= 4 for size in sizes)

    def test_max_cuts_bound_counts_the_trivial_cut(self):
        # Regression: the trivial cut used to be appended *after* the
        # priority truncation, so every gate carried max_cuts + 1 cuts in
        # violation of the documented "at most max_cuts" contract.
        aig = build_adder_aig(4)
        for max_cuts in (1, 2, 4, 8):
            cuts = enumerate_cuts(aig, k=4, max_cuts=max_cuts)
            for node, node_cuts in cuts.items():
                assert len(node_cuts) <= max_cuts, (
                    f"node {node} carries {len(node_cuts)} cuts with "
                    f"max_cuts={max_cuts}"
                )
                if node and not aig.is_pi(node):
                    # The trivial cut survives the bound, in last position.
                    assert node_cuts[-1] == Cut(node, (node,))

    def test_max_cuts_bound_does_not_change_the_best_cut(self):
        # Tightening the bound by one must only drop the lowest-priority
        # non-trivial cut, never reorder the head of the priority list.
        aig = build_adder_aig(4)
        loose = enumerate_cuts(aig, k=4, max_cuts=8)
        for node, node_cuts in enumerate_cuts(aig, k=4, max_cuts=4).items():
            assert node_cuts[0] == loose[node][0]

    def test_max_cuts_must_be_positive(self):
        aig = build_adder_aig(2)
        with pytest.raises(ValueError):
            enumerate_cuts(aig, k=4, max_cuts=0)

    def test_unknown_selection_policy_rejected(self):
        aig = build_adder_aig(2)
        with pytest.raises(ValueError):
            enumerate_cuts(aig, k=4, selection="random")
        with pytest.raises(ValueError):
            lut_map(aig, k=4, selection="random")


class TestCutTruthTableKernel:
    def test_batch_matches_reference_on_all_cuts(self):
        aig = build_adder_aig(4)
        cuts = enumerate_cuts(aig, k=4)
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        assert cut_truth_tables(aig, batch) == [
            cut_truth_table_reference(aig, c) for c in batch
        ]

    def test_single_cut_matches_reference(self):
        aig = build_adder_aig(3)
        cuts = enumerate_cuts(aig, k=3)
        for node_cuts in cuts.values():
            for cut in node_cuts:
                assert cut_truth_table(aig, cut) == cut_truth_table_reference(
                    aig, cut
                )

    def test_batch_handles_trivial_and_constant_cuts(self):
        aig = build_adder_aig(2)
        gate = next(n for n in aig.nodes() if aig.is_and(n))
        batch = [Cut(0, ()), Cut(gate, (gate,))]
        assert cut_truth_tables(aig, batch) == [0, 0b10]

    def test_empty_batch(self):
        assert cut_truth_tables(build_adder_aig(2), []) == []

    def test_improper_cut_still_raises(self):
        aig = build_adder_aig(2)
        top = lit_node(aig.pos()[0])
        with pytest.raises(ValueError):
            cut_truth_table(aig, Cut(top, ()))

    def test_multiword_cut_beyond_six_leaves(self):
        # An 8-leaf cut needs a 256-bit table: four uint64 words per
        # column in the batch kernel.
        aig = Aig()
        pis = [aig.add_pi() for _ in range(8)]
        lit = pis[0]
        for pi in pis[1:]:
            lit = aig.create_and(lit, pi)
        aig.add_po(lit)
        cut = Cut(lit_node(lit), tuple(lit_node(pi) for pi in pis))
        expected = cut_truth_table_reference(aig, cut)
        assert expected == 1 << 255  # AND of 8 inputs
        assert cut_truth_tables(aig, [cut]) == [expected]
        assert cut_truth_table(aig, cut) == expected

    def test_kernel_cache_invalidates_on_growth(self):
        aig = build_adder_aig(2)
        cuts = enumerate_cuts(aig, k=2)
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        first = cut_truth_tables(aig, batch)
        # Growing the network must rebuild the cached kernel, not reuse
        # stale arrays.
        a, b = aig.add_pi(), aig.add_pi()
        new_gate = aig.create_xor(a, b)
        aig.add_po(new_gate)
        new_cut = Cut(lit_node(new_gate), (lit_node(a), lit_node(b)))
        assert cut_truth_tables(aig, batch + [new_cut]) == first + [
            cut_truth_table_reference(aig, new_cut)
        ]


class TestAreaSelection:
    def test_area_mapping_never_needs_more_luts(self):
        aig = build_adder_aig(5)
        for k in (3, 4, 5):
            area = lut_map(aig, k=k, selection="area")
            depth = lut_map(aig, k=k, selection="depth")
            assert area.num_luts() <= depth.num_luts()

    def test_lut_count_shrinks_with_k(self):
        aig = build_adder_aig(5)
        counts = [lut_map(aig, k=k, selection="area").num_luts() for k in (2, 3, 4, 6)]
        assert all(a >= b for a, b in zip(counts, counts[1:])), counts

    def test_area_mapping_reconstructs_outputs(self):
        aig = build_adder_aig(3)
        mapping = lut_map(aig, k=4, selection="area")
        mapped_aig = mapping.aig
        for x in range(1 << mapped_aig.num_pis()):
            values = {0: 0}
            for i, pi in enumerate(mapped_aig.pis()):
                values[lit_node(pi)] = (x >> i) & 1
            for root in mapping.order:
                leaves, truth = mapping.luts[root]
                index = 0
                for pos, leaf in enumerate(leaves):
                    if values[leaf]:
                        index |= 1 << pos
                values[root] = (truth >> index) & 1
            word = 0
            for j, po in enumerate(mapped_aig.pos()):
                bit = values[lit_node(po)] ^ int(po & 1)
                word |= bit << j
            assert word == mapped_aig.simulate_minterm(x)


class TestLutMappingHelpers:
    def test_dependencies_are_lut_roots_only(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        for root in mapping.order:
            for dep in mapping.dependencies(root):
                assert dep in mapping.luts
            leaves, _ = mapping.luts[root]
            pis = [leaf for leaf in leaves if mapping.aig.is_pi(leaf)]
            assert len(pis) + len(mapping.dependencies(root)) == len(leaves)

    def test_lut_cone_is_topological_and_inclusive(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        for po in mapping.aig.pos():
            cone = mapping.lut_cone(lit_node(po))
            seen = set()
            for root in cone:
                assert all(dep in seen for dep in mapping.dependencies(root))
                seen.add(root)
            if lit_node(po) in mapping.luts:
                assert lit_node(po) in cone

    def test_lut_levels_and_depth(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        levels = mapping.lut_levels()
        for root in mapping.order:
            deps = mapping.dependencies(root)
            expected = 1 + max((levels[d] for d in deps), default=-1)
            assert levels[root] == expected
        assert mapping.depth() == 1 + max(levels.values())

    def test_lut_fanout_counts_include_outputs(self):
        aig = build_adder_aig(3)
        mapping = lut_map(aig, k=4)
        counts = mapping.lut_fanout_counts()
        total_dep_edges = sum(
            len(mapping.dependencies(root)) for root in mapping.order
        )
        po_refs = sum(
            1 for po in mapping.aig.pos() if lit_node(po) in mapping.luts
        )
        assert sum(counts.values()) == total_dep_edges + po_refs


class TestLutMapping:
    def test_every_po_covered(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        for po in mapping.aig.pos():
            node = lit_node(po)
            assert node == 0 or mapping.aig.is_pi(node) or node in mapping.luts

    def test_lut_leaves_are_pis_or_luts(self):
        aig = build_adder_aig(4)
        mapping = lut_map(aig, k=4)
        for root, (leaves, _) in mapping.luts.items():
            for leaf in leaves:
                assert mapping.aig.is_pi(leaf) or leaf in mapping.luts

    def test_lut_functions_reconstruct_outputs(self):
        aig = build_adder_aig(3)
        mapping = lut_map(aig, k=4)
        mapped_aig = mapping.aig

        # Evaluate the LUT network on every minterm and compare with the AIG.
        for x in range(1 << mapped_aig.num_pis()):
            values = {}
            for i, pi in enumerate(mapped_aig.pis()):
                values[lit_node(pi)] = (x >> i) & 1
            values[0] = 0
            for root in mapping.order:
                leaves, truth = mapping.luts[root]
                index = 0
                for pos, leaf in enumerate(leaves):
                    if values[leaf]:
                        index |= 1 << pos
                values[root] = (truth >> index) & 1
            word = 0
            for j, po in enumerate(mapped_aig.pos()):
                bit = values[lit_node(po)] ^ int(po & 1)
                word |= bit << j
            assert word == mapped_aig.simulate_minterm(x)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=4, deadline=None)
    def test_mapping_num_luts_reasonable(self, width):
        aig = build_adder_aig(width)
        mapping = lut_map(aig, k=4)
        # A k=4 cover never needs more LUTs than AND nodes.
        assert 0 < mapping.num_luts() <= mapping.aig.num_nodes()
