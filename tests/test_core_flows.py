"""Integration tests for the design flows and design space exploration."""

import pytest

from repro.core.cost import CostReport
from repro.core.explorer import DesignSpaceExplorer, FlowConfiguration
from repro.core.flow import Flow, FlowStage
from repro.core.flows import available_flows, design_source, run_flow
from repro.core.reports import (
    flow_graph_description,
    paper_table,
    ratio_summary,
    side_by_side_table,
)
from repro.hdl.designs import intdiv_reference
from repro.hdl.synthesize import synthesize_reciprocal_design
from repro.reversible.verification import verify_circuit


class TestFlowInfrastructure:
    def test_available_flows(self):
        assert set(available_flows()) == {"symbolic", "esop", "hierarchical", "lut"}

    def test_design_source_errors(self):
        with pytest.raises(ValueError):
            design_source("cordic", 8)

    def test_unknown_flow_rejected(self):
        with pytest.raises(ValueError):
            run_flow("magic", "intdiv", 4)

    def test_flow_requires_circuit(self):
        broken = Flow("broken", [FlowStage("noop", lambda context: None)])
        with pytest.raises(RuntimeError):
            broken.run("intdiv", 4)

    def test_flow_needs_stages(self):
        with pytest.raises(ValueError):
            Flow("empty", [])


class TestSymbolicFlow:
    @pytest.mark.parametrize("design", ["intdiv", "newton"])
    def test_end_to_end(self, design):
        result = run_flow("symbolic", design, 4)
        report = result.report
        assert report.qubits == 2 * 4 - 1  # optimum line count (Table II)
        assert report.verified is True
        assert report.t_count > 0
        assert set(result.stage_runtimes) >= {"frontend", "collapse", "embed", "tbs"}

    def test_in_place_computation(self):
        # The symbolic flow applies the function in place: fewer lines than
        # inputs + outputs.
        result = run_flow("symbolic", "intdiv", 5)
        assert result.report.qubits < 10


class TestEsopFlow:
    @pytest.mark.parametrize("p", [0, 1])
    def test_end_to_end(self, p):
        result = run_flow("esop", "intdiv", 5, p=p)
        assert result.report.verified is True
        if p == 0:
            assert result.report.qubits == 10  # 2n lines as in Table III
        else:
            assert result.report.qubits >= 10
        assert result.report.max_controls <= 5
        assert result.report.extra["esop_terms"] > 0

    def test_newton_design(self):
        result = run_flow("esop", "newton", 4, p=0)
        assert result.report.verified is True


class TestHierarchicalFlow:
    @pytest.mark.parametrize("strategy", ["bennett", "per_output"])
    def test_end_to_end(self, strategy):
        result = run_flow("hierarchical", "intdiv", 4, strategy=strategy)
        assert result.report.verified is True
        assert result.report.max_controls <= 2
        assert result.report.extra["xmg_maj"] > 0

    def test_custom_aig_input(self):
        _, aig = synthesize_reciprocal_design("intdiv", 4)
        result = run_flow("hierarchical", aig, 4)
        assert result.report.verified is True
        assert verify_circuit(result.circuit, aig.to_truth_table())


class TestLutFlow:
    @pytest.mark.parametrize("strategy", ["bennett", "eager", "bounded"])
    def test_end_to_end(self, strategy):
        result = run_flow("lut", "intdiv", 4, k=3, strategy=strategy)
        assert result.report.verified is True
        assert result.report.max_controls <= 3  # controls bounded by k
        assert result.report.extra["num_luts"] > 0
        assert set(result.stage_runtimes) >= {
            "frontend", "lut-map", "pebble", "lut-synthesis", "verify"
        }

    def test_strategies_trade_qubits_for_gates(self):
        bennett = run_flow("lut", "intdiv", 4, k=2, verify=False,
                           strategy="bennett").report
        bounded = run_flow("lut", "intdiv", 4, k=2, verify=False,
                           strategy="bounded", max_pebbles=0.25).report
        assert bounded.qubits < bennett.qubits
        assert bounded.t_count >= bennett.t_count

    def test_custom_aig_input(self):
        _, aig = synthesize_reciprocal_design("intdiv", 4)
        result = run_flow("lut", aig, 4, k=3)
        assert result.report.verified is True

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_flow("lut", "intdiv", 3, verify=False, strategy="sideways")

    def test_tbs_sub_synthesizer(self):
        result = run_flow("lut", "intdiv", 3, k=3, lut_synth="tbs")
        assert result.report.verified is True


class TestFlowTradeOffs:
    """The qualitative orderings the paper's experiments emphasise."""

    @pytest.fixture(scope="class")
    def reports(self):
        n = 5
        return {
            "symbolic": run_flow("symbolic", "intdiv", n).report,
            "esop": run_flow("esop", "intdiv", n, p=0).report,
            "hierarchical": run_flow("hierarchical", "intdiv", n).report,
        }

    def test_symbolic_has_fewest_qubits(self, reports):
        assert reports["symbolic"].qubits <= reports["esop"].qubits
        assert reports["symbolic"].qubits <= reports["hierarchical"].qubits

    def test_symbolic_has_largest_t_count(self, reports):
        assert reports["symbolic"].t_count >= reports["esop"].t_count
        assert reports["symbolic"].t_count >= reports["hierarchical"].t_count

    def test_hierarchical_has_most_qubits(self, reports):
        assert reports["hierarchical"].qubits >= reports["esop"].qubits

    def test_esop_controls_bounded_by_inputs(self, reports):
        assert reports["esop"].max_controls <= 5
        assert reports["symbolic"].max_controls > reports["hierarchical"].max_controls


class TestExplorer:
    def test_explore_and_pareto(self):
        explorer = DesignSpaceExplorer(
            "intdiv",
            4,
            configurations=[
                FlowConfiguration("symbolic"),
                FlowConfiguration("esop", (("p", 0),)),
                FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
            ],
        )
        reports = explorer.explore()
        assert len(reports) == 3
        front = explorer.pareto_front()
        assert front
        # The fewest-qubit and fewest-T points are always on the front.
        labels = {point.configuration for point in front}
        best_qubits = min(reports.items(), key=lambda item: item[1].qubits)[0]
        best_t = min(reports.items(), key=lambda item: item[1].t_count)[0]
        assert best_qubits in labels
        assert best_t in labels
        assert explorer.best_by_qubits().qubits <= explorer.best_by_t_count().qubits

    def test_summary_rows(self):
        explorer = DesignSpaceExplorer(
            "intdiv", 3, configurations=[FlowConfiguration("esop", (("p", 0),))]
        )
        rows = explorer.summary_rows()
        assert len(rows) == 1
        assert rows[0][0] == "esop(p=0)"


class TestReports:
    def build_report(self, n, qubits, t):
        return CostReport("intdiv", "esop", n, qubits, t, 10, 3, 0.5)

    def test_paper_table_contains_rows(self):
        text = paper_table([self.build_report(4, 8, 100), self.build_report(5, 10, 200)])
        assert "qubits" in text and "T-count" in text
        assert "100" in text and "200" in text

    def test_side_by_side(self):
        groups = {
            "INTDIV": [self.build_report(4, 8, 100)],
            "NEWTON": [self.build_report(4, 9, 150)],
        }
        text = side_by_side_table(groups, title="Table")
        assert "INTDIV qubits" in text and "NEWTON T-count" in text

    def test_ratio_summary(self):
        rows = ratio_summary([self.build_report(4, 8, 100)], {4: (16, 50)})
        assert rows == [(4, 0.5, 2.0)]

    def test_flow_graph_description_mentions_all_flows(self):
        text = flow_graph_description()
        for keyword in ("Verilog", "BDD", "ESOP", "XMG", "Clifford+T"):
            assert keyword in text
