"""Direct unit tests for the word-level netlist IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.bitblast import bitblast
from repro.hdl.netlist import WordNetlist


def build_two_input_netlist(width=4):
    netlist = WordNetlist("pair")
    a = netlist.add_input("a", width)
    b = netlist.add_input("b", width)
    return netlist, a, b


class TestConstruction:
    def test_input_and_output_registration(self):
        netlist, a, b = build_two_input_netlist()
        total = netlist.add_binary("add", a, b)
        netlist.add_output("sum", total)
        assert netlist.input_width("a") == 4
        assert netlist.output_width("sum") == 4
        assert netlist.num_operations() == 3
        with pytest.raises(KeyError):
            netlist.input_width("missing")
        with pytest.raises(KeyError):
            netlist.output_width("missing")

    def test_operand_validation(self):
        netlist, a, b = build_two_input_netlist()
        with pytest.raises(ValueError):
            netlist.add_binary("add", a, 99)
        with pytest.raises(ValueError):
            netlist.add_binary("bogus", a, b)
        with pytest.raises(ValueError):
            netlist.add_unary("bogus", a)
        with pytest.raises(ValueError):
            netlist.add_logic_binary("xor", a, b)

    def test_width_mismatch_rejected(self):
        netlist = WordNetlist()
        a = netlist.add_input("a", 4)
        b = netlist.add_input("b", 5)
        with pytest.raises(ValueError):
            netlist.add_binary("add", a, b)
        with pytest.raises(ValueError):
            netlist.add_mux(a, a, b)

    def test_slice_bounds_checked(self):
        netlist = WordNetlist()
        a = netlist.add_input("a", 4)
        with pytest.raises(ValueError):
            netlist.add_slice(a, 2, 4)
        with pytest.raises(ValueError):
            netlist.add_slice(a, -1, 2)

    def test_extend_and_resize(self):
        netlist = WordNetlist()
        a = netlist.add_input("a", 4)
        extended = netlist.add_extend(a, 6)
        assert netlist.width_of(extended) == 6
        assert netlist.add_extend(a, 4) == a  # no-op
        with pytest.raises(ValueError):
            netlist.add_extend(a, 2)
        truncated = netlist.add_resize(a, 2)
        assert netlist.width_of(truncated) == 2

    def test_concat_requires_parts(self):
        netlist = WordNetlist()
        with pytest.raises(ValueError):
            netlist.add_concat([])

    def test_missing_input_value(self):
        netlist, a, b = build_two_input_netlist()
        netlist.add_output("y", netlist.add_binary("xor", a, b))
        with pytest.raises(KeyError):
            netlist.evaluate({"a": 1})


class TestEvaluationSemantics:
    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
    @settings(max_examples=60)
    def test_arithmetic_and_comparisons(self, a_value, b_value):
        netlist, a, b = build_two_input_netlist()
        netlist.add_output("add", netlist.add_binary("add", a, b))
        netlist.add_output("sub", netlist.add_binary("sub", a, b))
        netlist.add_output("mul", netlist.add_binary("mul", a, b))
        netlist.add_output("lt", netlist.add_binary("lt", a, b))
        netlist.add_output("ge", netlist.add_binary("ge", a, b))
        netlist.add_output("eq", netlist.add_binary("eq", a, b))
        out = netlist.evaluate({"a": a_value, "b": b_value})
        assert out["add"] == (a_value + b_value) & 15
        assert out["sub"] == (a_value - b_value) & 15
        assert out["mul"] == (a_value * b_value) & 15
        assert out["lt"] == int(a_value < b_value)
        assert out["ge"] == int(a_value >= b_value)
        assert out["eq"] == int(a_value == b_value)

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=40)
    def test_unary_operations(self, value):
        netlist = WordNetlist()
        a = netlist.add_input("a", 4)
        netlist.add_output("not", netlist.add_unary("not", a))
        netlist.add_output("neg", netlist.add_unary("neg", a))
        netlist.add_output("rand", netlist.add_unary("reduce_and", a))
        netlist.add_output("ror", netlist.add_unary("reduce_or", a))
        netlist.add_output("rxor", netlist.add_unary("reduce_xor", a))
        netlist.add_output("lnot", netlist.add_unary("logic_not", a))
        out = netlist.evaluate({"a": value})
        assert out["not"] == (~value) & 15
        assert out["neg"] == (-value) & 15
        assert out["rand"] == int(value == 15)
        assert out["ror"] == int(value != 0)
        assert out["rxor"] == bin(value).count("1") % 2
        assert out["lnot"] == int(value == 0)

    def test_concat_dynbit_and_mux(self):
        netlist = WordNetlist()
        a = netlist.add_input("a", 4)
        i = netlist.add_input("i", 3)
        s = netlist.add_input("s", 1)
        constant = netlist.add_const(0b10, 2)
        netlist.add_output("cat", netlist.add_concat([constant, a]))  # const is MSB part
        netlist.add_output("bit", netlist.add_dynamic_bit(a, i))
        netlist.add_output("mux", netlist.add_mux(s, a, netlist.add_const(0, 4)))
        out = netlist.evaluate({"a": 0b0110, "i": 2, "s": 1})
        assert out["cat"] == (0b10 << 4) | 0b0110
        assert out["bit"] == 1
        assert out["mux"] == 0b0110
        out = netlist.evaluate({"a": 0b0110, "i": 7, "s": 0})
        assert out["bit"] == 0  # out-of-range dynamic index reads zero
        assert out["mux"] == 0

    def test_division_conventions(self):
        netlist, a, b = build_two_input_netlist()
        netlist.add_output("div", netlist.add_binary("div", a, b))
        netlist.add_output("mod", netlist.add_binary("mod", a, b))
        assert netlist.evaluate({"a": 13, "b": 5}) == {"div": 2, "mod": 3}
        assert netlist.evaluate({"a": 13, "b": 0}) == {"div": 15, "mod": 13}

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=15))
    @settings(max_examples=40)
    def test_shifts(self, value, amount):
        netlist = WordNetlist()
        a = netlist.add_input("a", 8)
        k = netlist.add_input("k", 4)
        netlist.add_output("shl", netlist.add_binary("shl", a, k))
        netlist.add_output("shr", netlist.add_binary("shr", a, k))
        out = netlist.evaluate({"a": value, "k": amount})
        assert out["shl"] == (value << amount) & 0xFF
        assert out["shr"] == value >> amount

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_bitblast_agrees_with_evaluate(self, a_value, b_value):
        netlist = WordNetlist("agree")
        a = netlist.add_input("a", 8)
        b = netlist.add_input("b", 8)
        netlist.add_output("x", netlist.add_binary("xor", a, b))
        netlist.add_output("s", netlist.add_binary("add", a, b))
        netlist.add_output("g", netlist.add_binary("gt", a, b))
        aig = bitblast(netlist)
        expected = netlist.evaluate({"a": a_value, "b": b_value})
        word = aig.simulate_minterm(a_value | (b_value << 8))
        x = word & 0xFF
        s = (word >> 8) & 0xFF
        g = (word >> 16) & 1
        assert {"x": x, "s": s, "g": g} == expected
