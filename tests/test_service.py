"""Tests for the synthesis-as-a-service stack (repro.service).

Covers the pieces bottom-up — metrics quantiles, token buckets, job spec
validation, the worker-pool manager (shared cache, drain and cancel
semantics) — and then the HTTP server end to end over a real socket:
submission, status, chunked ndjson streaming, rate limiting, metrics and
graceful shutdown, asserting the streamed Pareto front equals a direct
:class:`ExplorationEngine` run of the same sweep.
"""

import http.client
import json
import threading
import time

import pytest

from repro.core.cache import ResultCache
from repro.core.explorer import (
    ExplorationEngine,
    FlowConfiguration,
    build_sweep,
    pareto_front_of,
)
from repro.service import (
    JobManager,
    JobSpec,
    RateLimiter,
    ServiceMetrics,
    TokenBucket,
    start_in_thread,
)
from repro.service.jobs import CANCELLED, DONE, ServiceClosed
from repro.service.metrics import LatencyReservoir, quantile

#: A trivially fast design so service tests measure the service, not flows.
BUF = "module buf (input a, output y); assign y = a; endmodule\n"


def buf_payload(**overrides):
    payload = {
        "designs": ["buf"],
        "bitwidths": [1],
        "verilog": BUF,
        "sweeps": ["esop:p=0,1", "symbolic"],
    }
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------------------
# metrics


class TestQuantile:
    def test_nearest_rank_values(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert quantile(samples, 0.50) == 2.0
        assert quantile(samples, 0.95) == 4.0
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 1.0) == 4.0

    def test_empty_and_invalid(self):
        assert quantile([], 0.5) is None
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_invalid_fraction_rejected_even_on_empty_samples(self):
        # Regression: the empty-sample early return used to run before the
        # fraction check, so a freshly started server's empty reservoirs
        # silently accepted out-of-range quantiles.
        with pytest.raises(ValueError):
            quantile([], 1.5)
        with pytest.raises(ValueError):
            quantile([], -0.1)
        assert quantile([], 0.0) is None
        assert quantile([], 1.0) is None

    def test_reservoir_snapshot(self):
        reservoir = LatencyReservoir(maxlen=4)
        for value in (1.0, 2.0, 3.0):
            reservoir.observe(value)
        snapshot = reservoir.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["mean"] == pytest.approx(2.0)
        assert snapshot["p50"] == 2.0
        assert snapshot["p95"] == 3.0

    def test_reservoir_is_bounded_but_count_is_total(self):
        reservoir = LatencyReservoir(maxlen=2)
        for value in range(10):
            reservoir.observe(float(value))
        snapshot = reservoir.snapshot()
        assert snapshot["count"] == 10
        assert snapshot["p50"] == 8.0  # only the last two samples remain

    def test_service_metrics_roundtrip(self):
        metrics = ServiceMetrics()
        metrics.incr("jobs", 2)
        metrics.observe("lat", 1.5)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"jobs": 2}
        assert snapshot["latency"]["lat"]["count"] == 1
        assert metrics.counter("jobs") == 2
        assert metrics.counter("absent") == 0


# ---------------------------------------------------------------------------
# rate limiting


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRateLimit:
    def test_bucket_depletes_and_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.now = 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)

    def test_limiter_is_per_client(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.check("a")
        assert not limiter.check("a")
        assert limiter.check("b")  # a's exhaustion does not affect b

    def test_disabled_limiter_always_passes(self):
        limiter = RateLimiter(None)
        assert not limiter.enabled
        for _ in range(100):
            assert limiter.check("anyone")
        assert limiter.snapshot() == (0, False)

    def test_pruning_bounds_client_table(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=100.0, burst=1, max_clients=4, clock=clock)
        for index in range(4):
            limiter.check(f"client-{index}")
        clock.now = 10.0  # every bucket refills -> idle_and_full -> prunable
        limiter.check("client-new")
        tracked, enabled = limiter.snapshot()
        assert enabled
        assert tracked <= 4


# ---------------------------------------------------------------------------
# job specs


class TestJobSpec:
    def test_from_payload_defaults(self):
        spec = JobSpec.from_payload({})
        assert spec.designs == ("intdiv",)
        assert spec.bitwidths == (4,)
        assert len(spec.configurations) >= 3  # the paper's default sweep

    def test_sweep_strings_expand_like_the_cli(self):
        spec = JobSpec.from_payload(buf_payload())
        assert [c.label() for c in spec.configurations] == [
            "esop(p=0)",
            "esop(p=1)",
            "symbolic",
        ]
        assert len(spec.tasks()) == 3

    def test_explicit_configurations(self):
        spec = JobSpec.from_payload(
            {
                "design": "buf",
                "bitwidth": 1,
                "verilog": BUF,
                "configurations": [
                    {"flow": "esop", "parameters": {"p": 1}},
                    {"flow": "symbolic"},
                ],
            }
        )
        assert [c.label() for c in spec.configurations] == [
            "esop(p=1)",
            "symbolic",
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            {"designs": []},
            {"designs": [1]},
            {"bitwidths": [0]},
            {"bitwidths": [True]},
            {"jobs": 0},
            {"timeout": -1},
            {"verilog": 7},
            {"configurations": [{"parameters": {}}]},
            {"configurations": [{"flow": "esop", "parameters": [1]}]},
            "not an object",
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            JobSpec.from_payload(payload)


# ---------------------------------------------------------------------------
# job manager


def shutdown_manager(manager, **kwargs):
    assert manager.shutdown(timeout=30, **kwargs) is not None


class TestJobManager:
    def test_job_runs_to_done_with_streamed_events(self):
        manager = JobManager(workers=1)
        try:
            job = manager.submit(buf_payload())
            assert job.wait(timeout=30)
            assert job.state == DONE
            assert job.completed == job.num_tasks == 3
            assert job.failed == 0
            events, cursor = job.events_since(0)
            assert cursor == len(events) == 4  # 3 outcomes + done
            assert [e["type"] for e in events] == ["outcome"] * 3 + ["done"]
            # Every event carries the job-so-far Pareto front.
            assert all("pareto" in event for event in events)
            assert events[-1]["summary"]["completed"] == 3
        finally:
            shutdown_manager(manager)

    def test_shared_cache_makes_resubmission_free(self, tmp_path):
        cache = ResultCache(tmp_path)
        manager = JobManager(cache=cache, workers=2)
        try:
            first = manager.submit(buf_payload())
            assert first.wait(timeout=30) and first.state == DONE
            assert first.cached == 0
            second = manager.submit(buf_payload())
            assert second.wait(timeout=30) and second.state == DONE
            assert second.cached == second.num_tasks == 3
            assert cache.counters()["hits"] >= 3
            assert manager.metrics.counter("flows_cached") >= 3
        finally:
            shutdown_manager(manager)

    def test_failures_are_recorded_not_raised(self):
        manager = JobManager(workers=1)
        try:
            job = manager.submit(
                {"designs": ["no_such_design"], "bitwidths": [2]}
            )
            assert job.wait(timeout=30)
            assert job.state == DONE  # the job ran; its configurations failed
            assert job.failed == job.num_tasks
            events, _ = job.events_since(0)
            assert all(
                "error" in event
                for event in events
                if event["type"] == "outcome"
            )
        finally:
            shutdown_manager(manager)

    def test_submit_validation_precedes_job_creation(self):
        manager = JobManager(workers=1)
        try:
            with pytest.raises(ValueError):
                manager.submit({"bitwidths": [-1]})
            assert manager.jobs() == []
        finally:
            shutdown_manager(manager)

    def test_submit_after_shutdown_raises_service_closed(self):
        manager = JobManager(workers=1)
        shutdown_manager(manager)
        assert not manager.accepting
        with pytest.raises(ServiceClosed):
            manager.submit(buf_payload())

    def test_drain_shutdown_completes_queued_jobs(self):
        manager = JobManager(workers=1)
        jobs = [manager.submit(buf_payload()) for _ in range(3)]
        assert manager.shutdown(drain=True, timeout=60)
        for job in jobs:
            assert job.state == DONE
            assert job.completed == job.num_tasks

    def test_non_drain_shutdown_cancels_between_configurations(
        self, monkeypatch
    ):
        import repro.core.explorer as explorer_mod

        release = threading.Event()
        blocked = threading.Event()
        real_execute = explorer_mod._execute_task

        def gated(spec, frontends=None):
            if dict(spec["parameters"]).get("p") == 1:
                blocked.set()
                release.wait(30)
            return real_execute(spec, frontends)

        monkeypatch.setattr(explorer_mod, "_execute_task", gated)
        manager = JobManager(workers=1)
        running = manager.submit(
            buf_payload(sweeps=["esop:p=0,1,2,3"])
        )
        queued = manager.submit(buf_payload())
        assert blocked.wait(30)  # p=0 done, p=1 in flight, p=2/3 pending
        result = {}
        stopper = threading.Thread(
            target=lambda: result.update(
                drained=manager.shutdown(drain=False, timeout=60)
            )
        )
        stopper.start()
        assert manager._cancel_event.wait(30)
        release.set()
        stopper.join(timeout=60)
        assert not stopper.is_alive()
        assert result["drained"]  # every job reached a terminal state
        # The running job kept its completed configurations and cancelled
        # the rest; the queued job was cancelled before starting.
        assert running.state == CANCELLED
        assert running.completed == 2  # p=0 and the in-flight p=1
        assert running.cancelled == 2  # p=2, p=3
        assert running.failed == 0
        assert queued.state == CANCELLED
        assert queued.completed == 0

    def test_stats_shape(self, tmp_path):
        manager = JobManager(cache=str(tmp_path), workers=1)
        try:
            job = manager.submit(buf_payload())
            assert job.wait(timeout=30)
            stats = manager.stats()
            assert stats["jobs"]["total"] == 1
            assert stats["jobs"]["done"] == 1
            assert stats["workers"] == 1
            assert stats["accepting"] is True
            assert stats["cache"]["misses"] >= 3
        finally:
            shutdown_manager(manager)


# ---------------------------------------------------------------------------
# HTTP server (end to end over a real socket)


def request(url, method, path, body=None, headers=None, timeout=30):
    host, port = url.split("//", 1)[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers=headers or {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"null")
    finally:
        conn.close()


def stream_events(url, path, timeout=60):
    """Read a chunked ndjson stream to completion (http.client dechunks)."""
    host, port = url.split("//", 1)[1].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=timeout)
    events = []
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        while True:
            line = response.readline()
            if not line:
                break
            events.append(json.loads(line))
    finally:
        conn.close()
    return events


@pytest.fixture()
def service(tmp_path):
    handle = start_in_thread(cache=str(tmp_path / "cache"), workers=2)
    try:
        yield handle
    finally:
        if handle.thread.is_alive():
            handle.request_shutdown()
            assert handle.join(timeout=60)


class TestServer:
    def test_submit_stream_and_pareto_matches_direct_engine(self, service):
        status, accepted = request(service.url, "POST", "/jobs", buf_payload())
        assert status == 202
        assert accepted["num_tasks"] == 3
        events = stream_events(service.url, accepted["stream_url"])
        assert [e["type"] for e in events] == ["outcome"] * 3 + ["done"]
        done = events[-1]
        assert done["state"] == "done"
        assert done["summary"]["completed"] == 3

        # The streamed front must equal a direct engine run of the sweep.
        tasks = build_sweep(
            ["buf"],
            [1],
            [
                FlowConfiguration("esop", (("p", 0),)),
                FlowConfiguration("esop", (("p", 1),)),
                FlowConfiguration("symbolic"),
            ],
            verilog=BUF,
        )
        outcomes = ExplorationEngine(jobs=1, verify="off").run(tasks)
        labelled = {
            o.task.configuration.label(): o.report for o in outcomes if o.ok
        }
        expected = [
            {
                "configuration": point.configuration,
                "aliases": list(point.aliases),
                "qubits": point.qubits,
                "t_count": point.t_count,
            }
            for point in pareto_front_of(labelled)
        ]
        assert done["pareto"] == [
            {"design": "buf", "bitwidth": 1, "points": expected}
        ]

    def test_status_and_listing_endpoints(self, service):
        _, accepted = request(service.url, "POST", "/jobs", buf_payload())
        stream_events(service.url, accepted["stream_url"])  # wait for done
        status, body = request(service.url, "GET", accepted["status_url"])
        assert status == 200
        assert body["state"] == "done"
        assert body["completed"] == 3
        status, listing = request(service.url, "GET", "/jobs")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [accepted["id"]]

    def test_health_and_metrics(self, service):
        status, health = request(service.url, "GET", "/health")
        assert status == 200
        assert health == {"status": "ok", "accepting": True}
        _, accepted = request(service.url, "POST", "/jobs", buf_payload())
        stream_events(service.url, accepted["stream_url"])
        status, metrics = request(service.url, "GET", "/metrics")
        assert status == 200
        assert metrics["counters"]["jobs_submitted"] == 1
        assert metrics["counters"]["jobs_done"] == 1
        assert metrics["jobs"]["done"] == 1
        assert metrics["cache"]["misses"] >= 3
        assert "flow_seconds" in metrics["latency"]
        assert metrics["ratelimit"]["enabled"] is False

    def test_error_statuses(self, service):
        assert request(service.url, "GET", "/nope")[0] == 404
        assert request(service.url, "GET", "/jobs/absent")[0] == 404
        assert request(service.url, "PUT", "/metrics")[0] == 405
        assert request(service.url, "POST", "/jobs", {"designs": []})[0] == 400
        status, body = request(
            service.url, "POST", "/jobs", {"bitwidths": ["x"]}
        )
        assert status == 400 and "error" in body

    def test_rate_limit_rejects_with_429(self, tmp_path):
        handle = start_in_thread(
            workers=1, ratelimiter=RateLimiter(rate=0.001, burst=1)
        )
        try:
            headers = {"X-Client-Id": "greedy"}
            first = request(
                handle.url, "POST", "/jobs", buf_payload(), headers=headers
            )
            assert first[0] == 202
            second = request(
                handle.url, "POST", "/jobs", buf_payload(), headers=headers
            )
            assert second[0] == 429
            # A different client still gets through.
            third = request(
                handle.url,
                "POST",
                "/jobs",
                buf_payload(),
                headers={"X-Client-Id": "patient"},
            )
            assert third[0] == 202
            _, metrics = request(handle.url, "GET", "/metrics")
            assert metrics["counters"]["http_rate_limited"] == 1
            assert metrics["ratelimit"]["enabled"] is True
        finally:
            handle.request_shutdown()
            assert handle.join(timeout=60)

    def test_graceful_shutdown_drains_and_keeps_results(self, service):
        accepted = [
            request(service.url, "POST", "/jobs", buf_payload())[1]
            for _ in range(3)
        ]
        status, body = request(service.url, "POST", "/shutdown", {})
        assert status == 202
        assert body == {"shutting_down": True, "drain": True}
        assert service.join(timeout=60)
        assert service.drained is True
        # No completed result was lost: every job drained to done.
        for entry in accepted:
            job = service.manager.get(entry["id"])
            assert job.state == "done"
            assert job.completed == job.num_tasks
        # And rejected-after-shutdown is the manager's contract:
        with pytest.raises(ServiceClosed):
            service.manager.submit(buf_payload())


# ---------------------------------------------------------------------------
# CLI integration


class TestCli:
    def test_serve_and_submit_parsers(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "0", "--workers", "3", "--rate", "2.5"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.workers == 3 and args.rate == 2.5
        args = parser.parse_args(
            [
                "submit",
                "--design",
                "intdiv",
                "-n",
                "2",
                "--sweep",
                "esop:p=0",
                "--no-stream",
            ]
        )
        assert args.command == "submit"
        assert args.sweep == ["esop:p=0"]

    def test_submit_streams_against_live_server(self, capsys):
        from repro.cli import main

        handle = start_in_thread(workers=1)
        try:
            code = main(
                [
                    "submit",
                    "--url",
                    handle.url,
                    "--design",
                    "intdiv",
                    "-n",
                    "2",
                    "--sweep",
                    "esop:p=0,1",
                ]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "submitted job-" in out
            assert "[2/2]" in out
            assert "Pareto front of intdiv(2)" in out
        finally:
            handle.request_shutdown()
            assert handle.join(timeout=60)

    def test_submit_shutdown_flag_stops_server(self):
        from repro.cli import main

        handle = start_in_thread(workers=1)
        assert main(["submit", "--url", handle.url, "--shutdown"]) == 0
        assert handle.join(timeout=60)

    def test_submit_connection_refused_is_reported(self, capsys):
        from repro.cli import main

        code = main(
            ["submit", "--url", "http://127.0.0.1:9", "--design", "intdiv"]
        )
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err
