"""Unit tests for transformation-based synthesis (functional flow)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.designs import intdiv_reference
from repro.hdl.synthesize import synthesize_reciprocal_design
from repro.logic.truth_table import TruthTable
from repro.reversible.embedding import optimum_embedding
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.reversible.tbs import (
    synthesize_permutation_gates,
    transformation_based_synthesis,
)
from repro.reversible.verification import verify_circuit


def apply_gates(gates, state):
    for gate in gates:
        state = gate.apply(state)
    return state


def check_realizes(gates, permutation, num_lines):
    for state in range(1 << num_lines):
        assert apply_gates(gates, state) == permutation[state]


class TestPermutationSynthesis:
    @given(st.integers(min_value=0, max_value=100000), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_random_permutations(self, seed, bidirectional):
        rng = np.random.default_rng(seed)
        num_lines = int(rng.integers(2, 5))
        permutation = rng.permutation(1 << num_lines)
        gates = synthesize_permutation_gates(
            permutation, num_lines, bidirectional=bidirectional
        )
        check_realizes(gates, permutation, num_lines)

    def test_identity_needs_no_gates(self):
        gates = synthesize_permutation_gates(list(range(8)), 3)
        assert gates == []

    def test_swap_of_two_states(self):
        permutation = list(range(8))
        permutation[6], permutation[7] = 7, 6
        gates = synthesize_permutation_gates(permutation, 3)
        check_realizes(gates, permutation, 3)

    def test_not_a_permutation_rejected(self):
        with pytest.raises(ValueError):
            synthesize_permutation_gates([0, 0, 1, 2], 2)

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            synthesize_permutation_gates([0, 1, 2], 2)

    def test_circuit_wrapper(self):
        rng = np.random.default_rng(7)
        permutation = rng.permutation(16)
        circuit = transformation_based_synthesis(permutation, 4)
        assert circuit.num_lines() == 4
        realized = circuit.to_permutation()
        assert np.array_equal(realized, permutation)

    def test_bidirectional_not_worse_much(self):
        rng = np.random.default_rng(3)
        permutation = rng.permutation(32)
        uni = synthesize_permutation_gates(permutation, 5, bidirectional=False)
        bi = synthesize_permutation_gates(permutation, 5, bidirectional=True)
        check_realizes(uni, permutation, 5)
        check_realizes(bi, permutation, 5)


class TestSymbolicTbs:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_reciprocal_from_truth_table(self, n):
        table = TruthTable.from_callable(lambda x: intdiv_reference(n, x), n, n)
        circuit = symbolic_tbs(table)
        assert circuit.num_lines() == 2 * n - 1  # optimum qubit count (Table II)
        result = verify_circuit(circuit, table)
        assert result, result.message

    @pytest.mark.parametrize("design", ["intdiv", "newton"])
    def test_reciprocal_from_aig(self, design):
        n = 4
        _, aig = synthesize_reciprocal_design(design, n)
        circuit = symbolic_tbs(aig)
        result = verify_circuit(circuit, aig.to_truth_table())
        assert result, result.message
        assert circuit.num_lines() <= 2 * n

    def test_from_embedding(self):
        table = TruthTable.from_callable(lambda x: intdiv_reference(3, x), 3, 3)
        embedding = optimum_embedding(table)
        circuit = symbolic_tbs(embedding)
        assert verify_circuit(circuit, table)

    def test_unsupported_spec_type(self):
        with pytest.raises(TypeError):
            symbolic_tbs([1, 2, 3])

    def test_large_toffoli_gates_present(self):
        # Functional synthesis is expected to produce gates with many
        # controls (the cause of the large T-count in Table II).
        table = TruthTable.from_callable(lambda x: intdiv_reference(5, x), 5, 5)
        circuit = symbolic_tbs(table)
        assert circuit.max_controls() >= 5
