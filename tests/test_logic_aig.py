"""Unit tests for the AIG data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig, lit_is_compl, lit_node, lit_not, make_lit


def build_full_adder():
    """Single-bit full adder used by several tests."""
    aig = Aig("full_adder")
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    cin = aig.add_pi("cin")
    s = aig.create_xor(aig.create_xor(a, b), cin)
    cout = aig.create_or(
        aig.create_and(a, b), aig.create_and(cin, aig.create_xor(a, b))
    )
    aig.add_po(s, "sum")
    aig.add_po(cout, "cout")
    return aig


class TestLiterals:
    def test_literal_helpers(self):
        lit = make_lit(5, True)
        assert lit_node(lit) == 5
        assert lit_is_compl(lit)
        assert lit_not(lit) == make_lit(5, False)


class TestConstruction:
    def test_constants(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.create_and(a, Aig.CONST0) == Aig.CONST0
        assert aig.create_and(a, Aig.CONST1) == a
        assert aig.num_nodes() == 0

    def test_idempotence_and_complement(self):
        aig = Aig()
        a = aig.add_pi()
        assert aig.create_and(a, a) == a
        assert aig.create_and(a, lit_not(a)) == Aig.CONST0

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        n1 = aig.create_and(a, b)
        n2 = aig.create_and(b, a)
        assert n1 == n2
        assert aig.num_nodes() == 1

    def test_invalid_literal_rejected(self):
        aig = Aig()
        with pytest.raises(ValueError):
            aig.create_and(100, 0)

    def test_counts_and_names(self):
        aig = build_full_adder()
        assert aig.num_pis() == 3
        assert aig.num_pos() == 2
        assert aig.pi_names() == ["a", "b", "cin"]
        assert aig.po_names() == ["sum", "cout"]
        assert aig.num_nodes() > 0


class TestSemantics:
    def test_full_adder_truth_table(self):
        aig = build_full_adder()
        for x in range(8):
            a, b, cin = x & 1, (x >> 1) & 1, (x >> 2) & 1
            total = a + b + cin
            expected = (total & 1) | ((total >> 1) << 1)
            assert aig.simulate_minterm(x) == expected

    def test_gate_primitives(self):
        aig = Aig()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        aig.add_po(aig.create_or(a, b), "or")
        aig.add_po(aig.create_xor(a, b), "xor")
        aig.add_po(aig.create_xnor(a, b), "xnor")
        aig.add_po(aig.create_nand(a, b), "nand")
        aig.add_po(aig.create_nor(a, b), "nor")
        aig.add_po(aig.create_mux(c, a, b), "mux")
        aig.add_po(aig.create_maj(a, b, c), "maj")
        for x in range(8):
            va, vb, vc = x & 1, (x >> 1) & 1, (x >> 2) & 1
            word = aig.simulate_minterm(x)
            assert (word >> 0) & 1 == (va | vb)
            assert (word >> 1) & 1 == (va ^ vb)
            assert (word >> 2) & 1 == 1 - (va ^ vb)
            assert (word >> 3) & 1 == 1 - (va & vb)
            assert (word >> 4) & 1 == 1 - (va | vb)
            assert (word >> 5) & 1 == (va if vc else vb)
            assert (word >> 6) & 1 == int(va + vb + vc >= 2)

    def test_multi_input_gates(self):
        aig = Aig()
        lits = [aig.add_pi() for _ in range(5)]
        aig.add_po(aig.create_and_multi(lits), "and")
        aig.add_po(aig.create_or_multi(lits), "or")
        aig.add_po(aig.create_xor_multi(lits), "xor")
        for x in range(32):
            bits = [(x >> i) & 1 for i in range(5)]
            word = aig.simulate_minterm(x)
            assert (word >> 0) & 1 == int(all(bits))
            assert (word >> 1) & 1 == int(any(bits))
            assert (word >> 2) & 1 == sum(bits) % 2

    def test_empty_multi_gates(self):
        aig = Aig()
        assert aig.create_and_multi([]) == Aig.CONST1
        assert aig.create_or_multi([]) == Aig.CONST0
        assert aig.create_xor_multi([]) == Aig.CONST0

    def test_truth_table_matches_simulation(self):
        aig = build_full_adder()
        table = aig.to_truth_table()
        for x in range(8):
            assert table.evaluate(x) == aig.simulate_minterm(x)

    def test_simulate_words(self):
        aig = build_full_adder()
        # Pattern bits enumerate all eight minterms.
        patterns = []
        for i in range(3):
            word = 0
            for x in range(8):
                if (x >> i) & 1:
                    word |= 1 << x
            patterns.append(word)
        outputs = aig.simulate_words(patterns, 8)
        table = aig.to_truth_table()
        for j in range(2):
            assert outputs[j] == table.column(j)

    def test_simulate_words_validates_inputs(self):
        aig = build_full_adder()
        with pytest.raises(ValueError):
            aig.simulate_words([0, 0], 8)
        with pytest.raises(ValueError):
            aig.simulate_words([0, 0, 0], 0)


class TestStructure:
    def test_levels_and_depth(self):
        aig = Aig()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        n1 = aig.create_and(a, b)
        n2 = aig.create_and(n1, c)
        aig.add_po(n2)
        assert aig.depth() == 2
        levels = aig.levels()
        assert levels[lit_node(n1)] == 1
        assert levels[lit_node(n2)] == 2

    def test_fanout_counts(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        n = aig.create_and(a, b)
        aig.add_po(n)
        aig.add_po(n)
        counts = aig.fanout_counts()
        assert counts[lit_node(n)] == 2
        assert counts[lit_node(a)] == 1

    def test_cleanup_removes_dangling(self):
        aig = Aig()
        a, b, c = aig.add_pi(), aig.add_pi(), aig.add_pi()
        used = aig.create_and(a, b)
        aig.create_and(a, c)  # dangling
        aig.add_po(used)
        cleaned = aig.cleanup()
        assert cleaned.num_nodes() == 1
        assert cleaned.num_pis() == 3
        for x in range(8):
            assert cleaned.simulate_minterm(x) == aig.simulate_minterm(x)

    def test_copy_is_independent(self):
        aig = build_full_adder()
        clone = aig.copy()
        clone.add_pi("extra")
        assert aig.num_pis() == 3
        assert clone.num_pis() == 4

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=50)
    def test_arbitrary_function_construction(self, func):
        # Build func as a sum of minterms and compare with the truth table.
        aig = Aig()
        lits = [aig.add_pi() for _ in range(4)]
        minterms = []
        for x in range(16):
            if (func >> x) & 1:
                terms = [
                    lits[i] if (x >> i) & 1 else lit_not(lits[i]) for i in range(4)
                ]
                minterms.append(aig.create_and_multi(terms))
        aig.add_po(aig.create_or_multi(minterms))
        assert aig.to_truth_table().column(0) == func
