"""Unit tests for the XMG data structure and AIG-to-XMG mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig
from repro.logic.aig import lit_not as aig_lit_not
from repro.logic.truth_table import tt_mask
from repro.logic.xmg import Xmg, lit_not
from repro.logic.xmg_mapping import aig_to_xmg, synthesize_lut_into_xmg


class TestXmgConstruction:
    def test_maj_simplifications(self):
        xmg = Xmg()
        a, b = xmg.add_pi(), xmg.add_pi()
        assert xmg.create_maj(a, a, b) == a
        assert xmg.create_maj(a, lit_not(a), b) == b
        assert xmg.num_maj() == 0

    def test_and_or_via_constants(self):
        xmg = Xmg()
        a, b = xmg.add_pi(), xmg.add_pi()
        and_lit = xmg.create_and(a, b)
        or_lit = xmg.create_or(a, b)
        xmg.add_po(and_lit, "and")
        xmg.add_po(or_lit, "or")
        for x in range(4):
            va, vb = x & 1, (x >> 1) & 1
            word = xmg.simulate_minterm(x)
            assert (word >> 0) & 1 == (va & vb)
            assert (word >> 1) & 1 == (va | vb)

    def test_xor_semantics_and_complement_canonicity(self):
        xmg = Xmg()
        a, b = xmg.add_pi(), xmg.add_pi()
        x1 = xmg.create_xor(a, b)
        x2 = xmg.create_xor(lit_not(a), b)
        assert x2 == lit_not(x1)
        assert xmg.num_xor() == 1

    def test_xor_constants(self):
        xmg = Xmg()
        a = xmg.add_pi()
        assert xmg.create_xor(a, Xmg.CONST0) == a
        assert xmg.create_xor(a, Xmg.CONST1) == lit_not(a)
        assert xmg.create_xor(a, a) == Xmg.CONST0
        assert xmg.create_xor(a, lit_not(a)) == Xmg.CONST1

    def test_maj_strashing_and_self_duality(self):
        xmg = Xmg()
        a, b, c = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        m1 = xmg.create_maj(a, b, c)
        m2 = xmg.create_maj(c, a, b)
        assert m1 == m2
        m3 = xmg.create_maj(lit_not(a), lit_not(b), lit_not(c))
        assert m3 == lit_not(m1)
        assert xmg.num_maj() == 1

    def test_maj_semantics(self):
        xmg = Xmg()
        a, b, c = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        xmg.add_po(xmg.create_maj(a, b, c))
        for x in range(8):
            bits = [(x >> i) & 1 for i in range(3)]
            assert xmg.simulate_minterm(x) == int(sum(bits) >= 2)

    def test_ite(self):
        xmg = Xmg()
        s, t, e = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        xmg.add_po(xmg.create_ite(s, t, e))
        for x in range(8):
            vs, vt, ve = x & 1, (x >> 1) & 1, (x >> 2) & 1
            assert xmg.simulate_minterm(x) == (vt if vs else ve)

    def test_counts_levels_cleanup(self):
        xmg = Xmg()
        a, b, c = xmg.add_pi(), xmg.add_pi(), xmg.add_pi()
        m = xmg.create_maj(a, b, c)
        x = xmg.create_xor(m, c)
        xmg.create_and(a, b)  # dangling
        xmg.add_po(x)
        assert xmg.num_gates() == 3
        cleaned = xmg.cleanup()
        assert cleaned.num_gates() == 2
        assert cleaned.depth() == 2
        assert cleaned.to_truth_table() == xmg.to_truth_table()

    def test_invalid_literal_rejected(self):
        xmg = Xmg()
        with pytest.raises(ValueError):
            xmg.create_xor(40, 0)


class TestLutSynthesis:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=200)
    def test_lut_resynthesis_correct(self, truth):
        xmg = Xmg()
        leaves = [xmg.add_pi() for _ in range(4)]
        literal = synthesize_lut_into_xmg(xmg, truth, leaves, 4)
        xmg.add_po(literal)
        assert xmg.to_truth_table().column(0) == truth

    def test_parity_needs_no_majority(self):
        xmg = Xmg()
        leaves = [xmg.add_pi() for _ in range(4)]
        parity = 0
        for x in range(16):
            if bin(x).count("1") % 2:
                parity |= 1 << x
        literal = synthesize_lut_into_xmg(xmg, parity, leaves, 4)
        xmg.add_po(literal)
        assert xmg.num_maj() == 0
        assert xmg.num_xor() == 3

    def test_majority_detected_as_single_node(self):
        xmg = Xmg()
        leaves = [xmg.add_pi() for _ in range(3)]
        maj = 0
        for x in range(8):
            if bin(x).count("1") >= 2:
                maj |= 1 << x
        literal = synthesize_lut_into_xmg(xmg, maj, leaves, 3)
        xmg.add_po(literal)
        assert xmg.num_maj() == 1
        assert xmg.num_xor() == 0


class TestAigToXmg:
    def build_adder(self, width):
        aig = Aig("adder")
        a = [aig.add_pi(f"a{i}") for i in range(width)]
        b = [aig.add_pi(f"b{i}") for i in range(width)]
        carry = Aig.CONST0
        for i in range(width):
            s = aig.create_xor(aig.create_xor(a[i], b[i]), carry)
            carry = aig.create_or(
                aig.create_and(a[i], b[i]),
                aig.create_and(carry, aig.create_xor(a[i], b[i])),
            )
            aig.add_po(s, f"s{i}")
        aig.add_po(carry, "cout")
        return aig

    @given(st.integers(min_value=1, max_value=4))
    @settings(max_examples=4, deadline=None)
    def test_adder_mapping_equivalent(self, width):
        aig = self.build_adder(width)
        xmg = aig_to_xmg(aig, k=4)
        assert xmg.to_truth_table() == aig.to_truth_table()

    def test_xor_rich_mapping(self):
        # An adder is XOR-heavy; the XMG must contain XOR nodes.
        aig = self.build_adder(4)
        xmg = aig_to_xmg(aig, k=4)
        assert xmg.num_xor() > 0

    def test_mux_network_equivalent(self):
        aig = Aig("mux")
        s = aig.add_pi("s")
        a = [aig.add_pi(f"a{i}") for i in range(4)]
        for i in range(0, 4, 2):
            aig.add_po(aig.create_mux(s, a[i], a[i + 1]), f"y{i // 2}")
        xmg = aig_to_xmg(aig, k=4)
        assert xmg.to_truth_table() == aig.to_truth_table()

    def test_complemented_outputs(self):
        aig = Aig()
        a, b = aig.add_pi(), aig.add_pi()
        aig.add_po(aig_lit_not(aig.create_and(a, b)), "nand")
        xmg = aig_to_xmg(aig)
        assert xmg.to_truth_table() == aig.to_truth_table()
