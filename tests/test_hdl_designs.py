"""Tests for the INTDIV(n) and NEWTON(n) reciprocal designs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.designs import (
    intdiv_reference,
    intdiv_verilog,
    newton_iterations,
    newton_reference,
    newton_verilog,
    reciprocal_exact,
)
from repro.hdl.synthesize import synthesize_reciprocal_design, synthesize_to_netlist


class TestReferenceModels:
    def test_paper_example(self):
        # Example 1 of the paper: n = 8, x = 22 -> y = 0b00001011.
        assert intdiv_reference(8, 22) == 0b00001011

    def test_intdiv_extremes(self):
        assert intdiv_reference(8, 1) == 0  # 2^8 / 1 overflows into the dropped MSB
        assert intdiv_reference(8, 255) == 1
        assert intdiv_reference(8, 0) == 255  # division-by-zero convention
        assert intdiv_reference(8, 128) == 2

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=1023))
    @settings(max_examples=200)
    def test_intdiv_matches_floor(self, n, x):
        x %= 1 << n
        if x == 0:
            return
        assert intdiv_reference(n, x) == ((1 << n) // x) & ((1 << n) - 1)

    def test_newton_iteration_counts(self):
        assert newton_iterations(8) == 2
        assert newton_iterations(16) == 3
        assert newton_iterations(32) == 4
        assert newton_iterations(64) == 4
        assert newton_iterations(128) == 5

    @given(st.integers(min_value=4, max_value=12), st.integers(min_value=1, max_value=4095))
    @settings(max_examples=300)
    def test_newton_close_to_exact(self, n, x):
        x %= 1 << n
        if x == 0:
            return
        approx = newton_reference(n, x)
        exact = reciprocal_exact(n, x)
        # x = 1 is the non-representable 1.0 case: NEWTON saturates at
        # 0.111...1 (error 1 ulp), which the tolerance below covers.
        assert abs(approx - exact) <= 4.0

    @given(st.integers(min_value=4, max_value=10), st.integers(min_value=2, max_value=1023))
    @settings(max_examples=200)
    def test_newton_close_to_intdiv(self, n, x):
        x %= 1 << n
        if x <= 1:
            return
        assert abs(newton_reference(n, x) - intdiv_reference(n, x)) <= 4

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            intdiv_reference(0, 3)
        with pytest.raises(ValueError):
            newton_reference(0, 3)
        with pytest.raises(ValueError):
            newton_iterations(0)
        with pytest.raises(ValueError):
            reciprocal_exact(4, 0)


class TestGeneratedVerilog:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 8])
    def test_intdiv_netlist_matches_reference(self, n):
        netlist = synthesize_to_netlist(intdiv_verilog(n))
        for x in range(1 << n):
            assert netlist.evaluate({"x": x})["y"] == intdiv_reference(n, x)

    @pytest.mark.parametrize("n", [4, 5, 6, 8])
    def test_newton_netlist_matches_reference(self, n):
        netlist = synthesize_to_netlist(newton_verilog(n))
        for x in range(1 << n):
            assert netlist.evaluate({"x": x})["y"] == newton_reference(n, x)

    @pytest.mark.parametrize("design", ["intdiv", "newton"])
    def test_bitblasted_design_matches_reference(self, design):
        n = 5
        reference = intdiv_reference if design == "intdiv" else newton_reference
        _, aig = synthesize_reciprocal_design(design, n)
        assert aig.num_pis() == n
        assert aig.num_pos() == n
        table = aig.to_truth_table()
        for x in range(1 << n):
            assert table.evaluate(x) == reference(n, x)

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            synthesize_reciprocal_design("cordic", 8)

    def test_generated_source_mentions_parameters(self):
        source = intdiv_verilog(12)
        assert "parameter N = 12" in source
        source = newton_verilog(6)
        assert "parameter N = 6" in source
        assert source.count("Newton iteration") == newton_iterations(6)
