"""Tests for the batch exploration engine: sweeps, parallelism, caching."""

import json

import pytest

from repro.core.cache import ResultCache, cache_key
from repro.core.cost import CostReport
from repro.core.explorer import (
    ConfigurationOutcome,
    DesignSpaceExplorer,
    ExplorationEngine,
    ExplorationTask,
    FlowConfiguration,
    ParameterGrid,
    build_sweep,
    pareto_front_of,
)
from repro.core.flows import frontend_artifacts, run_flow
from repro.core.reports import outcome_table, reports_from_json, reports_to_json
from repro.cli import main, build_parser, parse_sweep_spec

FAST_GRIDS = [
    ParameterGrid("symbolic"),
    ParameterGrid("esop", p=[0, 1]),
    ParameterGrid("hierarchical", strategy=["bennett", "per_output"]),
]


from repro.core.explorer import _execute_task as _real_execute_task


def _exit_worker_on_symbolic(spec):
    """Module-level (picklable) worker stand-in that hard-kills its process."""
    if spec["flow"] == "symbolic":
        import os

        os._exit(3)
    return _real_execute_task(spec)


class TestParameterGrid:
    def test_cartesian_expansion(self):
        grid = ParameterGrid("esop", p=[0, 1, 2])
        labels = [c.label() for c in grid]
        assert labels == ["esop(p=0)", "esop(p=1)", "esop(p=2)"]
        assert len(grid) == 3

    def test_scalar_values_are_fixed(self):
        grid = ParameterGrid("hierarchical", strategy="bennett", lut_size=[3, 4])
        assert len(grid) == 2
        for config in grid:
            assert dict(config.parameters)["strategy"] == "bennett"

    def test_no_parameters(self):
        assert [c.label() for c in ParameterGrid("symbolic")] == ["symbolic"]

    def test_explicit_value_order_preserved(self):
        grid = ParameterGrid("esop", p=[2, 10, 1])
        assert [c.label() for c in grid] == ["esop(p=2)", "esop(p=10)", "esop(p=1)"]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid("esop", p=[])


class TestBuildSweep:
    def test_expands_designs_bitwidths_and_grids(self):
        tasks = build_sweep(["intdiv", "newton"], [3, 4], FAST_GRIDS)
        assert len(tasks) == 2 * 2 * 5
        assert len({t.label() for t in tasks}) == len(tasks)

    def test_accepts_scalars_and_plain_configurations(self):
        tasks = build_sweep("intdiv", 4, [FlowConfiguration("symbolic")])
        assert len(tasks) == 1
        assert tasks[0].label() == "intdiv(4)/symbolic"

    def test_attaches_custom_verilog(self):
        source = "module buf (input a, output y); assign y = a; endmodule\n"
        tasks = build_sweep("buf", 1, [FlowConfiguration("esop")], verilog=source)
        assert tasks[0].source() == source


class TestEngineExecution:
    def test_parallel_matches_serial(self):
        tasks = build_sweep(["intdiv", "newton"], [3, 4], FAST_GRIDS)
        assert len(tasks) >= 20
        serial = ExplorationEngine(jobs=1, verify=False).run(tasks)
        engine = ExplorationEngine(jobs=2, verify=False)
        parallel = engine.run(tasks)
        assert engine.failures == 0
        assert engine.executed == len(tasks)
        assert [o.report.metrics() for o in parallel] == [
            o.report.metrics() for o in serial
        ]

    def test_streaming_results(self):
        tasks = build_sweep("intdiv", 3, FAST_GRIDS)
        seen = []
        engine = ExplorationEngine(jobs=1, verify=False, on_result=seen.append)
        outcomes = list(engine.run_iter(tasks))
        assert len(seen) == len(outcomes) == len(tasks)
        assert all(isinstance(o, ConfigurationOutcome) for o in seen)

    def test_error_isolation(self):
        tasks = build_sweep("intdiv", 3, [FlowConfiguration("esop", (("p", 0),))])
        tasks += build_sweep("no_such_design", 3, [FlowConfiguration("symbolic")])
        tasks += build_sweep("newton", 3, [FlowConfiguration("esop", (("p", 0),))])
        engine = ExplorationEngine(jobs=1, verify=False)
        outcomes = engine.run(tasks)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert engine.failures == 1
        assert "no_such_design" in outcomes[1].error
        assert outcomes[1].report is None

    def test_pool_tasks_do_not_serialize_the_frontend(self):
        # Regression: pool dispatch used to pickle the shared AIG into every
        # task spec.  With the fork-once handoff the per-task payload is just
        # the configuration tuple — a few hundred bytes, not a network.
        tasks = build_sweep("intdiv", 3, FAST_GRIDS)
        engine = ExplorationEngine(jobs=2, verify=False)
        outcomes = engine.run(tasks)
        assert all(o.ok for o in outcomes)
        assert 0 < engine.last_task_payload_bytes < 2048

    def test_serial_runs_report_zero_payload(self):
        tasks = build_sweep("intdiv", 3, FAST_GRIDS)
        engine = ExplorationEngine(jobs=1, verify=False)
        engine.run(tasks)
        assert engine.last_task_payload_bytes == 0

    def test_error_isolation_in_pool(self):
        tasks = build_sweep(["intdiv", "no_such_design"], 3, [
            FlowConfiguration("esop", (("p", 0),)),
        ])
        engine = ExplorationEngine(jobs=2, verify=False)
        outcomes = engine.run(tasks)
        assert sum(o.ok for o in outcomes) == 1
        assert engine.failures == 1

    def test_timeout_captured_as_failure(self):
        tasks = build_sweep("intdiv", 6, [FlowConfiguration("symbolic")])
        engine = ExplorationEngine(jobs=1, verify=False, timeout=1e-3)
        outcomes = engine.run(tasks)
        assert not outcomes[0].ok
        assert "timeout" in outcomes[0].error.lower()

    def test_absurd_timeout_degrades_to_no_guard(self):
        import signal

        handler_before = signal.getsignal(signal.SIGALRM)
        tasks = build_sweep("intdiv", 3, [FlowConfiguration("esop", (("p", 0),))])
        outcomes = ExplorationEngine(jobs=1, verify=False, timeout=1e12).run(tasks)
        assert outcomes[0].ok  # setitimer overflow must not fail the task
        assert signal.getsignal(signal.SIGALRM) is handler_before

    def test_unpicklable_parameter_fails_only_its_task(self):
        tasks = build_sweep("intdiv", 3, [
            FlowConfiguration("esop", (("p", 0), ("hook", lambda: None))),
            FlowConfiguration("esop", (("p", 1),)),
        ])
        engine = ExplorationEngine(jobs=2, verify=False)
        outcomes = engine.run(tasks)
        assert not outcomes[0].ok
        assert outcomes[1].ok  # the healthy pool keeps serving other tasks
        assert engine.failures == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExplorationEngine(jobs=0)

    def test_interleaved_serial_engines_do_not_cross_frontends(self):
        configs = [FlowConfiguration("esop", (("p", 0),)), FlowConfiguration("esop", (("p", 1),))]
        a_tasks = build_sweep("intdiv", 3, configs)
        b_tasks = build_sweep("newton", 3, configs)
        a = ExplorationEngine(jobs=1, verify=True).run_iter(a_tasks)
        b = ExplorationEngine(jobs=1, verify=True).run_iter(b_tasks)
        next(a)
        next(b)  # must not clobber engine A's shared frontend table
        second_a = next(a)
        reference = ExplorationEngine(jobs=1, verify=True).run(a_tasks)
        assert second_a.report.metrics() == reference[1].report.metrics()

    def test_duplicate_task_objects_keep_positions(self):
        task = ExplorationTask("intdiv", 3, FlowConfiguration("esop", (("p", 0),)))
        other = ExplorationTask("intdiv", 3, FlowConfiguration("symbolic"))
        outcomes = ExplorationEngine(jobs=1, verify=False).run([task, other, task])
        assert [o.task.configuration.flow for o in outcomes] == [
            "esop", "symbolic", "esop",
        ]

    def test_dead_worker_does_not_abort_sweep(self, monkeypatch):
        import repro.core.explorer as explorer_module

        monkeypatch.setattr(explorer_module, "_execute_task", _exit_worker_on_symbolic)
        tasks = build_sweep("intdiv", 3, [
            FlowConfiguration("symbolic"),
            FlowConfiguration("esop", (("p", 0),)),
        ])
        engine = ExplorationEngine(jobs=2, verify=False)
        outcomes = engine.run(tasks)  # must not raise BrokenProcessPool
        assert len(outcomes) == 2
        symbolic = next(o for o in outcomes if o.task.configuration.flow == "symbolic")
        assert not symbolic.ok and "worker process died" in symbolic.error
        assert engine.failures >= 1

    def test_none_artifact_does_not_skip_stage(self):
        result = run_flow("esop", "intdiv", 3, verify=False, p=0, aig=None)
        assert result.report.qubits > 0
        assert "frontend" not in result.skipped_stages

    def test_configuration_verilog_wins_over_shared_frontend(self):
        custom = (
            "module intdiv (input [2:0] a, output [2:0] y); assign y = ~a; endmodule\n"
        )
        config = FlowConfiguration("esop", (("p", 0), ("verilog", custom)))
        tasks = build_sweep("intdiv", 3, [config])
        with_sharing = ExplorationEngine(jobs=1, verify=False, share_frontend=True)
        without = ExplorationEngine(jobs=1, verify=False, share_frontend=False)
        shared = with_sharing.run(tasks)[0]
        plain = without.run(tasks)[0]
        assert shared.ok and plain.ok
        assert shared.report.metrics() == plain.report.metrics()
        builtin = ExplorationEngine(jobs=1, verify=False).run(
            build_sweep("intdiv", 3, [FlowConfiguration("esop", (("p", 0),))])
        )[0]
        assert shared.report.t_count != builtin.report.t_count

    def test_shared_frontend_skips_stage(self):
        artifacts = frontend_artifacts("intdiv", 3)
        result = run_flow("esop", "intdiv", 3, verify=False, p=0, **artifacts)
        assert "frontend" in result.skipped_stages
        assert result.stage_runtimes["frontend"] == 0.0
        baseline = run_flow("esop", "intdiv", 3, verify=False, p=0)
        assert not baseline.skipped_stages
        assert result.report.metrics() == baseline.report.metrics()


class TestCaching:
    def test_cache_hit_skips_execution(self, tmp_path):
        tasks = build_sweep("intdiv", [3, 4], FAST_GRIDS)
        first = ExplorationEngine(jobs=1, cache=str(tmp_path), verify=False)
        initial = first.run(tasks)
        assert first.executed == len(tasks)
        assert first.cache_hits == 0

        second = ExplorationEngine(jobs=1, cache=str(tmp_path), verify=False)
        cached = second.run(tasks)
        assert second.executed == 0  # zero flow re-executions
        assert second.cache_hits == len(tasks)
        assert all(o.cached for o in cached)
        assert [o.report.metrics() for o in cached] == [
            o.report.metrics() for o in initial
        ]

    def test_cache_key_is_content_addressed(self):
        base = cache_key("module a;", "esop", (("p", 0),), 4)
        assert base == cache_key("module a;", "esop", {"p": 0}, 4)
        assert base != cache_key("module b;", "esop", (("p", 0),), 4)
        assert base != cache_key("module a;", "esop", (("p", 1),), 4)
        assert base != cache_key("module a;", "symbolic", (("p", 0),), 4)
        assert base != cache_key("module a;", "esop", (("p", 0),), 5)
        assert base != cache_key("module a;", "esop", (("p", 0),), 4, verify=False)
        # two designs sharing one Verilog source must not collide
        assert cache_key("module a;", "esop", (), 4, design="x") != cache_key(
            "module a;", "esop", (), 4, design="y"
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = CostReport("intdiv", "esop", 4, 8, 100, 10, 3, 0.5)
        cache.put("k1", report)
        assert cache.get("k1").metrics() == report.metrics()
        (tmp_path / "k2.json").write_text("not json {")
        assert "k2" not in cache
        assert cache.get("k2") is None
        assert cache.stats() == (1, 1)
        # The corrupt entry is unlinked by the failed get, so it neither
        # counts as an entry nor satisfies membership ever again.
        assert len(cache) == 1
        assert cache.clear() == 1

    def test_report_serialisation_roundtrip(self):
        report = CostReport(
            "intdiv", "esop", 4, 8, 100, 10, 3, 0.5,
            verified=True, extra={"esop_terms": 7},
        )
        assert CostReport.from_dict(report.to_dict()) == report
        assert reports_from_json(reports_to_json([report])) == [report]


class TestParetoDeduplication:
    def build_report(self, flow, qubits, t):
        return CostReport("intdiv", flow, 4, qubits, t, 10, 3, 0.5)

    def test_identical_points_collapse_to_one(self):
        reports = {
            "b": self.build_report("esop", 8, 100),
            "a": self.build_report("esop", 8, 100),
            "c": self.build_report("symbolic", 7, 200),
        }
        front = pareto_front_of(reports)
        assert [(p.configuration, p.qubits, p.t_count) for p in front] == [
            ("c", 7, 200),
            ("a", 8, 100),  # lexicographically smallest duplicate survives
        ]

    def test_collapsed_point_records_its_aliases(self):
        # Regression: distinct strategies landing on the same (qubits,
        # T-count) point used to appear as duplicate front entries (the
        # bounded(0.25)/bounded(0.5) pair); they must collapse to one
        # labeled point carrying the other configurations as aliases.
        reports = {
            "lut(strategy=bounded, max_pebbles=0.25)": self.build_report("lut", 9, 300),
            "lut(strategy=bounded, max_pebbles=0.5)": self.build_report("lut", 9, 300),
            "lut(strategy=eager)": self.build_report("lut", 9, 300),
            "lut(strategy=bennett)": self.build_report("lut", 12, 280),
        }
        front = pareto_front_of(reports)
        assert len(front) == 2
        merged = front[0]
        assert merged.configuration == "lut(strategy=bounded, max_pebbles=0.25)"
        assert merged.aliases == (
            "lut(strategy=bounded, max_pebbles=0.5)",
            "lut(strategy=eager)",
        )
        assert merged.label() == (
            "lut(strategy=bounded, max_pebbles=0.25) "
            "[= lut(strategy=bounded, max_pebbles=0.5), lut(strategy=eager)]"
        )
        solo = front[1]
        assert solo.aliases == ()
        assert solo.label() == "lut(strategy=bennett)"

    def test_dominated_points_removed(self):
        reports = {
            "good": self.build_report("esop", 8, 100),
            "bad": self.build_report("esop", 9, 100),
            "worse": self.build_report("esop", 9, 200),
        }
        front = pareto_front_of(reports)
        assert [p.configuration for p in front] == ["good"]

    def test_explorer_front_deduplicates(self):
        explorer = DesignSpaceExplorer("intdiv", 4, verify=False)
        explorer.reports = {
            "x": self.build_report("esop", 8, 100),
            "y": self.build_report("hierarchical", 8, 100),
        }
        front = explorer.pareto_front()
        assert len(front) == 1


class TestExplorerDelegation:
    def test_explorer_with_jobs_and_cache(self, tmp_path):
        explorer = DesignSpaceExplorer(
            "intdiv", 3, verify=False, jobs=2, cache_dir=str(tmp_path)
        )
        reports = explorer.explore()
        assert len(reports) == 5
        assert not explorer.errors

        warm = DesignSpaceExplorer(
            "intdiv", 3, verify=False, jobs=1, cache_dir=str(tmp_path)
        )
        warm.explore()
        assert warm.engine.executed == 0
        assert warm.engine.cache_hits == 5
        assert {
            label: report.metrics() for label, report in warm.reports.items()
        } == {label: report.metrics() for label, report in reports.items()}

    def test_explorer_captures_errors(self):
        explorer = DesignSpaceExplorer(
            "intdiv",
            3,
            configurations=[
                FlowConfiguration("esop", (("p", 0),)),
                FlowConfiguration("no_such_flow"),
            ],
            verify=False,
        )
        reports = explorer.explore()
        assert "esop(p=0)" in reports
        assert "no_such_flow" in explorer.errors
        assert "unknown flow" in explorer.errors["no_such_flow"]

    def test_all_failures_raise_with_causes_and_do_not_rerun(self):
        explorer = DesignSpaceExplorer(
            "intdiv", 3, configurations=[FlowConfiguration("no_such_flow")],
            verify=False,
        )
        with pytest.raises(RuntimeError, match="no_such_flow"):
            explorer.best_by_qubits()
        # the failed sweep must not silently re-run on the next accessor
        explorer.engine.on_result = lambda outcome: pytest.fail(
            "accessor re-ran the sweep"
        )
        assert explorer.pareto_front() == []
        assert explorer.summary_rows() == []

    def test_retry_clears_stale_errors(self):
        explorer = DesignSpaceExplorer(
            "intdiv", 3, configurations=[FlowConfiguration("esop", (("p", 0),))],
            verify=False,
        )
        explorer.errors = {"esop(p=0)": "stale failure from a previous run"}
        explorer.explore()
        assert explorer.errors == {}


class TestCliExplore:
    def test_sweep_spec_parsing(self):
        grid = parse_sweep_spec("esop:p=0,1,2")
        assert grid.flow == "esop"
        assert len(grid) == 3
        grid = parse_sweep_spec("hierarchical:strategy=bennett,per_output:lut_size=3,4")
        assert len(grid) == 4
        values = {dict(c.parameters)["lut_size"] for c in grid}
        assert values == {3, 4}
        assert len(parse_sweep_spec("symbolic")) == 1

    def test_sweep_spec_errors(self):
        with pytest.raises(ValueError):
            parse_sweep_spec(":p=1")
        with pytest.raises(ValueError):
            parse_sweep_spec("esop:p")
        with pytest.raises(ValueError):
            parse_sweep_spec("esop:p=")
        with pytest.raises(ValueError, match="duplicate"):
            parse_sweep_spec("esop:p=0:p=1")
        with pytest.raises(ValueError, match="reserved"):
            parse_sweep_spec("esop:flow=1")

    def test_explore_flag_parsing(self):
        args = build_parser().parse_args(
            [
                "explore",
                "--designs", "intdiv", "newton",
                "--bitwidths", "3", "4",
                "--sweep", "esop:p=0,1",
                "--jobs", "4",
                "--cache", "/tmp/cache",
                "--timeout", "2.5",
            ]
        )
        assert args.designs == ["intdiv", "newton"]
        assert args.bitwidths == [3, 4]
        assert args.sweep == ["esop:p=0,1"]
        assert args.jobs == 4
        assert str(args.cache) == "/tmp/cache"
        assert args.timeout == 2.5

    def test_explore_defaults_preserved(self):
        args = build_parser().parse_args(["explore"])
        assert args.design == "intdiv"
        assert args.bitwidth == 6
        assert args.jobs == 1
        assert args.cache is None
        assert args.sweep == []

    def test_explore_command_with_sweep_jobs_and_cache(self, tmp_path, capsys):
        argv = [
            "explore",
            "--design", "intdiv",
            "--bitwidths", "3",
            "--sweep", "esop:p=0,1",
            "--jobs", "2",
            "--cache", str(tmp_path / "cache"),
            "--json", str(tmp_path / "reports.json"),
            "--no-verify",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "esop(p=0)" in output and "esop(p=1)" in output
        assert "2 flow(s) executed" in output
        reports = reports_from_json((tmp_path / "reports.json").read_text())
        assert len(reports) == 2

        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "2 hit(s), 0 flow(s) executed" in output

    def test_explore_command_reports_failures_in_exit_code(self, capsys):
        exit_code = main(
            [
                "explore",
                "--designs", "no_such_design",
                "--bitwidths", "3",
                "--sweep", "esop:p=0",
                "--quiet",
                "--no-verify",
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().out


class TestOutcomeTable:
    def test_mixed_outcomes_render(self):
        task_ok = ExplorationTask("intdiv", 4, FlowConfiguration("esop", (("p", 0),)))
        task_bad = ExplorationTask("intdiv", 4, FlowConfiguration("symbolic"))
        report = CostReport("intdiv", "esop", 4, 8, 100, 10, 3, 0.5)
        text = outcome_table(
            [
                ConfigurationOutcome(task_ok, report=report, cached=True),
                ConfigurationOutcome(task_bad, error="boom"),
            ],
            title="sweep",
        )
        assert "cached" in text
        assert "error: boom" in text
