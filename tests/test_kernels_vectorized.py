"""Property tests pinning the vectorised kernels to their big-int oracles.

The cut truth-table kernel (:func:`repro.logic.cuts.cut_truth_tables`), the
packed-word truth-table helpers (:mod:`repro.logic.truth_table`) and the
fast PSDKRO extractor (:func:`repro.logic.esop.psdkro_cubes`) are rewrites
of reference implementations that stay in the tree as oracles.  These tests
cross-check the rewrites against the oracles on *random* inputs — random
truth tables through the cofactor/support helpers, random AIG/XMG cones
through the cut kernel, and XOR-of-cubes reconstruction for PSDKRO — so the
kernels are oracle-pinned, not just golden-pinned on the benchmark designs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig
from repro.logic.cube import Cube
from repro.logic.cuts import (
    Cut,
    cut_truth_table,
    cut_truth_table_reference,
    cut_truth_tables,
    enumerate_cuts,
)
from repro.logic.esop import (
    _WordPsdkroExtractor,
    psdkro_cubes,
    psdkro_cubes_reference,
)
from repro.logic.truth_table import (
    tt_cofactor0,
    tt_cofactor0_words,
    tt_cofactor1,
    tt_cofactor1_words,
    tt_from_words,
    tt_mask,
    tt_support,
    tt_support_words,
    tt_to_words,
    tt_var,
    tt_var_words,
)
from repro.logic.xmg import Xmg


# ---------------------------------------------------------------------------
# random network generators (deterministic per hypothesis example)
# ---------------------------------------------------------------------------

def _random_aig(num_pis, gate_choices):
    """An AIG whose gates pick random (possibly complemented) fanins."""
    aig = Aig("random")
    lits = [aig.add_pi() for _ in range(num_pis)]
    for a_pick, b_pick, a_neg, b_neg in gate_choices:
        a = lits[a_pick % len(lits)] ^ (1 if a_neg else 0)
        b = lits[b_pick % len(lits)] ^ (1 if b_neg else 0)
        lits.append(aig.create_and(a, b))
    aig.add_po(lits[-1])
    return aig


def _random_xmg(num_pis, gate_choices):
    """An XMG mixing MAJ and XOR gates over random complemented fanins."""
    xmg = Xmg("random")
    lits = [xmg.add_pi() for _ in range(num_pis)]
    for use_maj, a_pick, b_pick, c_pick, a_neg, b_neg, c_neg in gate_choices:
        a = lits[a_pick % len(lits)] ^ (1 if a_neg else 0)
        b = lits[b_pick % len(lits)] ^ (1 if b_neg else 0)
        c = lits[c_pick % len(lits)] ^ (1 if c_neg else 0)
        lits.append(
            xmg.create_maj(a, b, c) if use_maj else xmg.create_xor(a, b)
        )
    xmg.add_po(lits[-1])
    return xmg


_AIG_GATES = st.lists(
    st.tuples(
        st.integers(0, 63), st.integers(0, 63), st.booleans(), st.booleans()
    ),
    min_size=1,
    max_size=40,
)

_XMG_GATES = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 63), st.integers(0, 63), st.integers(0, 63),
        st.booleans(), st.booleans(), st.booleans(),
    ),
    min_size=1,
    max_size=30,
)


def _cube_truth_table(cube: Cube, num_vars: int) -> int:
    """Integer truth table of one product term (AND of its literals)."""
    table = tt_mask(num_vars)
    for var in range(num_vars):
        if not (cube.care >> var) & 1:
            continue
        projection = tt_var(var, num_vars)
        if (cube.polarity >> var) & 1:
            table &= projection
        else:
            table &= projection ^ tt_mask(num_vars)
    return table


# ---------------------------------------------------------------------------
# packed-word truth-table helpers vs the big-int reference
# ---------------------------------------------------------------------------

class TestWordHelpers:
    @settings(max_examples=60, deadline=None)
    @given(num_vars=st.integers(0, 9), data=st.data())
    def test_roundtrip_and_cofactors(self, num_vars, data):
        func = data.draw(st.integers(0, tt_mask(num_vars)))
        words = tt_to_words(func, num_vars)
        assert tt_from_words(words, num_vars) == func
        for var in range(num_vars):
            assert tt_from_words(
                tt_cofactor0_words(words, var, num_vars), num_vars
            ) == tt_cofactor0(func, var, num_vars)
            assert tt_from_words(
                tt_cofactor1_words(words, var, num_vars), num_vars
            ) == tt_cofactor1(func, var, num_vars)

    @settings(max_examples=60, deadline=None)
    @given(num_vars=st.integers(0, 9), data=st.data())
    def test_support_matches(self, num_vars, data):
        func = data.draw(st.integers(0, tt_mask(num_vars)))
        words = tt_to_words(func, num_vars)
        assert tt_support_words(words, num_vars) == tt_support(func, num_vars)

    def test_var_projections(self):
        for num_vars in (1, 3, 6, 7, 8, 10):
            for var in range(num_vars):
                assert tt_from_words(
                    tt_var_words(var, num_vars), num_vars
                ) == tt_var(var, num_vars)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            tt_var_words(3, 3)
        words = tt_to_words(0b1010, 2)
        with pytest.raises(ValueError):
            tt_cofactor0_words(words, 2, 2)
        with pytest.raises(ValueError):
            tt_cofactor1_words(words, -1, 2)

    def test_word_layout_is_little_endian(self):
        # Minterm 64 lives in bit 0 of word 1.
        func = 1 << 64
        words = tt_to_words(func, 7)
        assert words.tolist() == [0, 1]


# ---------------------------------------------------------------------------
# cut truth-table kernel vs the protocol cone walk
# ---------------------------------------------------------------------------

class TestCutKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(num_pis=st.integers(2, 6), gates=_AIG_GATES)
    def test_random_aig_cones(self, num_pis, gates):
        aig = _random_aig(num_pis, gates)
        cuts = enumerate_cuts(aig, k=4)
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        reference = [cut_truth_table_reference(aig, c) for c in batch]
        assert cut_truth_tables(aig, batch) == reference
        for cut, expected in zip(batch, reference):
            assert cut_truth_table(aig, cut) == expected

    @settings(max_examples=30, deadline=None)
    @given(num_pis=st.integers(2, 5), gates=_XMG_GATES)
    def test_random_xmg_cones(self, num_pis, gates):
        xmg = _random_xmg(num_pis, gates)
        cuts = enumerate_cuts(xmg, k=4)
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        reference = [cut_truth_table_reference(xmg, c) for c in batch]
        assert cut_truth_tables(xmg, batch) == reference
        for cut, expected in zip(batch, reference):
            assert cut_truth_table(xmg, cut) == expected

    @settings(max_examples=20, deadline=None)
    @given(num_pis=st.integers(7, 9), gates=_AIG_GATES)
    def test_wide_cuts_use_multiword_tables(self, num_pis, gates):
        # k > 6 forces the multi-uint64-word columns of the batch kernel.
        aig = _random_aig(num_pis, gates)
        cuts = enumerate_cuts(aig, k=min(9, num_pis + 1))
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        assert cut_truth_tables(aig, batch) == [
            cut_truth_table_reference(aig, c) for c in batch
        ]

    def test_chunked_batches_match_unchunked(self, monkeypatch):
        # Shrinking the byte budget to nothing forces one chunk per cut;
        # the results must not depend on the chunking boundaries.
        import repro.logic.cuts as cuts_module

        aig = _random_aig(4, [(0, 1, False, True), (2, 3, True, False),
                              (4, 5, False, False), (5, 6, True, True)])
        cuts = enumerate_cuts(aig, k=4)
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        expected = cut_truth_tables(aig, batch)
        monkeypatch.setattr(cuts_module, "_BATCH_BYTES_LIMIT", 1)
        assert cut_truth_tables(aig, batch) == expected

    def test_unknown_network_class_falls_back(self):
        # A network class outside AIG/XMG must still work through the
        # reference walk (the kernel refuses to flatten it).
        class Wrapped:
            network_type = "custom"

            def __init__(self, aig):
                self._aig = aig

            def __getattr__(self, name):
                return getattr(self._aig, name)

        aig = _random_aig(3, [(0, 1, False, True), (2, 1, True, False)])
        wrapped = Wrapped(aig)
        cuts = enumerate_cuts(aig, k=3)
        batch = [c for node_cuts in cuts.values() for c in node_cuts]
        assert cut_truth_tables(wrapped, batch) == [
            cut_truth_table_reference(aig, c) for c in batch
        ]


# ---------------------------------------------------------------------------
# PSDKRO: fast paths vs reference, and XOR-of-cubes reconstruction
# ---------------------------------------------------------------------------

class TestPsdkroProperties:
    @settings(max_examples=80, deadline=None)
    @given(num_vars=st.integers(0, 7), data=st.data())
    def test_fast_matches_reference(self, num_vars, data):
        func = data.draw(st.integers(0, tt_mask(num_vars)))
        assert psdkro_cubes(func, num_vars) == psdkro_cubes_reference(
            func, num_vars
        )

    @settings(max_examples=60, deadline=None)
    @given(num_vars=st.integers(0, 6), data=st.data())
    def test_xor_of_cubes_reconstructs_the_function(self, num_vars, data):
        func = data.draw(st.integers(0, tt_mask(num_vars)))
        table = 0
        for cube in psdkro_cubes(func, num_vars):
            table ^= _cube_truth_table(cube, num_vars)
        assert table == func

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_word_extractor_matches_reference(self, data):
        # The packed-word extractor only routes in for very wide tables;
        # force it on 7/8-variable functions where the reference is cheap.
        num_vars = data.draw(st.integers(7, 8))
        func = data.draw(st.integers(0, tt_mask(num_vars)))
        extractor = _WordPsdkroExtractor(num_vars)
        assert extractor.extract(func) == psdkro_cubes_reference(
            func, num_vars
        )

    def test_word_extractor_on_wide_structured_functions(self):
        # Parity and sparse functions keep the recursion shallow enough to
        # exercise 10-variable word arrays against the reference.
        num_vars = 10
        parity = 0
        for minterm in range(1 << num_vars):
            if bin(minterm).count("1") & 1:
                parity |= 1 << minterm
        sparse = (1 << 5) | (1 << 700) | (1 << 1023)
        extractor = _WordPsdkroExtractor(num_vars)
        for func in (parity, sparse, 0, tt_mask(num_vars)):
            assert extractor.extract(func) == psdkro_cubes_reference(
                func, num_vars
            )

    def test_shared_memo_is_correctness_neutral(self):
        # Two calls with interleaved other work must return identical
        # covers (the memo is keyed on the function, never on call order).
        first = psdkro_cubes(0b0110, 2)
        psdkro_cubes(0b1001, 2)
        assert psdkro_cubes(0b0110, 2) == first
