"""Property tests for the dependency-free SAT layer (:mod:`repro.sat`).

The solver is the oracle the exact engines lean on, so it is itself tested
against the only stronger oracle available: brute-force enumeration.
Seeded random CNFs over at most 12 variables must agree with exhaustive
search on SAT/UNSAT, and every model the solver returns must satisfy every
clause.  The constraint encodings (`at_most_one`, `exactly_one`,
`at_most_k`, `xor_link`) are checked semantically: projected onto the
original variables, the encoded formula must accept exactly the assignments
the cardinality predicate accepts.
"""

import itertools
import random

import pytest

from repro.sat import Cnf, SatResult, Solver, solve
from repro.sat.cnf import _PAIRWISE_LIMIT

SEEDS = range(40)


def random_cnf(seed, max_vars=12):
    """A seeded random 1..3-SAT instance near the phase transition."""
    rng = random.Random(seed)
    num_vars = rng.randint(1, max_vars)
    num_clauses = rng.randint(1, int(4.5 * num_vars))
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, min(3, num_vars))
        variables = rng.sample(range(1, num_vars + 1), width)
        clauses.append(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return num_vars, clauses


def brute_force_sat(num_vars, clauses):
    """Exhaustively decide satisfiability (the reference oracle)."""
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def assert_model_satisfies(model, clauses):
    for clause in clauses:
        assert any(
            model[abs(l)] == (l > 0) for l in clause
        ), f"model violates clause {clause}"


def project_models(cnf, num_original_vars):
    """All assignments of the original variables the encoding accepts.

    Auxiliary (encoding) variables are existentially quantified by solving
    under assumptions for every assignment of the original variables.
    """
    accepted = set()
    for bits in itertools.product([False, True], repeat=num_original_vars):
        assumptions = [
            (i + 1) if value else -(i + 1) for i, value in enumerate(bits)
        ]
        if solve(cnf, assumptions=assumptions).status == "sat":
            accepted.add(bits)
    return accepted


# -- solver vs brute force ---------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_solver_agrees_with_brute_force(seed):
    num_vars, clauses = random_cnf(seed)
    cnf = Cnf(num_vars)
    cnf.add_clauses(clauses)
    result = solve(cnf)
    assert result.status in ("sat", "unsat")
    expected = brute_force_sat(num_vars, clauses)
    assert (result.status == "sat") == expected, (
        f"seed {seed}: solver says {result.status}, "
        f"enumeration says {'sat' if expected else 'unsat'}"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_returned_models_satisfy_all_clauses(seed):
    num_vars, clauses = random_cnf(seed)
    cnf = Cnf(num_vars)
    cnf.add_clauses(clauses)
    result = solve(cnf)
    if result.status == "sat":
        assert result.model is not None
        assert set(result.model) == set(range(1, num_vars + 1))
        assert_model_satisfies(result.model, clauses)
    else:
        assert result.model is None


def test_solver_result_truthiness_and_indexing():
    cnf = Cnf(2)
    cnf.add_clause([1])
    cnf.add_clause([-2])
    result = solve(cnf)
    assert result
    assert result[1] is True
    assert result[2] is False
    unsat = solve_clauses(1, [[1], [-1]])
    assert not unsat
    with pytest.raises(KeyError):
        unsat[1]


def solve_clauses(num_vars, clauses):
    cnf = Cnf(num_vars)
    cnf.add_clauses(clauses)
    return solve(cnf)


# -- assumptions, budgets, degenerate formulas --------------------------------


def test_assumptions_restrict_the_model():
    cnf = Cnf(3)
    cnf.add_clause([1, 2, 3])
    result = solve(cnf, assumptions=[-1, -2])
    assert result.status == "sat"
    assert result[3] is True
    assert result[1] is False and result[2] is False


def test_conflicting_assumptions_are_unsat():
    cnf = Cnf(2)
    cnf.add_clause([1, 2])
    assert solve(cnf, assumptions=[-1, -2]).status == "unsat"
    # The formula itself stays satisfiable.
    assert solve(cnf).status == "sat"


def test_assumption_contradicting_a_unit_clause():
    cnf = Cnf(1)
    cnf.add_clause([1])
    assert solve(cnf, assumptions=[-1]).status == "unsat"


def pigeonhole(holes):
    """holes+1 pigeons into ``holes`` holes — classically hard UNSAT."""
    cnf = Cnf()
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    for pigeon in range(holes + 1):
        cnf.add_clause([var(pigeon, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                cnf.add_clause([-var(p1, h), -var(p2, h)])
    return cnf


def test_conflict_budget_reports_unknown():
    result = solve(pigeonhole(9), conflict_budget=50)
    assert result.status == "unknown"
    assert result.model is None
    assert result.conflicts >= 50


def test_time_budget_reports_unknown():
    result = solve(pigeonhole(11), time_budget=0.2)
    assert result.status == "unknown"
    assert result.runtime >= 0.0


def test_small_pigeonhole_is_unsat():
    result = solve(pigeonhole(4))
    assert result.status == "unsat"
    assert result.conflicts > 0


def test_empty_formula_is_sat():
    assert solve(Cnf()).status == "sat"
    result = solve(Cnf(3))
    assert result.status == "sat"
    assert set(result.model) == {1, 2, 3}


def test_empty_clause_is_unsat_without_search():
    cnf = Cnf(2)
    cnf.add_clause([])
    assert cnf.contradiction
    result = solve(cnf)
    assert result.status == "unsat"
    assert result.decisions == 0


def test_solver_reports_search_statistics():
    result = solve(pigeonhole(4))
    assert result.propagations > 0
    assert result.decisions > 0
    assert isinstance(result, SatResult)


def test_solver_class_is_single_shot_but_reusable_interface():
    cnf = Cnf(2)
    cnf.add_clause([1, 2])
    assert Solver(cnf).solve().status == "sat"
    assert Solver(cnf).solve(assumptions=[-1, -2]).status == "unsat"


# -- Cnf construction ---------------------------------------------------------


def test_add_clause_deduplicates_and_drops_tautologies():
    cnf = Cnf(2)
    cnf.add_clause([1, 1, 2])
    assert cnf.clauses == [[1, 2]]
    cnf.add_clause([1, -1])  # tautology: not recorded
    assert cnf.num_clauses() == 1


def test_add_clause_grows_num_vars():
    cnf = Cnf()
    cnf.add_clause([5, -7])
    assert cnf.num_vars == 7


def test_add_clause_rejects_zero_literal():
    with pytest.raises(ValueError):
        Cnf().add_clause([0])


def test_new_vars_are_consecutive():
    cnf = Cnf(2)
    assert cnf.new_vars(3) == [3, 4, 5]
    assert cnf.num_vars == 5


def test_to_dimacs_round_trips_header_and_clauses():
    cnf = Cnf(3)
    cnf.add_clause([1, -2])
    cnf.add_clause([3])
    text = cnf.to_dimacs()
    lines = text.strip().splitlines()
    assert lines[0] == "p cnf 3 2"
    assert lines[1] == "1 -2 0"
    assert lines[2] == "3 0"


# -- constraint encodings (semantic checks) -----------------------------------


@pytest.mark.parametrize("width", [2, 3, _PAIRWISE_LIMIT + 1, 9])
def test_at_most_one_semantics(width):
    cnf = Cnf(width)
    cnf.at_most_one(list(range(1, width + 1)))
    accepted = project_models(cnf, width)
    expected = {
        bits
        for bits in itertools.product([False, True], repeat=width)
        if sum(bits) <= 1
    }
    assert accepted == expected


@pytest.mark.parametrize("width", [1, 3, _PAIRWISE_LIMIT + 2])
def test_exactly_one_semantics(width):
    cnf = Cnf(width)
    cnf.exactly_one(list(range(1, width + 1)))
    accepted = project_models(cnf, width)
    expected = {
        bits
        for bits in itertools.product([False, True], repeat=width)
        if sum(bits) == 1
    }
    assert accepted == expected


def test_exactly_one_of_nothing_is_contradictory():
    cnf = Cnf()
    cnf.exactly_one([])
    assert cnf.contradiction
    assert solve(cnf).status == "unsat"


@pytest.mark.parametrize("width,bound", [(4, 0), (4, 2), (6, 3), (7, 1), (5, 5)])
def test_at_most_k_semantics(width, bound):
    cnf = Cnf(width)
    cnf.at_most_k(list(range(1, width + 1)), bound)
    accepted = project_models(cnf, width)
    expected = {
        bits
        for bits in itertools.product([False, True], repeat=width)
        if sum(bits) <= bound
    }
    assert accepted == expected


def test_at_most_k_rejects_negative_bound():
    with pytest.raises(ValueError):
        Cnf(2).at_most_k([1, 2], -1)


def test_at_most_k_with_negative_literals():
    # "at most 1 of {x1, NOT x2, x3}" — encodings must honour polarity.
    cnf = Cnf(3)
    cnf.at_most_k([1, -2, 3], 1)
    accepted = project_models(cnf, 3)
    expected = {
        bits
        for bits in itertools.product([False, True], repeat=3)
        if (bits[0] + (not bits[1]) + bits[2]) <= 1
    }
    assert accepted == expected


def test_xor_link_semantics():
    cnf = Cnf(3)
    cnf.xor_link(3, 1, 2)
    accepted = project_models(cnf, 3)
    expected = {
        bits
        for bits in itertools.product([False, True], repeat=3)
        if bits[2] == (bits[0] ^ bits[1])
    }
    assert accepted == expected


def test_equal_link_semantics():
    cnf = Cnf(2)
    cnf.equal_link(1, -2)
    accepted = project_models(cnf, 2)
    assert accepted == {(False, True), (True, False)}
