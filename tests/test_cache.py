"""Unit tests for the hardened result cache (repro.core.cache).

Pins the three correctness properties the job server depends on:

* cache keys are order-insensitive for structured parameter values
  (regression: ``repr()`` canonicalisation hashed dicts/lists by
  insertion order, and ``sorted()`` over mixed-type pair lists raised),
* membership and retrieval agree for corrupt entries, which are unlinked
  on first access (regression: ``in`` said yes, ``get`` said no, and the
  dead file counted toward ``len``/eviction forever),
* the bounded cache evicts true-LRU under concurrent multi-thread and
  multi-process access without ever surfacing a partial entry.
"""

import json
import multiprocessing
import threading

import pytest

from repro.core.cache import CACHE_FORMAT_VERSION, ResultCache, cache_key
from repro.core.cost import CostReport


def make_report(flow="esop", qubits=8, t_count=100):
    return CostReport("intdiv", flow, 4, qubits, t_count, 10, 3, 0.5)


def key_of(parameters, **overrides):
    kwargs = dict(
        source="module m; endmodule",
        flow="lut",
        bitwidth=4,
        design="intdiv",
    )
    kwargs.update(overrides)
    return cache_key(parameters=parameters, **kwargs)


class TestCanonicalisation:
    def test_dict_valued_parameter_ignores_insertion_order(self):
        # Regression: repr()-based canonicalisation hashed {"a":1,"b":2}
        # and {"b":2,"a":1} to different keys.
        a = key_of({"weights": {"and": 1, "xor": 2}})
        b = key_of({"weights": {"xor": 2, "and": 1}})
        assert a == b

    def test_nested_structures_ignore_order_at_every_level(self):
        a = key_of({"cfg": {"outer": {"x": [1, 2], "y": {"p", "q"}}}})
        b = key_of({"cfg": {"outer": {"y": {"q", "p"}, "x": [1, 2]}}})
        assert a == b

    def test_list_order_is_semantic(self):
        assert key_of({"stages": [1, 2]}) != key_of({"stages": [2, 1]})

    def test_mixed_type_pair_list_does_not_raise(self):
        # Regression: sorted(tuple(parameters)) compared ("p", 0) against
        # ("strategy", "bennett") by value and raised TypeError once names
        # tied — and always put value order into the key.
        key = key_of([("strategy", "bennett"), ("p", 0)])
        assert key == key_of([("p", 0), ("strategy", "bennett")])
        assert key == key_of({"strategy": "bennett", "p": 0})

    def test_duplicate_pair_later_wins_like_dict(self):
        assert key_of([("p", 0), ("p", 2)]) == key_of({"p": 2})

    def test_scalar_types_stay_distinct(self):
        keys = {
            key_of({"p": value}) for value in (1, 1.0, True, "1", None)
        }
        assert len(keys) == 5

    def test_key_depends_on_every_addressed_field(self):
        base = key_of({})
        assert key_of({}, flow="esop") != base
        assert key_of({}, bitwidth=5) != base
        assert key_of({}, design="newton") != base
        assert key_of({}, source="module n; endmodule") != base
        assert key_of({}, cost_model="tpar") != base
        assert key_of({}, verify=False) != base

    def test_verify_spellings_alias(self):
        assert key_of({}, verify=True) == key_of({}, verify="auto")
        assert key_of({}, verify=False) == key_of({}, verify="off")

    def test_format_version_is_seven(self):
        # The canonicalisation change invalidates old keys exactly once.
        assert CACHE_FORMAT_VERSION == 7


class TestCorruptEntries:
    def test_contains_get_len_agree_on_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("good", make_report())
        (tmp_path / "bad.json").write_text("{not json")
        (tmp_path / "worse.json").write_text(json.dumps({"report": {"x": 1}}))
        # Regression: __contains__ returned True for entries get() failed
        # on, and the corrupt file kept counting toward len() forever.
        assert "bad" not in cache
        assert "worse" not in cache
        assert "good" in cache
        assert cache.get("bad") is None
        assert cache.get("worse") is None
        assert not (tmp_path / "bad.json").exists()
        assert not (tmp_path / "worse.json").exists()
        assert len(cache) == 1
        assert cache.clear() == 1

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("][")
        assert cache.get("bad") is None
        assert cache.stats() == (0, 1)

    def test_missing_entry_is_plain_miss_without_unlink_attempt(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        assert "absent" not in cache
        assert cache.stats() == (0, 1)

    def test_roundtrip_preserves_report(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = CostReport(
            "intdiv", "lut", 4, 8, 100, 10, 3, 0.5,
            verified=True, t_depth=7, extra={"pebble_steps": 12.0},
        )
        cache.put("k", report, note="bench")
        assert cache.get("k") == report
        assert cache.stats() == (1, 0)


class TestBoundedCache:
    def test_max_entries_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)

    def test_eviction_is_lru_and_hits_refresh_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        now = 1_000_000_000
        cache.put("a", make_report())
        os_utime(tmp_path / "a.json", now)
        cache.put("b", make_report())
        os_utime(tmp_path / "b.json", now + 10)
        # Touch "a" so "b" becomes the LRU victim.
        assert cache.get("a") is not None
        os_utime(tmp_path / "a.json", now + 20)
        cache.put("c", make_report())
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_just_written_entry_never_evicted(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1)
        cache.put("old", make_report())
        # Make the new entry look ancient; the keep-guard must still win.
        cache.put("new", make_report())
        os_utime(tmp_path / "new.json", 0)
        cache.put("new", make_report())
        assert "new" in cache
        assert len(cache) == 1

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index in range(10):
            cache.put(f"k{index}", make_report())
        assert len(cache) == 10
        assert cache.evictions == 0

    def test_counters_snapshot(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=8)
        cache.put("k", make_report())
        cache.get("k")
        cache.get("absent")
        counters = cache.counters()
        assert counters == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "max_entries": 8,
            "hit_rate": 0.5,
        }

    def test_hit_rate_none_before_any_access(self, tmp_path):
        assert ResultCache(tmp_path).counters()["hit_rate"] is None


def os_utime(path, timestamp):
    import os

    os.utime(path, (timestamp, timestamp))


def _process_worker(directory, key, rounds, barrier, failures):
    """Hammer one shared key: read, rewrite, evict — from a subprocess."""
    try:
        cache = ResultCache(directory, max_entries=4)
        barrier.wait(timeout=30)
        for round_index in range(rounds):
            cache.put(key, make_report(t_count=round_index))
            cache.put(f"filler-{key}-{round_index % 6}", make_report())
            report = cache.get(key)
            # The shared key may have been evicted by a sibling, but a
            # returned report must never be partial/corrupt.
            if report is not None and report.design != "intdiv":
                failures.put(f"partial entry observed: {report!r}")
    except Exception as exc:  # pragma: no cover - failure reporting
        failures.put(f"{type(exc).__name__}: {exc}")


class TestConcurrency:
    def test_threads_share_one_key_without_partial_reads(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=3)
        stop = threading.Event()
        errors = []

        def writer(seed):
            index = 0
            while not stop.is_set():
                cache.put("shared", make_report(t_count=seed * 1000 + index))
                cache.put(f"filler-{seed}-{index % 4}", make_report())
                index += 1

        def reader():
            while not stop.is_set():
                try:
                    report = cache.get("shared")
                except Exception as exc:  # noqa: BLE001 - recorded below
                    errors.append(exc)
                    return
                if report is not None and report.flow != "esop":
                    errors.append(AssertionError(repr(report)))
                    return

        threads = [threading.Thread(target=writer, args=(seed,)) for seed in (1, 2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        # Eviction kept the bound (the in-flight writes allow tiny overshoot
        # only between put() and its _evict(); at rest the bound holds).
        cache.put("final", make_report())
        assert len(cache) <= 3

    def test_processes_share_directory_and_evict_racefully(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        failures = context.Queue()
        barrier = context.Barrier(3)
        workers = [
            context.Process(
                target=_process_worker,
                args=(str(tmp_path), "shared", 25, barrier, failures),
            )
            for _ in range(3)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert failures.empty(), failures.get()
        # Every process enforced max_entries=4; after the dust settles a
        # single put restores the bound regardless of interleaving.
        cache = ResultCache(tmp_path, max_entries=4)
        cache.put("settle", make_report())
        assert len(cache) <= 4
        assert cache.get("settle") is not None
