"""Unit tests for ESOP extraction and minimisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Cube
from repro.logic.esop import (
    EsopCover,
    EsopTerm,
    esop_from_columns,
    esop_from_truth_table,
    minimize_esop,
    psdkro_clear_cache,
    psdkro_cubes,
    psdkro_cubes_reference,
)
from repro.logic.truth_table import TruthTable, tt_mask


def brute_force_check(cover, columns, num_inputs):
    """Check that a cover implements the given output columns exactly."""
    for x in range(1 << num_inputs):
        expected = 0
        for j, column in enumerate(columns):
            if (column >> x) & 1:
                expected |= 1 << j
        assert cover.evaluate(x) == expected


class TestEsopCover:
    def test_single_cube_cover(self):
        cube = Cube.from_string("1-")
        cover = EsopCover(2, 1, [EsopTerm(cube, 1)])
        assert cover.num_terms() == 1
        assert cover.evaluate(0b01) == 1
        assert cover.evaluate(0b10) == 0

    def test_shared_term_counts(self):
        cube = Cube.from_string("11")
        cover = EsopCover(2, 2, [EsopTerm(cube, 0b11)])
        assert cover.shared_terms() == 1
        assert cover.output_cubes(0) == [cube]
        assert cover.output_cubes(1) == [cube]

    def test_rejects_mismatched_cube_width(self):
        with pytest.raises(ValueError):
            EsopCover(3, 1, [EsopTerm(Cube.tautology(2), 1)])

    def test_rejects_extra_outputs(self):
        with pytest.raises(ValueError):
            EsopCover(2, 1, [EsopTerm(Cube.tautology(2), 0b10)])

    def test_zero_output_terms_dropped(self):
        cover = EsopCover(2, 1, [EsopTerm(Cube.tautology(2), 0)])
        assert cover.num_terms() == 0

    def test_to_truth_table_roundtrip(self):
        table = TruthTable.from_callable(lambda x: (x * 3) & 0x7, 3, 3)
        cover = esop_from_truth_table(table)
        assert cover.to_truth_table() == table


class TestEsopExtraction:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=200)
    def test_psdkro_single_output_correct(self, func):
        cover = esop_from_columns([func], 4)
        brute_force_check(cover, [func], 4)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=4
        )
    )
    @settings(max_examples=100)
    def test_psdkro_multi_output_correct(self, columns):
        cover = esop_from_columns(columns, 3)
        brute_force_check(cover, columns, 3)

    def test_constant_functions(self):
        assert esop_from_columns([0], 3).num_terms() == 0
        cover = esop_from_columns([tt_mask(3)], 3)
        assert cover.num_terms() == 1
        assert cover.terms[0].cube == Cube.tautology(3)

    def test_parity_function_is_linear_sized(self):
        # x0 xor x1 xor x2 xor x3 has a 4-cube PSDKRO (one per variable).
        parity = 0
        for x in range(16):
            if bin(x).count("1") % 2:
                parity |= 1 << x
        cover = esop_from_columns([parity], 4)
        assert cover.num_terms() == 4
        assert cover.max_literals() == 1

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_fast_extractor_matches_reference(self, func):
        # psdkro_cubes is a memoised rewrite of the recursive reference
        # extractor; the covers must be cube-for-cube identical.
        assert psdkro_cubes(func, 5) == psdkro_cubes_reference(func, 5)

    def test_clear_cache_is_correctness_neutral(self):
        func = 0b0110_1001
        before = psdkro_cubes(func, 3)
        psdkro_clear_cache()
        assert psdkro_cubes(func, 3) == before

    def test_truth_is_masked_to_num_vars(self):
        # High garbage bits beyond 2^num_vars minterms must be ignored.
        assert psdkro_cubes(0b1111_0110, 2) == psdkro_cubes(0b0110, 2)

    def test_shared_cube_extraction(self):
        # Both outputs equal x0 AND x1: the cube must be shared.
        func = 0b1000
        cover = esop_from_columns([func, func], 2)
        assert cover.num_terms() == 1
        assert cover.shared_terms() == 1


class TestEsopMinimization:
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=3)
    )
    @settings(max_examples=100)
    def test_minimization_preserves_function(self, columns):
        cover = esop_from_columns(columns, 3)
        minimized = minimize_esop(cover)
        brute_force_check(minimized, columns, 3)
        assert minimized.num_terms() <= cover.num_terms() + 1

    def test_duplicate_cubes_cancel(self):
        cube = Cube.from_string("1-")
        cover = EsopCover(2, 1, [EsopTerm(cube, 1), EsopTerm(cube, 1)])
        minimized = minimize_esop(cover)
        assert minimized.num_terms() == 0

    def test_distance_one_cubes_merge(self):
        cover = EsopCover(
            2,
            1,
            [EsopTerm(Cube.from_string("11"), 1), EsopTerm(Cube.from_string("10"), 1)],
        )
        minimized = minimize_esop(cover)
        assert minimized.num_terms() == 1
        assert minimized.terms[0].cube == Cube.from_string("1-")

    def test_duplicate_across_outputs_become_shared(self):
        cube = Cube.from_string("11")
        cover = EsopCover(2, 2, [EsopTerm(cube, 0b01), EsopTerm(cube, 0b10)])
        minimized = minimize_esop(cover)
        assert minimized.num_terms() == 1
        assert minimized.terms[0].outputs == 0b11
