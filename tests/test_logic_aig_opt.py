"""Unit tests for AIG optimisation passes (balance / refactor / scripts)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.aig import Aig, lit_not
from repro.logic.aig_opt import balance, dc2, optimize_script, refactor, resyn2, rewrite


def random_aig(num_inputs, operations, seed_ops):
    """Deterministically build a pseudo-random AIG from a list of op codes."""
    aig = Aig("random")
    literals = [aig.add_pi() for _ in range(num_inputs)]
    for op, i, j, neg in seed_ops:
        a = literals[i % len(literals)]
        b = literals[j % len(literals)]
        if neg & 1:
            a = lit_not(a)
        if neg & 2:
            b = lit_not(b)
        if op % 3 == 0:
            literals.append(aig.create_and(a, b))
        elif op % 3 == 1:
            literals.append(aig.create_or(a, b))
        else:
            literals.append(aig.create_xor(a, b))
    for index, lit in enumerate(literals[-min(4, len(literals)):]):
        aig.add_po(lit, f"f{index}")
    return aig


seed_ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=5,
    max_size=40,
)


def assert_equivalent(original, optimized):
    assert optimized.num_pis() == original.num_pis()
    assert optimized.num_pos() == original.num_pos()
    assert original.to_truth_table() == optimized.to_truth_table()


def build_chain(n=12):
    """A long unbalanced AND chain."""
    aig = Aig("chain")
    literals = [aig.add_pi() for _ in range(n)]
    acc = literals[0]
    for lit in literals[1:]:
        acc = aig.create_and(acc, lit)
    aig.add_po(acc)
    return aig


def build_redundant():
    """A deliberately redundant structure: f = (a AND b) OR (a AND NOT b)."""
    aig = Aig("redundant")
    a, b = aig.add_pi(), aig.add_pi()
    f = aig.create_or(aig.create_and(a, b), aig.create_and(a, lit_not(b)))
    aig.add_po(f)
    return aig


class TestBalance:
    def test_chain_depth_reduced(self):
        aig = build_chain(16)
        balanced = balance(aig)
        assert_equivalent(aig, balanced)
        assert balanced.depth() <= 5  # ceil(log2(16)) + margin
        assert aig.depth() == 15

    @given(seed_ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_balance_preserves_function(self, seed_ops):
        aig = random_aig(4, len(seed_ops), seed_ops)
        assert_equivalent(aig, balance(aig))


class TestRefactor:
    def test_redundancy_removed(self):
        aig = build_redundant()
        optimized = refactor(aig)
        assert_equivalent(aig, optimized)
        # f = a, so no AND nodes should remain.
        assert optimized.num_nodes() == 0

    @given(seed_ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_refactor_preserves_function(self, seed_ops):
        aig = random_aig(4, len(seed_ops), seed_ops)
        assert_equivalent(aig, refactor(aig))

    @given(seed_ops_strategy)
    @settings(max_examples=20, deadline=None)
    def test_rewrite_preserves_function(self, seed_ops):
        aig = random_aig(5, len(seed_ops), seed_ops)
        assert_equivalent(aig, rewrite(aig))

    def test_refactor_never_larger_than_input_on_small_cones(self):
        aig = build_redundant()
        assert refactor(aig).num_nodes() <= aig.cleanup().num_nodes()


class TestScripts:
    @given(seed_ops_strategy)
    @settings(max_examples=15, deadline=None)
    def test_dc2_preserves_function(self, seed_ops):
        aig = random_aig(4, len(seed_ops), seed_ops)
        assert_equivalent(aig, dc2(aig))

    @given(seed_ops_strategy)
    @settings(max_examples=10, deadline=None)
    def test_resyn2_preserves_function(self, seed_ops):
        aig = random_aig(4, len(seed_ops), seed_ops)
        assert_equivalent(aig, resyn2(aig))

    def test_optimize_script_runs_rounds(self):
        aig = build_redundant()
        best = optimize_script(aig, "dc2", rounds=2)
        assert_equivalent(aig, best)
        assert best.num_nodes() <= aig.cleanup().num_nodes()

    def test_optimize_script_unknown_name(self):
        with pytest.raises(ValueError):
            optimize_script(build_redundant(), "does-not-exist")
