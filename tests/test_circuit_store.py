"""Property tests: the columnar gate store agrees with the object path.

The packed :class:`~repro.reversible.gatestore.GateStore` and every
vectorised kernel built on it (T-count, histograms, depth, resource
estimation, the peephole passes, permutation replay, the batched BDD
collapse) must be indistinguishable from the per-gate-object ``*_reference``
oracles — on random cascades including duplicate/unsatisfiable controls and
>64-line (multi-word mask) circuits, and across a pickle round-trip.
"""

import pickle
import random

import numpy as np
import pytest

from repro.logic.aig import Aig
from repro.logic.bdd import BddManager
from repro.logic.collapse import (
    bdd_to_truth_table,
    collapse_to_bdd,
    collapse_to_bdd_reference,
)
from repro.opt.targets import reversible_depth, reversible_depth_reference
from repro.quantum.circuit import SUPPORTED_GATES, QuantumCircuit
from repro.quantum.resources import (
    estimate_resources,
    estimate_resources_reference,
)
from repro.quantum.tcount import (
    circuit_t_count,
    circuit_t_count_reference,
    t_count_histogram,
    t_count_histogram_reference,
)
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.reversible.gatestore import GateStore, popcount_words
from repro.reversible.optimize import (
    cancel_adjacent_gates,
    cancel_adjacent_gates_reference,
    merge_not_gates,
    merge_not_gates_reference,
    optimize_circuit,
    remove_trivial_gates,
    remove_trivial_gates_reference,
)


def _random_circuit(rng, num_lines, num_gates, messy=True):
    """A random cascade; ``messy`` adds duplicate and unsatisfiable controls."""
    circuit = ReversibleCircuit()
    for line in range(num_lines):
        circuit.add_line(f"l{line}")
    for _ in range(num_gates):
        arity = rng.randint(0, min(4, num_lines - 1))
        lines = rng.sample(range(num_lines), arity + 1)
        target = lines[-1]
        controls = [(line, rng.random() < 0.7) for line in lines[:-1]]
        if messy and controls and rng.random() < 0.25:
            line, positive = controls[0]
            # Same polarity duplicates a control; flipped makes it unsatisfiable.
            controls.append((line, positive if rng.random() < 0.5 else not positive))
        if rng.random() < 0.5:
            controls.sort()
        circuit.append(ToffoliGate(tuple(controls), target))
    return circuit


def _circuit_cases():
    rng = random.Random(1234)
    cases = []
    for _ in range(25):
        cases.append(_random_circuit(rng, rng.randint(2, 7), rng.randint(0, 50)))
    # Multi-word masks: >64 lines forces the W > 1 packing path.
    for _ in range(5):
        cases.append(_random_circuit(rng, 70, 60))
    cases.append(_random_circuit(rng, 3, 0))  # empty cascade
    return cases


CASES = _circuit_cases()


class TestCostKernelsAgree:
    @pytest.mark.parametrize("model", ["rtof", "barenco"])
    def test_t_count_and_histogram(self, model):
        for circuit in CASES:
            assert circuit_t_count(circuit, model) == circuit_t_count_reference(
                circuit, model
            )
            assert t_count_histogram(circuit, model) == t_count_histogram_reference(
                circuit, model
            )

    def test_depth(self):
        for circuit in CASES:
            assert reversible_depth(circuit) == reversible_depth_reference(circuit)

    def test_gate_histogram_counts_raw_controls(self):
        circuit = ReversibleCircuit()
        for line in range(3):
            circuit.add_line(f"l{line}")
        # A duplicate control entry is counted raw by gate_histogram but
        # charged once (effective) by the T-count models.
        circuit.append(ToffoliGate(((0, True), (0, True)), 2))
        assert circuit.gate_histogram() == {2: 1}
        assert circuit_t_count(circuit) == circuit_t_count_reference(circuit)

    def test_stats_cache_invalidated_on_mutation(self):
        circuit = _random_circuit(random.Random(7), 5, 20)
        before = circuit_t_count(circuit)
        circuit.append(ToffoliGate(((0, True), (1, True), (2, True)), 3))
        assert circuit_t_count(circuit) == circuit_t_count_reference(circuit)
        assert circuit_t_count(circuit) > before


class TestPassesAgree:
    def test_pass_outputs_identical(self):
        for circuit in CASES:
            for fast, reference in (
                (remove_trivial_gates, remove_trivial_gates_reference),
                (merge_not_gates, merge_not_gates_reference),
                (cancel_adjacent_gates, cancel_adjacent_gates_reference),
            ):
                assert fast(circuit.copy()).gates() == reference(circuit.copy()).gates()

    def test_optimize_preserves_function(self):
        rng = random.Random(99)
        for _ in range(10):
            circuit = _random_circuit(rng, rng.randint(2, 6), rng.randint(0, 30))
            optimized = optimize_circuit(circuit.copy())
            assert np.array_equal(
                optimized.to_permutation(), circuit.to_permutation()
            )

    def test_passes_return_input_when_nothing_rewrites(self):
        # Canonical cascade with nothing to cancel or merge: the fast passes
        # hand back the input object, keeping the store's stat caches alive.
        circuit = ReversibleCircuit()
        for line in range(4):
            circuit.add_line(f"l{line}")
        circuit.append_controls(((0, True), (1, True)), 2)
        circuit.append_controls(((1, True), (2, True)), 3)
        assert remove_trivial_gates(circuit) is circuit
        assert merge_not_gates(circuit) is circuit
        assert cancel_adjacent_gates(circuit) is circuit


class TestReplayAgrees:
    def test_to_permutation_matches_object_replay(self):
        rng = random.Random(5)
        for _ in range(10):
            circuit = _random_circuit(rng, rng.randint(2, 6), rng.randint(0, 25))
            perm = circuit.to_permutation()
            for state in range(1 << circuit.num_lines()):
                expected = state
                for gate in circuit.iter_gates():
                    expected = gate.apply(expected)
                assert perm[state] == expected

    def test_apply_to_state_matches_object_replay(self):
        rng = random.Random(6)
        circuit = _random_circuit(rng, 70, 40)
        for _ in range(20):
            state = rng.getrandbits(70)
            expected = state
            for gate in circuit.iter_gates():
                expected = gate.apply(expected)
            assert circuit.apply_to_state(state) == expected


class TestStoreMechanics:
    def test_iter_gates_is_lazy_and_zero_copy(self):
        circuit = ReversibleCircuit()
        for line in range(6):
            circuit.add_line(f"l{line}")
        for target in range(1, 6):
            circuit.append_controls(((0, True),), target)
        store = circuit.gate_store()
        assert store.num_materialized() == 0
        iterator = circuit.iter_gates()
        assert iter(iterator) is iterator  # an iterator, not a list copy
        first = next(iterator)
        assert first == ToffoliGate.cnot(0, 1)
        # Consuming one gate materialises only that prefix.
        assert store.num_materialized() <= 1

    def test_gates_still_returns_a_fresh_list(self):
        circuit = _random_circuit(random.Random(8), 4, 10)
        gates = circuit.gates()
        gates.clear()
        assert circuit.num_gates() == 10

    def test_prepend_order_and_amortized_front(self):
        circuit = ReversibleCircuit()
        for line in range(4):
            circuit.add_line(f"l{line}")
        circuit.append(ToffoliGate.x(0))
        for line in (1, 2, 3):
            circuit.prepend(ToffoliGate.x(line))
        # list.insert(0, ...) semantics: the last prepend is first.
        assert [gate.target for gate in circuit.gates()] == [3, 2, 1, 0]
        assert circuit_t_count(circuit) == circuit_t_count_reference(circuit)

    def test_mask_and_object_appends_build_equal_stores(self):
        object_path = ReversibleCircuit()
        mask_path = ReversibleCircuit()
        for line in range(5):
            object_path.add_line(f"l{line}")
            mask_path.add_line(f"l{line}")
        gates = [
            ToffoliGate(((0, True), (2, False)), 4),
            ToffoliGate.cnot(1, 3),
            ToffoliGate.x(2),
        ]
        object_path.extend(gates)
        mask_path.extend_controls((gate.controls, gate.target) for gate in gates)
        assert mask_path.gates() == object_path.gates()
        packed_a = object_path.gate_store().packed(5)
        packed_b = mask_path.gate_store().packed(5)
        assert np.array_equal(packed_a.care, packed_b.care)
        assert np.array_equal(packed_a.polarity, packed_b.polarity)
        assert np.array_equal(packed_a.targets, packed_b.targets)

    def test_append_masks_validation(self):
        circuit = ReversibleCircuit()
        for line in range(3):
            circuit.add_line(f"l{line}")
        with pytest.raises(ValueError):
            circuit.append_masks(0b1000, 0b1000, 0)  # control beyond lines
        with pytest.raises(ValueError):
            circuit.append_masks(0b001, 0b001, 0)  # target is a control
        with pytest.raises(ValueError):
            circuit.append_masks(0b010, 0b100, 0)  # polarity outside care
        with pytest.raises(ValueError):
            circuit.append_masks(0b010, 0b010, 5)  # target beyond lines

    def test_popcount_words_fallback_matches(self):
        rng = random.Random(3)
        words = np.array(
            [[rng.getrandbits(64) for _ in range(2)] for _ in range(50)],
            dtype=np.uint64,
        )
        expected = [
            bin(int(a)).count("1") + bin(int(b)).count("1") for a, b in words
        ]
        assert popcount_words(words).tolist() == expected

    def test_inverse_reverses_gates(self):
        circuit = _random_circuit(random.Random(21), 5, 15, messy=False)
        assert circuit.inverse().gates() == list(reversed(circuit.gates()))


class TestPickling:
    def test_pickle_roundtrip_mask_native(self):
        circuit = ReversibleCircuit()
        for line in range(70):
            circuit.add_line(f"l{line}")
        circuit.extend_masks(
            [(0b11, 0b01, 65), ((1 << 64) | 1, (1 << 64) | 1, 2), (0, 0, 69)]
        )
        restored = pickle.loads(pickle.dumps(circuit))
        assert restored.gates() == circuit.gates()
        assert restored.num_lines() == circuit.num_lines()
        assert circuit_t_count(restored) == circuit_t_count(circuit)

    def test_pickle_roundtrip_random(self):
        rng = random.Random(17)
        for _ in range(5):
            circuit = _random_circuit(rng, rng.randint(2, 6), rng.randint(0, 20))
            restored = pickle.loads(pickle.dumps(circuit))
            assert restored.gates() == circuit.gates()
            assert np.array_equal(
                restored.to_permutation(), circuit.to_permutation()
            )


class TestQuantumResourcesAgree:
    def test_estimate_resources_matches_reference(self):
        rng = random.Random(31)
        names = sorted(SUPPORTED_GATES)
        for _ in range(20):
            num_qubits = rng.randint(1, 6)
            circuit = QuantumCircuit(num_qubits)
            for _ in range(rng.randint(0, 60)):
                name = rng.choice(names)
                arity = SUPPORTED_GATES[name]
                if arity > num_qubits:
                    continue
                circuit.add(name, *rng.sample(range(num_qubits), arity))
            assert estimate_resources(circuit) == estimate_resources_reference(
                circuit
            )


class TestBatchedCollapseAgrees:
    @staticmethod
    def _random_aig(rng, num_pis, num_ands, num_pos):
        aig = Aig()
        lits = [aig.add_pi() for _ in range(num_pis)]
        lits.append(0)  # constant-false literal
        for _ in range(num_ands):
            a, b = rng.sample(lits, 2)
            if rng.random() < 0.5:
                a ^= 1
            if rng.random() < 0.5:
                b ^= 1
            lits.append(aig.create_and(a, b))
        for _ in range(num_pos):
            po = rng.choice(lits)
            if rng.random() < 0.5:
                po ^= 1
            aig.add_po(po)
        return aig

    def test_apply_and_many_matches_sequential_fold(self):
        rng = random.Random(41)
        for _ in range(100):
            num_vars = rng.randint(1, 6)
            manager = BddManager(num_vars, [f"v{i}" for i in range(num_vars)])
            conjuncts = []
            for _ in range(rng.randint(0, 8)):
                f = manager.variable(rng.randrange(num_vars))
                for _ in range(rng.randint(0, 3)):
                    g = manager.variable(rng.randrange(num_vars))
                    if rng.random() < 0.5:
                        g = manager.apply_not(g)
                    f = manager._apply(rng.choice(["and", "or", "xor"]), f, g)
                conjuncts.append(f)
            if rng.random() < 0.1:
                conjuncts.append(manager.false())
            if rng.random() < 0.2:
                conjuncts.append(manager.true())
            rng.shuffle(conjuncts)
            assert manager.apply_and_many(
                conjuncts
            ) == manager.apply_and_many_reference(conjuncts)

    def test_apply_and_many_trivial_cases(self):
        manager = BddManager(2, ["a", "b"])
        assert manager.apply_and_many([]) == manager.true()
        assert manager.apply_and_many([manager.false()]) == manager.false()
        a = manager.variable(0)
        assert manager.apply_and_many([a, manager.true()]) == a
        assert manager.apply_and_many([a, manager.apply_not(a)]) == manager.false()

    def test_collapse_matches_reference_truth_tables(self):
        rng = random.Random(53)
        for _ in range(60):
            aig = self._random_aig(
                rng, rng.randint(1, 6), rng.randint(0, 25), rng.randint(1, 4)
            )
            fast_manager, fast_roots = collapse_to_bdd(aig)
            ref_manager, ref_roots = collapse_to_bdd_reference(aig)
            assert bdd_to_truth_table(fast_manager, fast_roots) == bdd_to_truth_table(
                ref_manager, ref_roots
            )


class TestGateStoreUnit:
    def test_from_columns_and_repr(self):
        store = GateStore.from_columns([2], [0b11], [0b01], [2])
        assert len(store) == 1
        assert store.is_canonical()
        assert "gates=1" in repr(store)
        gate = store.gate_at(0)
        assert gate == ToffoliGate(((0, True), (1, False)), 2)

    def test_reversed_copy_keeps_order_free_stats(self):
        circuit = _random_circuit(random.Random(61), 5, 12, messy=False)
        t_count = circuit_t_count(circuit)
        reversed_store = circuit.gate_store().reversed_copy()
        assert reversed_store.stats.get(("t_count", "rtof")) == t_count
        assert "depth" not in reversed_store.stats
