"""Unit tests for repro.logic.cube."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.cube import Cube


def random_cube(draw, num_vars=4):
    care = draw(st.integers(min_value=0, max_value=(1 << num_vars) - 1))
    polarity = draw(st.integers(min_value=0, max_value=(1 << num_vars) - 1))
    return Cube(num_vars, care, polarity)


cube_strategy = st.builds(
    lambda care, pol: Cube(4, care, pol),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
)


class TestCubeBasics:
    def test_tautology_covers_everything(self):
        cube = Cube.tautology(3)
        assert cube.num_literals() == 0
        assert cube.num_minterms() == 8
        assert all(cube.evaluate(x) for x in range(8))

    def test_minterm_cube(self):
        cube = Cube.minterm(3, 0b101)
        assert cube.num_literals() == 3
        assert cube.evaluate(0b101)
        assert not cube.evaluate(0b100)
        assert list(cube.minterms()) == [0b101]

    def test_from_literals(self):
        cube = Cube.from_literals(4, [(0, True), (2, False)])
        assert cube.evaluate(0b0001)
        assert cube.evaluate(0b1001)
        assert not cube.evaluate(0b0101)
        assert not cube.evaluate(0b0000)

    def test_from_literals_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Cube.from_literals(3, [(0, True), (0, False)])

    def test_string_roundtrip(self):
        cube = Cube.from_string("1-0")
        assert cube.to_string() == "1-0"
        assert cube.evaluate(0b001)
        assert not cube.evaluate(0b101)

    def test_from_string_rejects_invalid(self):
        with pytest.raises(ValueError):
            Cube.from_string("1x0")

    def test_polarity_outside_care_is_ignored(self):
        assert Cube(3, 0b001, 0b111) == Cube(3, 0b001, 0b001)

    @given(cube_strategy)
    def test_truth_table_agrees_with_evaluate(self, cube):
        table = cube.truth_table()
        for x in range(16):
            assert bool((table >> x) & 1) == cube.evaluate(x)

    @given(cube_strategy)
    def test_minterm_count(self, cube):
        assert len(list(cube.minterms())) == cube.num_minterms()


class TestCubeRelations:
    @given(cube_strategy, cube_strategy)
    def test_distance_zero_iff_equal(self, a, b):
        assert (a.distance(b) == 0) == (a == b)

    @given(cube_strategy, cube_strategy)
    def test_distance_symmetry(self, a, b):
        assert a.distance(b) == b.distance(a)

    @given(cube_strategy, cube_strategy)
    def test_intersects_matches_semantics(self, a, b):
        semantic = bool(a.truth_table() & b.truth_table())
        assert a.intersects(b) == semantic

    @given(cube_strategy, cube_strategy)
    def test_contains_matches_semantics(self, a, b):
        ta, tb = a.truth_table(), b.truth_table()
        assert a.contains(b) == ((ta | tb) == ta)

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            Cube.tautology(3).distance(Cube.tautology(4))


class TestDistanceOneMerge:
    @given(cube_strategy, cube_strategy)
    def test_merge_preserves_xor_semantics(self, a, b):
        merged = a.merge_distance_one(b)
        if a.distance(b) != 1:
            assert merged is None
        else:
            assert merged is not None
            assert merged.truth_table() == a.truth_table() ^ b.truth_table()

    def test_opposite_polarity_merge(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("10-")
        merged = a.merge_distance_one(b)
        assert merged == Cube.from_string("1--")

    def test_subset_merge(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("11-")
        merged = a.merge_distance_one(b)
        assert merged is not None
        assert merged.truth_table() == a.truth_table() ^ b.truth_table()


class TestCubeTransforms:
    def test_with_literal(self):
        cube = Cube.tautology(3).with_literal(1, True)
        assert cube.to_string() == "-1-"

    def test_without_variable(self):
        cube = Cube.from_string("101")
        assert cube.without_variable(2).to_string() == "10-"

    def test_with_literal_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.tautology(2).with_literal(5, True)
