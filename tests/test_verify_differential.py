"""Differential verification across representation layers.

This is the fuzzing backbone promised by the verify subsystem: for each of
the paper's three flows, ≥25 random structures (logic networks and HDL
expression designs) are pushed through the full pipeline and every layer
is cross-checked against the next with ``repro.verify.differential`` —
bit-blasted AIG ↔ synthesised reversible circuit, and (where the mapped
circuit stays small) reversible circuit ↔ Clifford+T expansion.
"""

import numpy as np
import pytest

from repro.core.flows import run_flow
from repro.hdl.synthesize import synthesize_verilog
from repro.logic.truth_table import TruthTable
from repro.logic.xmg_mapping import aig_to_xmg
from repro.quantum.mapping import map_to_clifford_t
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.reversible.verification import verify_circuit
from repro.verify.differential import (
    VERIFY_MODES,
    check_equivalent,
    mapped_circuit_simulator,
    normalize_verify_mode,
    simulator_for,
)
from repro.verify.fuzz import random_aig, random_hdl_design, random_truth_table

FLOW_PARAMETERS = {
    "symbolic": {},
    "esop": {"p": 1},
    "hierarchical": {"strategy": "bennett"},
}

#: The mapped Clifford+T cross-check simulates a dense statevector per
#: pattern; keep it to circuits this small.
QUANTUM_QUBIT_LIMIT = 12

NUM_FUZZ_CASES = 25


class TestFuzzedFlowAgreement:
    """AIG ↔ reversible ↔ Clifford+T agreement on fuzzed inputs, per flow."""

    @pytest.mark.parametrize("flow", sorted(FLOW_PARAMETERS))
    @pytest.mark.parametrize("seed", range(NUM_FUZZ_CASES))
    def test_random_aigs_survive_flow(self, flow, seed):
        aig = random_aig(seed, num_pis=3, num_gates=10, num_pos=2)
        result = run_flow(flow, aig, 3, verify=False, **FLOW_PARAMETERS[flow])
        check = check_equivalent(aig, result.circuit, mode="full")
        assert check.equivalent, check.message
        assert check.complete

        quantum = map_to_clifford_t(result.circuit)
        if quantum.num_qubits <= QUANTUM_QUBIT_LIMIT:
            quantum_check = check_equivalent(
                result.circuit,
                mapped_circuit_simulator(quantum, result.circuit),
                mode="sampled",
                num_samples=4,
                seed=seed,
            )
            assert quantum_check.equivalent, quantum_check.message

    @pytest.mark.parametrize("flow", sorted(FLOW_PARAMETERS))
    @pytest.mark.parametrize("seed", range(NUM_FUZZ_CASES))
    def test_random_hdl_designs_survive_flow(self, flow, seed):
        source = random_hdl_design(seed, width=2, num_inputs=2, num_wires=4)
        aig = synthesize_verilog(source)
        result = run_flow(
            flow, "fuzz", 2, verify=False, verilog=source, **FLOW_PARAMETERS[flow]
        )
        check = check_equivalent(aig, result.circuit, mode="full")
        assert check.equivalent, f"seed {seed}: {check.message}"
        assert check.complete


class TestDifferentialApi:
    def test_cross_representation_pairs(self):
        # One function, four representations: every pair must agree.
        source = random_hdl_design(11, width=2, num_inputs=2, num_wires=4)
        aig = synthesize_verilog(source)
        xmg = aig_to_xmg(aig, k=3)
        table = aig.to_truth_table()
        circuit = run_flow("esop", aig, 2, verify=False).circuit
        views = [aig, xmg, table, circuit]
        for spec in views:
            for impl in views:
                check = check_equivalent(spec, impl, mode="full")
                assert check.equivalent, check.message

    def test_counterexample_is_concrete(self):
        table = random_truth_table(3, num_inputs=4, num_outputs=3)
        words = np.array(table.words)
        words[9] ^= np.uint64(0b100)
        mutated = TruthTable(4, 3, words)
        check = check_equivalent(table, mutated, mode="full")
        assert not check.equivalent
        assert check.counterexample == 9
        assert check.spec_word == table.evaluate(9)
        assert check.impl_word == mutated.evaluate(9)
        assert "input 9" in check.message

    def test_sampled_mode_finds_gross_difference(self):
        table = random_truth_table(4, num_inputs=14, num_outputs=2)
        words = np.array(table.words)
        inverted = TruthTable(14, 2, words ^ np.uint64(0b11))
        check = check_equivalent(table, inverted, mode="sampled", num_samples=64)
        assert not check.equivalent
        assert not check.complete
        assert table.evaluate(check.counterexample) != inverted.evaluate(
            check.counterexample
        )

    def test_sampled_mode_degrades_to_exhaustive_on_small_spaces(self):
        table = random_truth_table(5, num_inputs=3, num_outputs=2)
        check = check_equivalent(table, table, mode="sampled", num_samples=4096)
        assert check.equivalent
        assert check.complete
        assert check.num_patterns == 8

    def test_auto_mode_switches_on_input_count(self):
        small = random_truth_table(6, num_inputs=4, num_outputs=1)
        check = check_equivalent(small, small, mode="auto")
        assert check.complete
        big = random_truth_table(7, num_inputs=16, num_outputs=1)
        check = check_equivalent(big, big, mode="auto", num_samples=32)
        assert not check.complete
        assert check.num_patterns == 32

    def test_interface_mismatches_reported(self):
        a = random_truth_table(0, num_inputs=3, num_outputs=2)
        b = random_truth_table(0, num_inputs=4, num_outputs=2)
        c = random_truth_table(0, num_inputs=3, num_outputs=3)
        assert "input counts differ" in check_equivalent(a, b).message
        assert "output counts differ" in check_equivalent(a, c).message

    def test_unknown_mode_rejected(self):
        table = random_truth_table(1)
        with pytest.raises(ValueError):
            check_equivalent(table, table, mode="thorough")

    def test_bare_quantum_circuit_rejected(self):
        circuit = run_flow("esop", random_aig(2, num_pis=3), 3, verify=False).circuit
        quantum = map_to_clifford_t(circuit)
        with pytest.raises(TypeError):
            simulator_for(quantum)

    def test_unsupported_object_rejected(self):
        with pytest.raises(TypeError):
            simulator_for(42)

    def test_mapped_simulator_detects_broken_mapping(self):
        table = random_truth_table(8, num_inputs=3, num_outputs=3)
        circuit = symbolic_tbs(table)
        quantum = map_to_clifford_t(circuit)
        # Corrupt the mapped circuit with one stray X gate on an output.
        corrupted = map_to_clifford_t(circuit)
        corrupted.add("x", circuit.output_lines()[0])
        good = check_equivalent(
            circuit, mapped_circuit_simulator(quantum, circuit), mode="full"
        )
        assert good.equivalent, good.message
        bad = check_equivalent(
            circuit, mapped_circuit_simulator(corrupted, circuit), mode="full"
        )
        assert not bad.equivalent

    def test_nonclassical_mapping_fails_gracefully(self):
        # A mapped circuit that leaves a superposition must yield a failing
        # DifferentialResult with a counterexample, not an exception.
        table = random_truth_table(9, num_inputs=3, num_outputs=3)
        circuit = symbolic_tbs(table)
        corrupted = map_to_clifford_t(circuit)
        corrupted.add("h", circuit.output_lines()[0])
        result = check_equivalent(
            circuit, mapped_circuit_simulator(corrupted, circuit), mode="full"
        )
        assert not result.equivalent
        assert result.counterexample is not None
        assert "not a classical permutation" in result.message


class TestVerifyModeNormalization:
    def test_booleans_and_none(self):
        assert normalize_verify_mode(True) == "auto"
        assert normalize_verify_mode(False) == "off"
        assert normalize_verify_mode(None) == "off"

    @pytest.mark.parametrize("mode", VERIFY_MODES)
    def test_canonical_modes_pass_through(self, mode):
        assert normalize_verify_mode(mode) == mode
        assert normalize_verify_mode(mode.upper()) == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            normalize_verify_mode("exhaustive-ish")


class TestVerifyCircuitSamplingRegression:
    """Satellite fix: oversampling must degrade to the exhaustive check."""

    def _circuit_and_spec(self, seed=0):
        table = random_truth_table(seed, num_inputs=3, num_outputs=3)
        return symbolic_tbs(table), table

    def test_oversampling_degrades_to_exhaustive(self):
        circuit, spec = self._circuit_and_spec()
        # 2**3 == 8 input words; a budget of 8 or more must check them all
        # exactly once and report a complete verdict.
        for budget in (8, 9, 4096):
            result = verify_circuit(circuit, spec, num_samples=budget)
            assert result.equivalent
            assert result.complete, f"budget {budget} not reported complete"

    def test_undersampling_stays_incomplete(self):
        circuit, spec = self._circuit_and_spec()
        result = verify_circuit(circuit, spec, num_samples=4)
        assert result.equivalent
        assert not result.complete

    def test_exhaustive_detects_output_corruption(self):
        circuit, spec = self._circuit_and_spec(seed=1)
        broken = circuit.copy()
        # Corrupt one output line at the end of the cascade.
        broken.append(ToffoliGate.x(circuit.output_lines()[0]))
        result = verify_circuit(broken, spec)
        assert not result.equivalent
        assert result.complete
        assert result.counterexample is not None
        # The reported counterexample genuinely disagrees.
        assert broken.evaluate(result.counterexample) != spec.evaluate(
            result.counterexample
        )

    def test_clean_ancilla_violation_detected_bit_parallel(self):
        circuit, spec = self._circuit_and_spec(seed=2)
        dirty = circuit.copy()
        anc = dirty.add_constant_line(0)
        input_line = next(iter(dirty.input_lines().values()))
        dirty.append(ToffoliGate.cnot(input_line, anc))
        ok = verify_circuit(dirty, spec)
        assert ok.equivalent  # outputs still correct
        violated = verify_circuit(dirty, spec, check_clean_ancillas=True)
        assert not violated.equivalent
        assert "ancilla" in violated.message
