"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_defaults(self):
        args = build_parser().parse_args(["flow", "--flow", "esop"])
        args.bitwidth == 8
        assert args.design == "intdiv"
        assert args.factoring == 0

    def test_unknown_flow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "--flow", "magic"])


class TestCommands:
    def test_designs_command_prints_verilog(self, capsys):
        assert main(["designs", "--design", "newton", "-n", "4"]) == 0
        output = capsys.readouterr().out
        assert "module newton" in output

    def test_baselines_command(self, capsys):
        assert main(["baselines", "-n", "4"]) == 0
        output = capsys.readouterr().out
        assert "RESDIV" in output and "QNEWTON" in output

    def test_flow_command_esop(self, capsys):
        assert main(["flow", "--flow", "esop", "--design", "intdiv", "-n", "4"]) == 0
        output = capsys.readouterr().out
        assert "T-count" in output
        assert "verified" in output

    def test_flow_command_writes_real_and_qasm(self, tmp_path, capsys):
        real_path = tmp_path / "circuit.real"
        qasm_path = tmp_path / "circuit.qasm"
        exit_code = main(
            [
                "flow",
                "--flow",
                "esop",
                "--design",
                "intdiv",
                "-n",
                "4",
                "--real",
                str(real_path),
                "--qasm",
                str(qasm_path),
            ]
        )
        assert exit_code == 0
        assert real_path.exists() and ".numvars" in real_path.read_text()
        assert qasm_path.exists() and "OPENQASM 2.0;" in qasm_path.read_text()

    def test_flow_command_with_verilog_file(self, tmp_path, capsys):
        source = tmp_path / "buffer.v"
        source.write_text(
            "module buffer (input [2:0] a, output [2:0] y); assign y = a; endmodule\n"
        )
        exit_code = main(
            [
                "flow",
                "--flow",
                "hierarchical",
                "--design",
                "buffer",
                "-n",
                "3",
                "--verilog",
                str(source),
            ]
        )
        assert exit_code == 0
        assert "qubits" in capsys.readouterr().out

    def test_flow_command_lut_bounded(self, capsys):
        exit_code = main(
            ["flow", "--flow", "lut", "--design", "intdiv", "-n", "4",
             "-k", "3", "--strategy", "bounded", "--max-pebbles", "0.5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "lut" in output and "verified" in output

    def test_flow_command_rejects_non_integer_budget(self, capsys):
        exit_code = main(
            ["flow", "--flow", "lut", "--design", "intdiv", "-n", "4",
             "--strategy", "bounded", "--max-pebbles", "2.5"]
        )
        assert exit_code == 2
        assert "integer pebble count" in capsys.readouterr().err

    def test_flow_command_infeasible_budget_exits_2(self, capsys):
        exit_code = main(
            ["flow", "--flow", "lut", "--design", "intdiv", "-n", "4",
             "-k", "2", "--strategy", "bounded", "--max-pebbles", "2"]
        )
        assert exit_code == 2
        assert "minimum" in capsys.readouterr().err

    def test_explore_flow_lut_sweeps_strategies(self, capsys):
        exit_code = main(
            ["explore", "--flow", "lut", "--design", "intdiv", "-n", "4",
             "--no-verify", "--quiet"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "lut(strategy=bennett)" in output
        assert "lut(strategy=eager)" in output
        assert "max_pebbles=0.5" in output
        assert "Pareto front" in output

    def test_explore_sweep_spec_for_lut_parameters(self, capsys):
        exit_code = main(
            ["explore", "--design", "intdiv", "-n", "3", "--no-verify",
             "--quiet", "--sweep", "lut:strategy=bennett,eager:k=2,3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "lut(k=2, strategy=bennett)" in output
        assert "lut(k=3, strategy=eager)" in output

    def test_explore_command(self, capsys):
        exit_code = main(["explore", "--design", "intdiv", "-n", "4", "--no-verify"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Pareto front" in output
        assert "symbolic" in output

    def test_explore_verify_mode_flag(self, capsys):
        exit_code = main(
            ["explore", "--design", "intdiv", "-n", "3",
             "--sweep", "esop:p=0", "--verify", "full", "--quiet"]
        )
        assert exit_code == 0
        assert "esop(p=0)" in capsys.readouterr().out

    def test_explore_rejects_unknown_verify_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["explore", "--design", "intdiv", "--verify", "sometimes"]
            )

    def test_verify_command_all_flows(self, capsys):
        exit_code = main(["verify", "--design", "intdiv", "-n", "3", "--mode", "full"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Differential verification of intdiv(3)" in output
        assert "aig = circuit" in output
        for flow in ("symbolic", "esop", "hierarchical"):
            assert flow in output
        assert "FAIL" not in output

    def test_verify_command_quantum_leg(self, capsys):
        exit_code = main(
            ["verify", "--design", "intdiv", "-n", "3",
             "--flows", "esop", "--quantum", "--samples", "4"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "circuit = clifford+t" in output

    def test_verify_command_with_verilog_file(self, tmp_path, capsys):
        source = tmp_path / "buffer.v"
        source.write_text(
            "module buffer (input [2:0] a, output [2:0] y); assign y = a; endmodule\n"
        )
        exit_code = main(
            ["verify", "--design", "buffer", "-n", "3",
             "--verilog", str(source), "--flows", "esop"]
        )
        assert exit_code == 0
        assert "buffer.v(3)" in capsys.readouterr().out


class TestPassManagerCli:
    def test_passes_command_lists_passes_and_pipelines(self, capsys):
        assert main(["passes"]) == 0
        output = capsys.readouterr().out
        assert "balance" in output and "xmg_refactor" in output
        assert "xmg-default" in output
        assert "aig" in output and "xmg" in output

    def test_passes_command_network_filter(self, capsys):
        assert main(["passes", "--network", "aig"]) == 0
        output = capsys.readouterr().out
        assert "balance" in output
        assert "xmg_refactor" not in output

    def test_passes_command_target_qc(self, capsys):
        assert main(["passes", "--target", "qc"]) == 0
        output = capsys.readouterr().out
        assert "qc_cancel" in output and "qc_merge" in output
        assert "qc-default" in output
        assert "balance" not in output and "rev_cancel" not in output

    def test_passes_command_target_rev(self, capsys):
        assert main(["passes", "--target", "rev"]) == 0
        output = capsys.readouterr().out
        assert "rev_cancel" in output and "rev-default" in output
        assert "qc_cancel" not in output

    def test_passes_command_lists_all_targets(self, capsys):
        assert main(["passes"]) == 0
        output = capsys.readouterr().out
        for name in ("balance", "xmg_refactor", "rev_cancel", "qc_merge"):
            assert name in output

    def test_flow_opt_override(self, capsys):
        exit_code = main(
            ["flow", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--opt", "b;rw;rf"]
        )
        assert exit_code == 0
        assert "T-count" in capsys.readouterr().out

    def test_flow_xmg_opt_improves_t_count(self, capsys):
        assert main(
            ["flow", "--flow", "hierarchical", "--design", "intdiv", "-n", "3"]
        ) == 0
        plain = capsys.readouterr().out
        assert main(
            ["flow", "--flow", "hierarchical", "--design", "intdiv", "-n", "3",
             "--xmg-opt", "xmg-default", "--opt-guard", "full"]
        ) == 0
        optimized = capsys.readouterr().out

        def t_count(text):
            for line in text.splitlines():
                if "T-count" in line:
                    return int(line.split()[-1])
            raise AssertionError(f"no T-count in {text!r}")

        assert t_count(optimized) < t_count(plain)

    def test_flow_unknown_opt_fails_with_suggestion(self, capsys):
        exit_code = main(
            ["flow", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--opt", "rewritee"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "rewrite" in err

    def test_flow_rev_opt_and_map_model(self, capsys):
        exit_code = main(
            ["flow", "--flow", "esop", "--design", "intdiv", "-n", "4",
             "--rev-opt", "rev-default", "--map-model", "rtof"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "T-depth" in output
        assert "mapped qubits" in output

    def test_flow_qc_opt_requires_map_model(self, capsys):
        exit_code = main(
            ["flow", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--qc-opt", "qc-default"]
        )
        assert exit_code == 2
        assert "--map-model" in capsys.readouterr().err

    def test_flow_unknown_rev_opt_fails_with_suggestion(self, capsys):
        exit_code = main(
            ["flow", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--rev-opt", "rev_cancell"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "rev_cancel" in err

    def test_flow_qasm_respects_map_model(self, tmp_path, capsys):
        qasm_path = tmp_path / "circuit.qasm"
        exit_code = main(
            ["flow", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--map-model", "barenco", "--qasm", str(qasm_path)]
        )
        assert exit_code == 0
        assert qasm_path.exists()
        from repro.io.qasm import parse_qasm

        parsed = parse_qasm(qasm_path.read_text())
        output = capsys.readouterr().out
        assert f"{parsed.t_count()} T" in output

    def test_explore_rev_opt_sweeps_pipelines(self, capsys):
        exit_code = main(
            ["explore", "--design", "intdiv", "-n", "3", "--no-verify",
             "--quiet", "--sweep", "esop:p=0",
             "--rev-opt", "none", "--rev-opt", "rev-default"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rev_opt=none" in output
        assert "rev_opt=rev-default" in output

    def test_explore_rev_opt_cross_deduplicates_default_points(self, capsys):
        # The esop default sweep already ships a (p=0, rev_opt=rev-default)
        # point; crossing with --rev-opt rev-default must not run it twice.
        exit_code = main(
            ["explore", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--no-verify", "--quiet", "--rev-opt", "rev-default"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        # One row in the design-space table (the Pareto table repeats the
        # label without the design prefix).
        assert output.count("intdiv(3)/esop(p=0, rev_opt=rev-default)") == 1

    def test_explore_flow_esop_default_sweep_has_rev_opt(self, capsys):
        exit_code = main(
            ["explore", "--flow", "esop", "--design", "intdiv", "-n", "3",
             "--no-verify", "--quiet"]
        )
        assert exit_code == 0
        assert "rev_opt=rev-default" in capsys.readouterr().out

    def test_explore_opt_sweeps_pipelines(self, capsys):
        exit_code = main(
            ["explore", "--design", "intdiv", "-n", "3", "--no-verify",
             "--quiet", "--sweep", "esop:p=0",
             "--opt", "dc2", "--opt", "b;rw;rf"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "opt=dc2" in output
        assert "opt=b;rw;rf" in output

    def test_explore_unknown_opt_fails_fast(self, capsys):
        exit_code = main(
            ["explore", "--design", "intdiv", "-n", "3", "--no-verify",
             "--quiet", "--opt", "xmg_strassh"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "xmg_strash" in err
