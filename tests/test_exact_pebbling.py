"""Metamorphic tests for the SAT-exact pebbling strategy and the registry.

The ``exact`` strategy promises three machine-checkable orderings against
the heuristics it replaces, all asserted here rather than trusted by
construction:

* every schedule it emits survives :func:`validate_schedule`,
* at equal pebble budgets, ``exact`` never peaks above ``bounded``, which
  never peaks above ``bennett``,
* the synthesised gate count is monotone non-increasing in the budget.

On top of that the suite pins the strategy registry (did-you-mean errors,
aliases, collision rejection) and the engine's provenance metadata: which
SAT regime ran (monolithic below :data:`MONOLITHIC_LUT_LIMIT` LUTs,
windowed above) and whether optimality was proven within the time budget.
"""

import pytest

from repro.logic.cuts import lut_map
from repro.reversible.exact_pebbling import (
    MONOLITHIC_LUT_LIMIT,
    exact_schedule,
)
from repro.reversible.lut_synth import synthesize_schedule
from repro.reversible.pebbling import (
    bennett_schedule,
    bounded_schedule,
    make_schedule,
    minimum_pebbles,
    validate_schedule,
)
from repro.reversible.strategies import (
    PebblingStrategy,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)
from repro.verify.differential import check_equivalent
from repro.verify.fuzz import random_aig

#: Per-call SAT budget: generous enough that the small corpus mappings are
#: solved to proven optimality, small enough to keep the suite fast.
TIME_BUDGET = 5.0

#: Seeds whose k=3 LUT DAGs stay small (fast monolithic solves).
SMALL_SEEDS = (1, 2, 3, 6, 7, 8, 9, 11)

#: Seeds whose k=3 LUT DAGs exceed the monolithic limit (windowed regime).
LARGE_SEEDS = (0, 4)


def mapping_for(seed, k=3, num_pis=4, num_gates=14, num_pos=3):
    aig = random_aig(seed, num_pis=num_pis, num_gates=num_gates, num_pos=num_pos)
    return lut_map(aig, k=k)


def budget_range(mapping):
    floor = max(1, minimum_pebbles(mapping))
    return floor, max(floor, mapping.num_luts())


class TestEveryExactScheduleValidates:
    @pytest.mark.parametrize("seed", SMALL_SEEDS + LARGE_SEEDS)
    def test_schedule_passes_the_validator(self, seed):
        mapping = mapping_for(seed)
        floor, ceiling = budget_range(mapping)
        for budget in {floor, ceiling}:
            schedule = exact_schedule(
                mapping, max_pebbles=budget, time_budget=TIME_BUDGET
            )
            stats = validate_schedule(schedule)
            assert stats.pebble_peak <= budget
            assert schedule.strategy == "exact"
            assert schedule.info.get("engine") in (
                "trivial", "sat-monolithic", "sat-windowed"
            )

    @pytest.mark.parametrize("seed", SMALL_SEEDS[:4])
    def test_make_schedule_threads_the_time_budget(self, seed):
        mapping = mapping_for(seed)
        schedule = make_schedule(
            mapping, strategy="exact", time_budget=TIME_BUDGET
        )
        assert validate_schedule(schedule).num_copies == mapping.aig.num_pos()

    def test_fractional_budget_resolves_like_bounded(self):
        mapping = mapping_for(0)
        schedule = exact_schedule(
            mapping, max_pebbles=0.5, time_budget=TIME_BUDGET
        )
        bounded = bounded_schedule(mapping, 0.5)
        assert schedule.max_pebbles == bounded.max_pebbles
        assert validate_schedule(schedule).pebble_peak <= schedule.max_pebbles


class TestPeakOrdering:
    @pytest.mark.parametrize("seed", SMALL_SEEDS + LARGE_SEEDS)
    def test_exact_peaks_at_or_below_bounded_at_or_below_bennett(self, seed):
        mapping = mapping_for(seed)
        floor, ceiling = budget_range(mapping)
        for budget in {floor, (floor + ceiling) // 2, ceiling}:
            budget = max(floor, budget)
            exact = exact_schedule(
                mapping, max_pebbles=budget, time_budget=TIME_BUDGET
            )
            bounded = bounded_schedule(mapping, budget)
            bennett = bennett_schedule(mapping)
            assert (
                exact.pebble_peak()
                <= bounded.pebble_peak()
                <= bennett.pebble_peak()
            ), f"seed {seed}, budget {budget}"


class TestGateCountMonotoneInBudget:
    @pytest.mark.parametrize("seed", SMALL_SEEDS)
    def test_gate_count_never_increases_with_the_budget(self, seed):
        mapping = mapping_for(seed)
        floor, ceiling = budget_range(mapping)
        gate_counts = [
            synthesize_schedule(
                exact_schedule(
                    mapping, max_pebbles=budget, time_budget=TIME_BUDGET
                )
            ).num_gates()
            for budget in range(floor, ceiling + 1)
        ]
        assert all(a >= b for a, b in zip(gate_counts, gate_counts[1:])), (
            f"seed {seed}: gate counts not monotone: {gate_counts}"
        )

    @pytest.mark.parametrize("seed", SMALL_SEEDS[:5])
    def test_exact_never_uses_more_gates_than_bounded(self, seed):
        mapping = mapping_for(seed)
        floor, ceiling = budget_range(mapping)
        for budget in {floor, ceiling}:
            exact = synthesize_schedule(
                exact_schedule(
                    mapping, max_pebbles=budget, time_budget=TIME_BUDGET
                )
            )
            bounded = synthesize_schedule(bounded_schedule(mapping, budget))
            assert exact.num_gates() <= bounded.num_gates(), (
                f"seed {seed}, budget {budget}"
            )


class TestExactSynthesisEquivalence:
    @pytest.mark.parametrize("seed", SMALL_SEEDS[:5])
    def test_exact_schedule_synthesises_the_same_function(self, seed):
        aig = random_aig(seed, num_pis=4, num_gates=14, num_pos=3)
        mapping = lut_map(aig, k=3)
        schedule = exact_schedule(mapping, time_budget=TIME_BUDGET)
        circuit = synthesize_schedule(schedule)
        check = check_equivalent(aig, circuit, mode="full")
        assert check.equivalent, f"seed {seed}: {check.message}"


class TestRegimesAndFallback:
    @pytest.mark.parametrize("seed", SMALL_SEEDS[:4])
    def test_small_dags_use_the_monolithic_engine(self, seed):
        mapping = mapping_for(seed)
        assert mapping.num_luts() <= MONOLITHIC_LUT_LIMIT
        schedule = exact_schedule(mapping, time_budget=TIME_BUDGET)
        assert schedule.info["engine"] == "sat-monolithic"
        assert "moves" in schedule.info

    @pytest.mark.parametrize("seed", LARGE_SEEDS)
    def test_large_dags_use_the_windowed_engine(self, seed):
        mapping = mapping_for(seed)
        assert mapping.num_luts() > MONOLITHIC_LUT_LIMIT
        schedule = exact_schedule(
            mapping, max_pebbles=0.5, time_budget=TIME_BUDGET
        )
        assert schedule.info["engine"] == "sat-windowed"
        assert schedule.info["windows"] >= schedule.info["windows_improved"]
        # The windowed engine only ever accepts strictly cheaper windows,
        # so it never loses to its own greedy seed.
        seed_circuit = synthesize_schedule(bounded_schedule(mapping, 0.5))
        circuit = synthesize_schedule(schedule)
        assert circuit.num_gates() <= seed_circuit.num_gates()

    @pytest.mark.parametrize("seed", (SMALL_SEEDS[0],) + LARGE_SEEDS[:1])
    def test_exhausted_time_budget_degrades_to_a_valid_schedule(self, seed):
        mapping = mapping_for(seed)
        schedule = exact_schedule(mapping, time_budget=0.0)
        stats = validate_schedule(schedule)
        assert stats.pebble_peak <= schedule.max_pebbles
        assert schedule.info.get("optimal") in (False, True)

    def test_lut_free_mapping_is_trivial(self):
        # Seed 5's outputs are all PI- or constant-driven: no LUT to pebble.
        mapping = mapping_for(5)
        assert mapping.num_luts() == 0
        schedule = exact_schedule(mapping, time_budget=TIME_BUDGET)
        assert schedule.info == {"engine": "trivial", "optimal": True}
        assert validate_schedule(schedule).num_copies == mapping.aig.num_pos()


class TestStrategyRegistry:
    def test_builtins_are_registered(self):
        names = {strategy.name for strategy in available_strategies()}
        assert {"bennett", "bounded", "eager", "exact"} <= names

    def test_alias_resolves_to_the_canonical_strategy(self):
        assert get_strategy("per_output") is get_strategy("eager")

    def test_unknown_name_raises_with_a_suggestion(self):
        with pytest.raises(UnknownStrategyError, match="did you mean 'exact'"):
            get_strategy("exat")
        try:
            get_strategy("exat")
        except UnknownStrategyError as exc:
            assert exc.unknown_name == "exat"
            assert exc.suggestion == "exact"

    def test_unknown_strategy_is_a_value_error_in_make_schedule(self):
        mapping = mapping_for(1)
        with pytest.raises(ValueError, match="unknown pebbling strategy"):
            make_schedule(mapping, strategy="exat")

    def test_registration_collision_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(
                PebblingStrategy("bennett", lambda mapping, **kw: None)
            )

    def test_register_and_unregister_a_custom_strategy(self):
        def build(mapping, max_pebbles=None):
            return bennett_schedule(mapping)

        strategy = PebblingStrategy(
            "custom-test", build, "test-only strategy", aliases=("ct",)
        )
        register_strategy(strategy)
        try:
            assert get_strategy("ct") is strategy
            schedule = make_schedule(mapping_for(1), strategy="custom-test")
            assert validate_schedule(schedule)
        finally:
            unregister_strategy("custom-test")
        with pytest.raises(UnknownStrategyError):
            get_strategy("custom-test")
        with pytest.raises(UnknownStrategyError):
            get_strategy("ct")

    def test_unregistering_an_unknown_name_raises(self):
        with pytest.raises(UnknownStrategyError):
            unregister_strategy("never-registered")

    def test_stray_options_are_rejected_by_the_builder(self):
        mapping = mapping_for(1)
        with pytest.raises(TypeError):
            make_schedule(mapping, strategy="bennett", time_budget=1.0)
