"""Tests for exact small-LUT synthesis (SAT-minimum ESOP covers).

:func:`exact_esop_cubes` promises two things the suite asserts over a
seeded sample of 4-input functions: the cover computes exactly the
requested truth table (XOR of the cube truth tables), and it is never
larger than the PSDKRO cover it replaces — the engine's fallback *is* the
PSDKRO cover, so "never larger" must hold on every path, including budget
exhaustion and functions wider than the exact limit.

The memo is regression-tested through its hit/miss counters, and the
``lut_synth="exact"`` sub-synthesizer is checked end to end: block-level
circuits stay equivalent to the source AIG while never using more gates
than the ``"esop"`` blocks.
"""

import random

import pytest

from repro.logic.esop import psdkro_cubes
from repro.logic.exact_esop import (
    MAX_EXACT_VARS,
    exact_esop_cubes,
    exact_esop_stats,
    reset_exact_esop_memo,
)
from repro.logic.truth_table import tt_mask
from repro.reversible.lut_synth import synthesize_schedule
from repro.reversible.pebbling import bennett_schedule
from repro.logic.cuts import lut_map
from repro.verify.differential import check_equivalent
from repro.verify.fuzz import random_aig

SEEDS = range(20)


def sample_truth(seed, num_vars=4):
    return random.Random(seed).getrandbits(1 << num_vars) & tt_mask(num_vars)


def cover_truth(cubes):
    truth = 0
    for cube in cubes:
        truth ^= cube.truth_table()
    return truth


@pytest.fixture
def fresh_memo():
    """Counter tests need a clean memo; property tests share it (the
    covers are deterministic, so cross-test reuse only saves solver time)."""
    reset_exact_esop_memo()
    yield
    reset_exact_esop_memo()


class TestExactCoverProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cover_computes_the_truth_table(self, seed):
        truth = sample_truth(seed)
        cubes = exact_esop_cubes(truth, 4)
        assert cover_truth(cubes) == truth, f"seed {seed}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cover_never_larger_than_psdkro(self, seed):
        truth = sample_truth(seed)
        exact = exact_esop_cubes(truth, 4)
        heuristic = psdkro_cubes(truth, 4)
        assert len(exact) <= len(heuristic), f"seed {seed}"

    def test_known_optima(self):
        # XOR of four variables needs four single-literal cubes; a single
        # minterm is one cube; the constant-zero function is empty.
        parity = 0x6996
        cubes = exact_esop_cubes(parity, 4)
        assert len(cubes) == 4
        assert sum(cube.num_literals() for cube in cubes) == 4
        assert len(exact_esop_cubes(0x8000, 4)) == 1
        assert exact_esop_cubes(0, 4) == []

    def test_literal_refinement_never_regresses_the_cube_count(self):
        for seed in SEEDS:
            truth = sample_truth(seed)
            exact = exact_esop_cubes(truth, 4)
            # Re-solving the same function must reproduce the memoized
            # optimum, not re-run the solver.
            assert exact_esop_cubes(truth, 4) == exact

    def test_wide_functions_fall_back_to_psdkro(self):
        truth = sample_truth(3, num_vars=MAX_EXACT_VARS + 1)
        cubes = exact_esop_cubes(truth, MAX_EXACT_VARS + 1)
        assert cubes == psdkro_cubes(truth, MAX_EXACT_VARS + 1)

    def test_exhausted_budget_falls_back_to_psdkro(self, fresh_memo):
        truth = sample_truth(7)
        cubes = exact_esop_cubes(truth, 4, time_budget=0.0)
        assert cubes == psdkro_cubes(truth, 4)
        assert exact_esop_stats()["fallbacks"] == 1


class TestMemoBehaviour:
    def test_hit_and_miss_counters(self, fresh_memo):
        truth = sample_truth(0)
        assert exact_esop_stats() == {
            "hits": 0, "misses": 0, "optimal": 0, "fallbacks": 0
        }
        first = exact_esop_cubes(truth, 4)
        stats = exact_esop_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = exact_esop_cubes(truth, 4)
        stats = exact_esop_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert first == second

    def test_memoized_result_is_a_copy(self, fresh_memo):
        truth = sample_truth(1)
        first = exact_esop_cubes(truth, 4)
        first.append(None)  # corrupting the returned list ...
        second = exact_esop_cubes(truth, 4)
        assert None not in second  # ... must not corrupt the memo

    def test_reset_clears_both_memo_and_counters(self, fresh_memo):
        exact_esop_cubes(sample_truth(2), 4)
        reset_exact_esop_memo()
        assert exact_esop_stats() == {
            "hits": 0, "misses": 0, "optimal": 0, "fallbacks": 0
        }


class TestExactBlocks:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_blocks_stay_equivalent_to_the_aig(self, seed):
        aig = random_aig(seed, num_pis=4, num_gates=12, num_pos=3)
        mapping = lut_map(aig, k=4)
        schedule = bennett_schedule(mapping)
        circuit = synthesize_schedule(schedule, lut_synth="exact")
        check = check_equivalent(aig, circuit, mode="full")
        assert check.equivalent, f"seed {seed}: {check.message}"

    @pytest.mark.parametrize("seed", range(6))
    def test_exact_blocks_never_use_more_gates_than_esop(self, seed):
        aig = random_aig(seed, num_pis=4, num_gates=12, num_pos=3)
        mapping = lut_map(aig, k=4)
        schedule = bennett_schedule(mapping)
        exact = synthesize_schedule(schedule, lut_synth="exact")
        esop = synthesize_schedule(schedule, lut_synth="esop")
        assert exact.num_gates() <= esop.num_gates(), f"seed {seed}"
        assert exact.num_lines() == esop.num_lines()

    def test_flow_level_exact_synthesis_verifies(self):
        from repro.core.flows import run_flow

        exact = run_flow(
            "lut", "intdiv", 3, verify="full", lut_synth="exact"
        )
        esop = run_flow("lut", "intdiv", 3, verify="full", lut_synth="esop")
        assert exact.report.verified
        assert exact.report.t_count <= esop.report.t_count
        assert exact.report.qubits == esop.report.qubits
