"""Unit tests for ISOP computation and algebraic factoring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.sop import expression_literal_count, factor_cubes, isop
from repro.logic.truth_table import tt_mask


def evaluate_expression(expr, minterm):
    tag = expr[0]
    if tag == "const":
        return expr[1]
    if tag == "lit":
        _, var, positive = expr
        value = bool((minterm >> var) & 1)
        return value if positive else not value
    values = [evaluate_expression(child, minterm) for child in expr[1]]
    if tag == "and":
        return all(values)
    if tag == "or":
        return any(values)
    raise AssertionError(f"unknown tag {tag}")


def cover_truth_table(cubes, num_vars):
    table = 0
    for cube in cubes:
        table |= cube.truth_table()
    return table


class TestIsop:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=300)
    def test_isop_is_a_cover(self, func):
        cubes = isop(func, 4)
        assert cover_truth_table(cubes, 4) == func

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_isop_three_vars(self, func):
        cubes = isop(func, 3)
        assert cover_truth_table(cubes, 3) == func

    def test_constants(self):
        assert isop(0, 3) == []
        cubes = isop(tt_mask(3), 3)
        assert len(cubes) == 1
        assert cubes[0].num_literals() == 0

    def test_single_minterm(self):
        cubes = isop(1 << 5, 3)
        assert len(cubes) == 1
        assert cubes[0].num_literals() == 3

    def test_and_function_single_cube(self):
        # x0 AND x1 over 2 vars = minterm 3 only.
        cubes = isop(0b1000, 2)
        assert len(cubes) == 1

    def test_or_function_two_cubes(self):
        # x0 OR x1 over 2 vars.
        cubes = isop(0b1110, 2)
        assert len(cubes) <= 2
        assert cover_truth_table(cubes, 2) == 0b1110


class TestFactoring:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=200)
    def test_factored_form_preserves_function(self, func):
        num_vars = 4
        cubes = isop(func, num_vars)
        expr = factor_cubes(cubes, num_vars)
        for x in range(16):
            assert evaluate_expression(expr, x) == bool((func >> x) & 1)

    def test_factoring_shares_literals(self):
        # f = x0 x1 + x0 x2 should factor as x0 (x1 + x2): 3 literals.
        from repro.logic.cube import Cube

        cubes = [Cube.from_string("11-"), Cube.from_string("1-1")]
        expr = factor_cubes(cubes, 3)
        assert expression_literal_count(expr) == 3

    def test_empty_cover_is_constant_false(self):
        assert factor_cubes([], 3) == ("const", False)

    def test_tautology_cover(self):
        from repro.logic.cube import Cube

        expr = factor_cubes([Cube.tautology(3)], 3)
        assert expr == ("const", True)
