"""repro — reproduction of *Design Automation and Design Space Exploration
for Quantum Computers* (Soeken, Roetteler, Wiebe, De Micheli, DATE 2017).

The package is organised in layers that mirror Fig. 1 of the paper:

``repro.hdl``
    Verilog subset front-end (design level).  Parses the ``INTDIV(n)`` and
    ``NEWTON(n)`` reciprocal designs (or any design written in the supported
    subset) and bit-blasts them into and-inverter graphs.

``repro.logic``
    Classical logic synthesis substrate (logic synthesis level): AIGs, BDDs,
    ESOP covers, XOR-majority graphs, optimisation scripts and equivalence
    checking.

``repro.reversible``
    Reversible circuits and the three synthesis back-ends of the paper
    (symbolic functional, ESOP-based, hierarchical).

``repro.quantum``
    Quantum level: Clifford+T mapping of multiple-controlled Toffoli gates
    (Barenco chains or 4-T relative-phase Toffolis), T-count cost models
    and the resource estimator (T-depth, circuit depth, gate histograms).

``repro.arith`` / ``repro.baselines``
    Reversible arithmetic building blocks (Cuccaro adders, restoring
    division, ...) and the hand-crafted ``RESDIV``/``QNEWTON`` baselines of
    Table I.

``repro.core``
    The paper's contribution: end-to-end design flows and design space
    exploration across them.

Quickstart
----------

>>> from repro import run_flow
>>> result = run_flow("esop", "intdiv", 5, p=0)
>>> result.report.qubits
10
"""

from repro.core.cache import ResultCache
from repro.core.cost import CostReport
from repro.core.explorer import (
    ConfigurationOutcome,
    DesignSpaceExplorer,
    ExplorationEngine,
    ExplorationTask,
    FlowConfiguration,
    ParameterGrid,
    ParetoPoint,
    build_sweep,
    pareto_front_of,
)
from repro.core.flows import (
    available_flows,
    esop_flow,
    frontend_artifacts,
    hierarchical_flow,
    lut_flow,
    run_flow,
    symbolic_flow,
)
from repro.hdl.designs import intdiv_verilog, newton_verilog
from repro.hdl.synthesize import synthesize_verilog
from repro.opt import (
    Pass,
    Pipeline,
    available_passes,
    parse_pipeline,
    register_pass,
)
from repro.quantum import ResourceEstimate, estimate_resources, map_to_clifford_t
from repro.verify.differential import (
    DifferentialResult,
    check_equivalent,
    check_quantum_equivalent,
    mapped_circuit_simulator,
)

__all__ = [
    "ConfigurationOutcome",
    "CostReport",
    "DesignSpaceExplorer",
    "DifferentialResult",
    "ExplorationEngine",
    "ExplorationTask",
    "FlowConfiguration",
    "ParameterGrid",
    "ParetoPoint",
    "Pass",
    "Pipeline",
    "ResourceEstimate",
    "ResultCache",
    "available_flows",
    "available_passes",
    "build_sweep",
    "check_equivalent",
    "check_quantum_equivalent",
    "esop_flow",
    "estimate_resources",
    "frontend_artifacts",
    "hierarchical_flow",
    "intdiv_verilog",
    "lut_flow",
    "map_to_clifford_t",
    "mapped_circuit_simulator",
    "newton_verilog",
    "pareto_front_of",
    "parse_pipeline",
    "register_pass",
    "run_flow",
    "symbolic_flow",
    "synthesize_verilog",
]

__version__ = "0.1.0"
