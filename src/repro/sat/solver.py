"""A small CDCL SAT solver (watched literals, 1-UIP learning, restarts).

The solver implements the standard conflict-driven clause-learning loop in
pure Python:

* **unit propagation** over two watched literals per clause (only clauses
  watching a newly falsified literal are visited),
* **first-UIP conflict analysis** producing one learnt clause per
  conflict, with non-chronological backjumping to its assertion level,
* **VSIDS-style decision heuristic** — exponentially decaying variable
  activities bumped during conflict analysis, served from a lazy max-heap,
* **phase saving** — decisions reuse the last assigned polarity, which
  lets restarts keep the part of the search that worked,
* **Luby restarts** on a conflict-count schedule,
* **learnt-clause reduction** — the activity-coldest half of the learnt
  clauses is dropped whenever the database outgrows its budget.

Calls are budgeted: :func:`solve` accepts a wall-clock and/or a conflict
budget and returns status ``"unknown"`` when either is exhausted, so the
exact engines built on top (:mod:`repro.reversible.exact_pebbling`,
:mod:`repro.logic.exact_esop`) can fall back to their heuristic answers
instead of stalling a flow.  Assumptions (a partial assignment to solve
under) are supported the MiniSat way, as forced first decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sat.cnf import Cnf

__all__ = ["SatResult", "Solver", "solve"]

_UNASSIGNED = 2

#: Conflicts granted by the first Luby restart interval.
_LUBY_UNIT = 128

#: Variable activities are rescaled when they exceed this magnitude.
_ACTIVITY_CAP = 1e100


def _luby(index: int) -> int:
    """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (1-based)."""
    k = 1
    while (1 << (k + 1)) - 1 <= index:
        k += 1
    while (1 << k) - 1 != index:
        index -= (1 << (k - 1)) - 1 + 1
        k = 1
        while (1 << (k + 1)) - 1 <= index:
            k += 1
    return 1 << (k - 1)


@dataclass
class SatResult:
    """Outcome of one solver call.

    ``status`` is ``"sat"``, ``"unsat"`` or ``"unknown"`` (budget
    exhausted).  ``model`` maps every variable to its boolean value when
    satisfiable, and is ``None`` otherwise.  The statistics record the
    search effort, and ``runtime`` the wall-clock seconds spent.
    """

    status: str
    model: Optional[Dict[int, bool]] = None
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    runtime: float = 0.0

    def __bool__(self) -> bool:
        return self.status == "sat"

    def __getitem__(self, variable: int) -> bool:
        """Value of a variable in the model (``result[v]``)."""
        if self.model is None:
            raise KeyError(f"no model: status is {self.status!r}")
        return self.model[variable]


class Solver:
    """One CDCL search over a fixed clause set.

    Build with a :class:`~repro.sat.cnf.Cnf` (or anything exposing
    ``num_vars`` and ``clauses``), then call :meth:`solve`.  A solver
    instance is single-shot: construct a new one per formula.
    """

    def __init__(self, cnf: Cnf):
        self.num_vars = cnf.num_vars
        self.contradiction = getattr(cnf, "contradiction", False)
        n = self.num_vars
        # Internal literal encoding: variable v (1-based) becomes
        # 2*(v-1) for the positive and 2*(v-1)+1 for the negative literal.
        self.assigns = bytearray([_UNASSIGNED] * n)
        self.level = [0] * n
        self.reason: List[Optional[List[int]]] = [None] * n
        self.activity = [0.0] * n
        self.polarity = bytearray(n)  # saved phases, default False
        self.watches: List[List[List[int]]] = [[] for _ in range(2 * n)]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        self.clauses: List[List[int]] = []
        self.learnts: List[List[int]] = []
        self.clause_activity: Dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 1.0 / 0.95
        self.heap: List[tuple] = []
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0

        for clause in cnf.clauses:
            if not self._attach_input_clause(clause):
                self.contradiction = True
                break
        for v in range(n):
            heappush(self.heap, (0.0, v))

    # -- literal helpers -----------------------------------------------------

    @staticmethod
    def _to_internal(literal: int) -> int:
        v = abs(literal) - 1
        return 2 * v + (1 if literal < 0 else 0)

    def _lit_value(self, lit: int) -> int:
        """0 false, 1 true, >=2 unassigned."""
        return self.assigns[lit >> 1] ^ (lit & 1)

    # -- clause attachment ---------------------------------------------------

    def _attach_input_clause(self, clause: Sequence[int]) -> bool:
        """Attach one input clause; False when it is immediately conflicting."""
        lits = [self._to_internal(l) for l in clause]
        if not lits:
            return False
        if len(lits) == 1:
            value = self._lit_value(lits[0])
            if value == 0:
                return False
            if value >= _UNASSIGNED:
                self._enqueue(lits[0], None)
            return True
        self.clauses.append(lits)
        self.watches[lits[0]].append(lits)
        self.watches[lits[1]].append(lits)
        return True

    # -- trail management ----------------------------------------------------

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        v = lit >> 1
        self.assigns[v] = (lit & 1) ^ 1
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.polarity[v] = (lit & 1) ^ 1
        self.trail.append(lit)

    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        bound = self.trail_lim[target_level]
        for lit in self.trail[bound:]:
            v = lit >> 1
            self.assigns[v] = _UNASSIGNED
            self.reason[v] = None
            heappush(self.heap, (-self.activity[v], v))
        del self.trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> Optional[List[int]]:
        """Propagate units; returns the conflicting clause or ``None``."""
        watches = self.watches
        assigns = self.assigns
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = lit ^ 1
            ws = watches[false_lit]
            # Swap in a fresh list so replacement watches appended during
            # the scan (possibly for this very literal) are never lost.
            watches[false_lit] = kept = []
            i = 0
            end = len(ws)
            while i < end:
                clause = ws[i]
                i += 1
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                first_value = assigns[first >> 1] ^ (first & 1)
                if first_value == 1:
                    kept.append(clause)
                    continue
                for k in range(2, len(clause)):
                    other = clause[k]
                    if (assigns[other >> 1] ^ (other & 1)) != 0:
                        clause[1] = other
                        clause[k] = false_lit
                        watches[other].append(clause)
                        break
                else:
                    kept.append(clause)
                    if first_value == 0:
                        # Conflict: keep the unvisited suffix watched.
                        kept.extend(ws[i:])
                        self.qhead = len(self.trail)
                        return clause
                    self._enqueue(first, clause)
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > _ACTIVITY_CAP:
            scale = 1.0 / _ACTIVITY_CAP
            for i in range(self.num_vars):
                self.activity[i] *= scale
            self.var_inc *= scale

    def _analyze(self, conflict: List[int]) -> tuple:
        """First-UIP learning; returns ``(learnt_clause, backjump_level)``."""
        learnt = [0]
        seen = bytearray(self.num_vars)
        counter = 0
        lit = -1
        reason: Optional[List[int]] = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)

        while True:
            assert reason is not None
            start = 0 if lit == -1 else 1
            for p in reason[start:]:
                v = p >> 1
                if not seen[v] and self.level[v] > 0:
                    seen[v] = 1
                    self._bump_var(v)
                    if self.level[v] >= current_level:
                        counter += 1
                    else:
                        learnt.append(p)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            v = lit >> 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self.reason[v]
        learnt[0] = lit ^ 1

        if len(learnt) == 1:
            return learnt, 0
        # Backjump to the second-highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.level[learnt[i] >> 1] > self.level[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.level[learnt[1] >> 1]

    def _record_learnt(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            self._enqueue(learnt[0], None)
            return
        self.learnts.append(learnt)
        self.clause_activity[id(learnt)] = self.conflicts
        self.watches[learnt[0]].append(learnt)
        self.watches[learnt[1]].append(learnt)
        self._enqueue(learnt[0], learnt)

    def _reduce_learnts(self) -> None:
        """Drop the colder half of the learnt clauses (keep locked ones)."""
        locked = {
            id(self.reason[lit >> 1]) for lit in self.trail
            if self.reason[lit >> 1] is not None
        }
        self.learnts.sort(key=lambda c: self.clause_activity.get(id(c), 0))
        keep_from = len(self.learnts) // 2
        dropped = [
            c for c in self.learnts[:keep_from]
            if id(c) not in locked and len(c) > 2
        ]
        if not dropped:
            return
        dropped_ids = {id(c) for c in dropped}
        self.learnts = [c for c in self.learnts if id(c) not in dropped_ids]
        for c in dropped:
            self.clause_activity.pop(id(c), None)
        for lit in range(2 * self.num_vars):
            ws = self.watches[lit]
            if ws:
                self.watches[lit] = [c for c in ws if id(c) not in dropped_ids]

    # -- decisions -----------------------------------------------------------

    def _decide(self) -> int:
        """Next decision literal, or -1 when all variables are assigned."""
        while self.heap:
            _, v = heappop(self.heap)
            if self.assigns[v] == _UNASSIGNED:
                return 2 * v + (0 if self.polarity[v] else 1)
        for v in range(self.num_vars):
            if self.assigns[v] == _UNASSIGNED:
                return 2 * v + (0 if self.polarity[v] else 1)
        return -1

    # -- main loop -----------------------------------------------------------

    def solve(
        self,
        assumptions: Iterable[int] = (),
        time_budget: Optional[float] = None,
        conflict_budget: Optional[int] = None,
    ) -> SatResult:
        """Run the CDCL loop; returns a :class:`SatResult`.

        ``assumptions`` is an iterable of DIMACS literals solved as forced
        first decisions; a conflict among them yields ``"unsat"`` (under
        the assumptions).  ``time_budget`` (seconds) and
        ``conflict_budget`` bound the search — when either runs out the
        status is ``"unknown"``.
        """
        start = time.monotonic()
        deadline = None if time_budget is None else start + time_budget
        assumed = [self._to_internal(l) for l in assumptions]

        def result(status: str, model=None) -> SatResult:
            return SatResult(
                status=status,
                model=model,
                conflicts=self.conflicts,
                decisions=self.decisions,
                propagations=self.propagations,
                restarts=self.restarts,
                runtime=time.monotonic() - start,
            )

        if self.contradiction:
            return result("unsat")
        if self._propagate() is not None:
            return result("unsat")

        conflicts_until_restart = _LUBY_UNIT * _luby(1)
        max_learnts = max(4000, 2 * len(self.clauses))

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if len(self.trail_lim) == 0:
                    return result("unsat")
                if len(self.trail_lim) <= len(assumed):
                    # The conflict is forced by the assumptions alone.
                    self._cancel_until(0)
                    return result("unsat")
                learnt, backjump = self._analyze(conflict)
                # Backjumping below the assumption levels is fine: the
                # decision loop re-pushes assumptions on the way back down.
                self._cancel_until(backjump)
                self._record_learnt(learnt)
                self.var_inc *= self.var_decay
                conflicts_until_restart -= 1
                if (
                    conflict_budget is not None
                    and self.conflicts >= conflict_budget
                ):
                    self._cancel_until(0)
                    return result("unknown")
                if (
                    deadline is not None
                    and self.conflicts % 64 == 0
                    and time.monotonic() > deadline
                ):
                    self._cancel_until(0)
                    return result("unknown")
                continue

            if conflicts_until_restart <= 0:
                self.restarts += 1
                conflicts_until_restart = _LUBY_UNIT * _luby(self.restarts + 1)
                self._cancel_until(0)
                if len(self.learnts) > max_learnts:
                    self._reduce_learnts()
                continue

            if deadline is not None and time.monotonic() > deadline:
                self._cancel_until(0)
                return result("unknown")

            # Assumptions first, then activity-ordered free decisions.
            if len(self.trail_lim) < len(assumed):
                lit = assumed[len(self.trail_lim)]
                value = self._lit_value(lit)
                if value == 1:
                    self.trail_lim.append(len(self.trail))
                    continue
                if value == 0:
                    self._cancel_until(0)
                    return result("unsat")
            else:
                lit = self._decide()
                if lit == -1:
                    model = {
                        v + 1: self.assigns[v] == 1
                        for v in range(self.num_vars)
                    }
                    self._cancel_until(0)
                    return result("sat", model)
                self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)


def solve(
    cnf: Cnf,
    assumptions: Iterable[int] = (),
    time_budget: Optional[float] = None,
    conflict_budget: Optional[int] = None,
) -> SatResult:
    """Solve one CNF formula (fresh :class:`Solver` per call)."""
    return Solver(cnf).solve(
        assumptions=assumptions,
        time_budget=time_budget,
        conflict_budget=conflict_budget,
    )
