"""Dependency-free SAT layer: CNF construction and a small CDCL solver.

The exact engines of the repository — the exact reversible-pebbling
scheduler (:mod:`repro.reversible.exact_pebbling`) and exact small-LUT
ESOP synthesis (:mod:`repro.logic.exact_esop`) — reduce their optimisation
problems to propositional satisfiability.  This package keeps that
reduction self-contained:

``repro.sat.cnf``
    :class:`Cnf` — a clause database with fresh-variable allocation and
    the standard constraint encodings (at-most-one, exactly-one, sequential
    at-most-k cardinality, XOR links) used by the exact engines.

``repro.sat.solver``
    :class:`Solver` / :func:`solve` — a conflict-driven clause-learning
    (CDCL) solver with two-literal watching, first-UIP clause learning,
    VSIDS-style activity decision heuristics, phase saving and Luby
    restarts.  Every call takes an optional wall-clock/conflict budget and
    reports ``"sat"`` / ``"unsat"`` / ``"unknown"`` instead of running
    away, so exact engines degrade to their heuristic fallbacks instead of
    hanging a flow.

Literals use the DIMACS convention throughout: variables are positive
integers and a negative literal is the negated variable, so clause lists
round-trip to standard ``.cnf`` files via :meth:`Cnf.to_dimacs`.
"""

from repro.sat.cnf import Cnf
from repro.sat.solver import SatResult, Solver, solve

__all__ = ["Cnf", "SatResult", "Solver", "solve"]
