"""CNF formula construction for the exact engines.

A :class:`Cnf` is a growable clause database in the DIMACS convention
(variables are positive integers, negation is arithmetic negation).  On top
of raw clauses it provides the constraint encodings the exact engines lean
on:

* :meth:`Cnf.at_most_one` / :meth:`Cnf.exactly_one` — pairwise for small
  literal lists, the Sinz sequential encoding beyond
  :data:`_PAIRWISE_LIMIT` (linear instead of quadratic clause growth),
* :meth:`Cnf.at_most_k` — the sequential counter cardinality encoding
  (Sinz 2005), the pebble-budget constraint of the exact pebbler,
* :meth:`Cnf.xor_link` — a fresh/given variable constrained to the XOR of
  two literals, the parity-chain primitive of the exact ESOP encoder and
  of the pebble-move/state link.

Clauses are normalised on entry: duplicate literals collapse and
tautological clauses (containing ``l`` and ``-l``) are dropped.  Adding an
empty clause marks the formula contradictory, which the solver reports as
``unsat`` without any search.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["Cnf"]

#: Below this many literals the quadratic pairwise at-most-one encoding is
#: smaller (and propagates better) than the sequential one.
_PAIRWISE_LIMIT = 6


class Cnf:
    """A CNF formula under construction: variables, clauses, encodings."""

    def __init__(self, num_vars: int = 0):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        #: Set when an empty clause was added; the formula is trivially
        #: unsatisfiable and the solver short-circuits.
        self.contradiction = False

    # -- variables -----------------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable (a positive integer)."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    # -- clauses -------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause (an iterable of non-zero DIMACS literals).

        Duplicate literals are collapsed, tautologies are dropped, and an
        empty clause marks the formula contradictory.  Literals referencing
        variables beyond :attr:`num_vars` grow the variable count, so
        callers may also use plain consecutive integers without
        :meth:`new_var`.
        """
        seen = set()
        clause: List[int] = []
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if -literal in seen:
                return  # tautology: trivially satisfied
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
                variable = abs(literal)
                if variable > self.num_vars:
                    self.num_vars = variable
        if not clause:
            self.contradiction = True
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    def num_clauses(self) -> int:
        """Number of clauses added so far (tautologies excluded)."""
        return len(self.clauses)

    # -- constraint encodings ------------------------------------------------

    def at_most_one(self, literals: Sequence[int]) -> None:
        """At most one of ``literals`` is true.

        Pairwise for short lists, sequential (commander-free Sinz chain,
        one fresh variable per literal) beyond :data:`_PAIRWISE_LIMIT`.
        """
        literals = list(literals)
        if len(literals) <= 1:
            return
        if len(literals) <= _PAIRWISE_LIMIT:
            for i in range(len(literals)):
                for j in range(i + 1, len(literals)):
                    self.add_clause([-literals[i], -literals[j]])
            return
        # Sequential chain: s_i means "one of literals[0..i] is true".
        previous = literals[0]
        for literal in literals[1:-1]:
            register = self.new_var()
            self.add_clause([-previous, register])
            self.add_clause([-literal, register])
            self.add_clause([-literal, -previous])
            previous = register
        self.add_clause([-literals[-1], -previous])

    def exactly_one(self, literals: Sequence[int]) -> None:
        """Exactly one of ``literals`` is true."""
        literals = list(literals)
        if not literals:
            self.contradiction = True
            self.clauses.append([])
            return
        self.add_clause(literals)
        self.at_most_one(literals)

    def at_most_k(self, literals: Sequence[int], bound: int) -> None:
        """At most ``bound`` of ``literals`` are true (sequential counter).

        The Sinz sequential-counter encoding: register variable ``s[i][j]``
        means "at least ``j + 1`` of the first ``i + 1`` literals are
        true".  Linear in ``len(literals) * bound`` clauses and auxiliary
        variables, and arc-consistent under unit propagation — as soon as
        ``bound`` literals are true the remaining ones are propagated
        false, which is what makes the pebble-budget constraint cheap for
        the solver to reason about.
        """
        literals = list(literals)
        if bound < 0:
            raise ValueError("cardinality bound must be non-negative")
        if bound == 0:
            for literal in literals:
                self.add_clause([-literal])
            return
        if len(literals) <= bound:
            return
        previous: List[int] = []
        for index, literal in enumerate(literals):
            width = min(index + 1, bound)
            if index == len(literals) - 1:
                # The final register row is only needed for the overflow
                # clause; skip allocating it.
                self.add_clause([-literal, -previous[bound - 1]])
                break
            current = self.new_vars(width)
            self.add_clause([-literal, current[0]])
            for j, register in enumerate(previous[: width]):
                self.add_clause([-register, current[j]])
            for j in range(1, width):
                if j - 1 < len(previous):
                    self.add_clause(
                        [-literal, -previous[j - 1], current[j]]
                    )
            if len(previous) == bound:
                self.add_clause([-literal, -previous[bound - 1]])
            previous = current

    def xor_link(self, output: int, left: int, right: int) -> None:
        """Constrain ``output <-> left XOR right`` (four clauses)."""
        self.add_clause([-output, left, right])
        self.add_clause([-output, -left, -right])
        self.add_clause([output, -left, right])
        self.add_clause([output, left, -right])

    def equal_link(self, left: int, right: int) -> None:
        """Constrain ``left <-> right``."""
        self.add_clause([-left, right])
        self.add_clause([left, -right])

    # -- interchange ---------------------------------------------------------

    def to_dimacs(self) -> str:
        """The formula in DIMACS ``cnf`` format (for external debugging)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(literal) for literal in clause) + " 0")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"Cnf(num_vars={self.num_vars}, num_clauses={len(self.clauses)})"
        )
