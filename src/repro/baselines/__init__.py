"""Hand-crafted baseline designs of Table I: ``RESDIV`` and ``QNEWTON``."""

from repro.baselines.resdiv import build_resdiv_reciprocal, resdiv_resources
from repro.baselines.qnewton import qnewton_resources
from repro.baselines.common import BaselineCost

__all__ = [
    "BaselineCost",
    "build_resdiv_reciprocal",
    "qnewton_resources",
    "resdiv_resources",
]
