"""Shared result type for the baseline designs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["BaselineCost"]


@dataclass(frozen=True)
class BaselineCost:
    """Qubit and T-count figures of a baseline design.

    ``details`` holds a per-component breakdown (e.g. multiplier /
    normalisation / adders for QNEWTON) so that the benchmark output can be
    inspected.
    """

    name: str
    bitwidth: int
    qubits: int
    t_count: int
    details: Dict[str, int] = field(default_factory=dict)

    def as_row(self):
        """Row used by the Table I benchmark printer."""
        return (self.bitwidth, self.qubits, self.t_count)
