"""The ``RESDIV`` baseline: reciprocal via reversible restoring division.

Following Section V of the paper, the ``n``-bit reciprocal is obtained from
a ``2n``-bit restoring divider by dividing ``a = 2^n`` by ``b = x``.  The
divider is the gate-level construction of :mod:`repro.arith.divider`; the
cost figures are therefore *measured* on a real circuit (the paper's 3n-qubit
figure corresponds to the data registers only — our masked controlled adder
adds ``w + 1`` scratch qubits, a documented overhead of this reproduction).
"""

from __future__ import annotations

from typing import List

from repro.arith.adders import controlled_add, cuccaro_subtract
from repro.baselines.common import BaselineCost
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["build_resdiv_reciprocal", "resdiv_resources"]


def build_resdiv_reciprocal(n: int, name: str = "resdiv_reciprocal") -> ReversibleCircuit:
    """Reversible circuit computing ``y = floor(2^n / x)`` (low n bits).

    The circuit instantiates a ``2n``-bit restoring divider with the
    dividend hard-wired to ``2^n`` and the divisor's upper half hard-wired
    to zero; the primary inputs are the ``n`` bits of ``x`` and the primary
    outputs the ``n`` low quotient bits.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    width = 2 * n
    circuit = ReversibleCircuit(name)

    # Combined register: dividend 2^n (bit n set), upper half zero.
    d: List[int] = []
    for i in range(width):
        d.append(circuit.add_constant_line(1 if i == n else 0, f"d{i}"))
    for i in range(width):
        d.append(circuit.add_constant_line(0, f"r{i}"))

    divisor: List[int] = []
    for i in range(n):
        divisor.append(circuit.add_input_line(i, f"x{i}"))
    for i in range(n, width):
        divisor.append(circuit.add_constant_line(0, f"xz{i}"))

    mask = [circuit.add_constant_line(0, f"m{i}") for i in range(width)]
    carry = circuit.add_constant_line(0, "carry")

    for i in reversed(range(width)):
        window = d[i : i + width + 1]
        low = window[:-1]
        top = window[-1]
        cuccaro_subtract(circuit, divisor, low, carry, borrow_out=top)
        controlled_add(circuit, top, divisor, low, mask, carry)
        circuit.append(ToffoliGate.x(top))

    # Quotient bit i lives on line d[width + i]; the reciprocal keeps the
    # low n bits (the paper's INTDIV convention drops the overflow bit).
    for j in range(n):
        circuit.set_output(d[width + j], j)
    for line in range(circuit.num_lines()):
        info = circuit.line_info(line)
        if not info.is_output() and not info.is_input():
            circuit.set_garbage(line)
    return circuit


def resdiv_resources(n: int, model: str = "rtof") -> BaselineCost:
    """Measured qubit and T-count figures of ``RESDIV(n)``."""
    circuit = build_resdiv_reciprocal(n)
    return BaselineCost(
        name="RESDIV",
        bitwidth=n,
        qubits=circuit.num_lines(),
        t_count=circuit.t_count(model),
        details={
            "gates": circuit.num_gates(),
            "data_qubits": 3 * (2 * n),
            "scratch_qubits": circuit.num_lines() - 3 * (2 * n),
        },
    )
