"""The ``QNEWTON`` baseline: hand-crafted Newton–Raphson reciprocal.

The paper's QNEWTON is a manual quantum design (Section V): the input is
bit-shifted into ``[0.5, 1)``, Newton iterations are implemented with the
Cuccaro adder and textbook multiplication, and the *internal precision of
every iteration is chosen individually* so that only the final iteration
runs at full precision — this is what halves the qubit count with respect to
earlier Newton-based designs [12], [13].

The exact gate-by-gate layout of QNEWTON is not published, so this module
provides a **resource model grounded in real sub-circuits** (a documented
substitution, see DESIGN.md): for every Newton iteration the model
instantiates the actual reversible multiplier and adder circuits of
:mod:`repro.arith` at that iteration's precision, measures their qubit and
T-counts, and adds the cost of the normalisation/denormalisation barrel
shifters (Fredkin-gate ladders).  Qubit counts take the *peak* over the
iterations (ancillas are uncomputed and reused), T-counts the sum.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.arith.multiplier import build_multiplier
from repro.baselines.common import BaselineCost
from repro.hdl.designs import newton_iterations
from repro.quantum.tcount import mct_t_count
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate
from repro.arith.adders import cuccaro_add
from repro.utils.bitops import clog2

__all__ = ["qnewton_resources", "iteration_precisions"]


def iteration_precisions(n: int, guard_bits: int = 2) -> List[int]:
    """Internal precision of every Newton iteration (last one is full).

    Newton's method converges quadratically, so iteration ``k`` (counting
    from the end) only needs roughly ``n / 2**k`` correct bits; QNEWTON
    exploits exactly this.  A small number of guard bits absorbs the
    truncation errors.
    """
    iterations = newton_iterations(n)
    precisions = []
    for k in range(iterations):
        required = math.ceil(n / (1 << (iterations - 1 - k)))
        precisions.append(min(n, required) + guard_bits)
    return precisions


def _adder_t_count(width: int, model: str) -> int:
    """Measured T-count of a ``width``-bit Cuccaro adder."""
    circuit = ReversibleCircuit("adder_probe")
    a = [circuit.add_input_line(i) for i in range(width)]
    b = [circuit.add_input_line(width + i) for i in range(width)]
    carry = circuit.add_constant_line(0)
    out = circuit.add_constant_line(0)
    cuccaro_add(circuit, a, b, carry, carry_out=out)
    return circuit.t_count(model)


def _fredkin_t_count(model: str) -> int:
    """A controlled swap costs one Toffoli (plus two CNOTs)."""
    return mct_t_count(2, model)


def qnewton_resources(n: int, model: str = "rtof", guard_bits: int = 2) -> BaselineCost:
    """Qubit and T-count figures of the ``QNEWTON(n)`` baseline."""
    if n <= 0:
        raise ValueError("n must be positive")

    precisions = iteration_precisions(n, guard_bits)
    exponent_bits = clog2(n + 1)

    peak_scratch = 0
    total_t = 0
    details: Dict[str, int] = {}

    # Normalisation and final denormalisation: a barrel shifter over the
    # n-bit input controlled by the exponent bits (Fredkin ladder), plus the
    # priority encoder computing the exponent (one Toffoli per bit).
    shifter_fredkins = 2 * n * exponent_bits
    encoder_toffolis = n
    normalisation_t = (shifter_fredkins + encoder_toffolis) * _fredkin_t_count(model)
    total_t += normalisation_t
    details["normalisation_t"] = normalisation_t

    multiplier_t = 0
    adder_t = 0
    for width in precisions:
        multiplier = build_multiplier(width)
        # Two multiplications per iteration (x' * x_i and x_i * t), each
        # computed and uncomputed (Bennett-style) so ancillas can be reused.
        multiplier_t += 4 * multiplier.t_count(model)
        # One subtraction (2 - x' x_i) and one addition per iteration.
        adder_t += 2 * _adder_t_count(width, model)
        # Scratch needed while an iteration is in flight: two product
        # registers, the mask register and the ripple carry.
        scratch = 2 * (2 * width) + width + 1
        peak_scratch = max(peak_scratch, scratch)
    total_t += multiplier_t + adder_t
    details["multiplier_t"] = multiplier_t
    details["adder_t"] = adder_t

    # Persistent registers: the input x, the exponent, and the current
    # iterate at the final (full) precision with its integer guard bits.
    iterate_bits = precisions[-1] + 3
    qubits = n + exponent_bits + iterate_bits + peak_scratch
    details["iterate_bits"] = iterate_bits
    details["peak_scratch"] = peak_scratch

    return BaselineCost(
        name="QNEWTON",
        bitwidth=n,
        qubits=qubits,
        t_count=total_t,
        details=details,
    )
