"""Reversible arithmetic building blocks.

These are the components the hand-crafted baselines of Table I are made of:
the Cuccaro ripple-carry adder [25], in-place subtraction, controlled
addition, an out-of-place textbook multiplier and the restoring divider
behind ``RESDIV``.  All constructions emit real gate cascades into a
:class:`repro.reversible.circuit.ReversibleCircuit`, so their qubit and
T-counts are measured rather than estimated.
"""

from repro.arith.adders import (
    controlled_add,
    cuccaro_add,
    cuccaro_subtract,
)
from repro.arith.divider import build_restoring_divider
from repro.arith.fixed_point import FixedPointFormat, from_fixed, to_fixed
from repro.arith.multiplier import build_multiplier

__all__ = [
    "FixedPointFormat",
    "build_multiplier",
    "build_restoring_divider",
    "controlled_add",
    "cuccaro_add",
    "cuccaro_subtract",
    "from_fixed",
    "to_fixed",
]
