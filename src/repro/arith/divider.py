"""Reversible restoring division (the ``RESDIV`` baseline of Table I).

The construction follows the classical restoring algorithm operating on a
``2n``-bit combined register (high half: running remainder, low half:
dividend).  For every quotient bit, the divisor is subtracted from an
``(n+1)``-bit window of the combined register; if the subtraction borrows,
the low ``n`` bits of the window are restored by a controlled addition and
the window's top bit — which is not part of any later window — records the
(complemented) borrow, i.e. the quotient bit after a final NOT.

Register layout (``3n`` data lines as in the baseline of the paper, plus
``n + 1`` scratch lines for the masked controlled adder and the ripple
carry — a documented overhead of this reproduction):

* ``d[0 .. 2n-1]`` — dividend (low half) / remainder+quotient (after),
* ``b[0 .. n-1]``  — divisor (preserved),
* ``mask[0 .. n-1]``, ``carry`` — scratch, restored to zero.

After the cascade, ``d[n .. 2n-1]`` holds the quotient bits interleaved out
of the iteration order (bit ``n + i`` is quotient bit ``i``) and
``d[0 .. n-1]`` holds the remainder.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arith.adders import controlled_add, cuccaro_subtract
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["build_restoring_divider", "divider_reference"]


def divider_reference(width: int, dividend: int, divisor: int) -> Tuple[int, int]:
    """Reference semantics of the restoring divider.

    Returns ``(quotient, remainder)``; division by zero yields the all-ones
    quotient and the dividend as remainder, matching both the bit-blasted
    divider of the HDL front-end and the reversible construction.
    """
    mask = (1 << width) - 1
    dividend &= mask
    divisor &= mask
    if divisor == 0:
        return mask, dividend
    return dividend // divisor, dividend % divisor


def build_restoring_divider(width: int, name: str = "resdiv") -> ReversibleCircuit:
    """Build the reversible restoring divider for ``width``-bit operands.

    Inputs: dividend bits 0..width-1, divisor bits width..2*width-1.
    Outputs: quotient bits 0..width-1, remainder bits width..2*width-1.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    circuit = ReversibleCircuit(name)

    # Combined register: low half dividend, high half zero (remainder).
    d: List[int] = []
    for i in range(width):
        d.append(circuit.add_input_line(i, f"a{i}"))
    for i in range(width):
        d.append(circuit.add_constant_line(0, f"r{i}"))

    divisor = [
        circuit.add_input_line(width + i, f"b{i}") for i in range(width)
    ]
    mask = [circuit.add_constant_line(0, f"m{i}") for i in range(width)]
    carry = circuit.add_constant_line(0, "carry")

    for i in reversed(range(width)):
        window = d[i : i + width + 1]
        low = window[:-1]
        top = window[-1]
        # window := window - divisor (with the borrow landing on the top bit).
        cuccaro_subtract(circuit, divisor, low, carry, borrow_out=top)
        # Restore the low part when the subtraction borrowed.
        controlled_add(circuit, top, divisor, low, mask, carry)
        # The top bit becomes the quotient bit (complement of the borrow).
        circuit.append(ToffoliGate.x(top))

    # Boundary roles: quotient bit i ends up on line d[width + i] (the top
    # bit of window i); the remainder occupies d[0..width-1].
    for i in range(width):
        circuit.set_output(d[width + i], i)
    for i in range(width):
        circuit.set_output(d[i], width + i)
    return circuit
