"""Fixed-point number helpers (the ``Q3.w`` format of Section III).

These utilities convert between Python floats/ints and the fixed-point bit
patterns used by the NEWTON design and the QNEWTON baseline, and model the
truncating multiplication ``u *_w v`` of the paper.  They are used by the
tests (to cross-check the Verilog NEWTON datapath) and by the QNEWTON
resource model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FixedPointFormat", "to_fixed", "from_fixed", "truncated_multiply"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A ``Qi.f`` fixed-point format with ``integer_bits`` + ``fraction_bits``."""

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fraction_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if self.total_bits() == 0:
            raise ValueError("format must have at least one bit")

    def total_bits(self) -> int:
        """Total width of the format."""
        return self.integer_bits + self.fraction_bits

    def scale(self) -> int:
        """The scaling factor ``2**fraction_bits``."""
        return 1 << self.fraction_bits

    def max_value(self) -> float:
        """Largest representable value (unsigned interpretation)."""
        return ((1 << self.total_bits()) - 1) / self.scale()


def to_fixed(value: float, fmt: FixedPointFormat) -> int:
    """Encode a non-negative real value (truncating towards zero)."""
    if value < 0:
        raise ValueError("only non-negative values are supported")
    encoded = int(value * fmt.scale())
    if encoded >> fmt.total_bits():
        raise ValueError(f"value {value} does not fit in {fmt}")
    return encoded


def from_fixed(encoded: int, fmt: FixedPointFormat) -> float:
    """Decode a fixed-point bit pattern to a float."""
    if encoded < 0 or encoded >> fmt.total_bits():
        raise ValueError("bit pattern out of range for the format")
    return encoded / fmt.scale()


def truncated_multiply(
    u: int, u_fmt: FixedPointFormat, v: int, v_fmt: FixedPointFormat, out_fmt: FixedPointFormat
) -> int:
    """The paper's ``u *_w v``: full product, then truncation to ``out_fmt``.

    The full product has ``u_fmt.fraction_bits + v_fmt.fraction_bits``
    fraction bits; the least significant fraction bits are dropped and the
    result is reduced modulo the output width (dropping the most significant
    integer bits, as the paper's operator does).
    """
    product = u * v
    shift = u_fmt.fraction_bits + v_fmt.fraction_bits - out_fmt.fraction_bits
    if shift < 0:
        product <<= -shift
    else:
        product >>= shift
    return product & ((1 << out_fmt.total_bits()) - 1)
