"""Out-of-place reversible textbook multiplier.

Computes ``product := a * b`` (``2n`` result bits) for two ``n``-bit
registers with the shift-and-add scheme: for every bit ``a_i`` the addend
``b`` is added into the product window starting at bit ``i``, controlled on
``a_i``.  The controlled additions use the masked-adder of
:mod:`repro.arith.adders`, so the construction needs ``n`` scratch lines and
one carry ancilla, all of which are restored.

This is the "textbook multiplication" building block of the ``QNEWTON``
baseline (Section V of the paper).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.arith.adders import controlled_add
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["multiply_into", "build_multiplier"]


def multiply_into(
    circuit: ReversibleCircuit,
    a: Sequence[int],
    b: Sequence[int],
    product: Sequence[int],
    mask: Sequence[int],
    carry_ancilla: int,
) -> None:
    """Append gates computing ``product ^= a * b`` (product initially 0).

    ``product`` must provide ``len(a) + len(b)`` lines, ``mask`` at least
    ``len(b)`` zero-initialised scratch lines.
    """
    if len(product) < len(a) + len(b):
        raise ValueError("product register is too narrow")
    if len(mask) < len(b):
        raise ValueError("mask register is too narrow")

    width_b = len(b)
    for i, control in enumerate(a):
        window = list(product[i : i + width_b + 1])
        target = window[:-1] if len(window) > width_b else window
        carry_out = window[-1] if len(window) > width_b else None
        controlled_add(
            circuit,
            control,
            list(b),
            target,
            list(mask[:width_b]),
            carry_ancilla,
            carry_out=carry_out,
        )


def build_multiplier(width: int, name: str = "multiplier") -> ReversibleCircuit:
    """A complete ``width x width -> 2*width`` multiplier circuit.

    Line layout: ``a`` (inputs 0..width-1), ``b`` (inputs width..2*width-1),
    product (outputs, 2*width lines), mask scratch (width lines), one carry
    ancilla.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    circuit = ReversibleCircuit(name)
    a = [circuit.add_input_line(i, f"a{i}") for i in range(width)]
    b = [circuit.add_input_line(width + i, f"b{i}") for i in range(width)]
    product = []
    for j in range(2 * width):
        line = circuit.add_constant_line(0, f"p{j}")
        circuit.set_output(line, j)
        product.append(line)
    mask = [circuit.add_constant_line(0, f"m{j}") for j in range(width)]
    carry = circuit.add_constant_line(0, "carry")
    multiply_into(circuit, a, b, product, mask, carry)
    return circuit
