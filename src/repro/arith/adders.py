"""Reversible in-place adders (Cuccaro et al. [25]) and derived operations.

The central primitive is :func:`cuccaro_add`, the ripple-carry adder built
from MAJ/UMA blocks: it maps ``(a, b) -> (a, a + b)`` using a single ancilla
for the incoming carry (restored to its initial value) and an optional
carry-out line.  Subtraction and controlled addition are derived from it:

* ``b := b - a`` by conjugating the target register with X gates,
* controlled addition by masking the addend into scratch lines with Toffoli
  gates (``mask := a AND control``), adding the mask and uncomputing it.
  This needs ``len(a)`` scratch lines but keeps the adder itself untouched,
  which is the simplest provably-correct controlled adder; the extra lines
  are reused by every invocation inside the dividers/multipliers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["cuccaro_add", "cuccaro_subtract", "controlled_add"]


def _check_lines(circuit: ReversibleCircuit, lines: Sequence[int]) -> None:
    for line in lines:
        if not 0 <= line < circuit.num_lines():
            raise ValueError(f"line {line} does not exist in the circuit")
    if len(set(lines)) != len(lines):
        raise ValueError("register lines must be distinct")


def _maj(circuit: ReversibleCircuit, carry: int, b: int, a: int) -> None:
    circuit.append(ToffoliGate.cnot(a, b))
    circuit.append(ToffoliGate.cnot(a, carry))
    circuit.append(ToffoliGate.toffoli(carry, b, a))


def _uma(circuit: ReversibleCircuit, carry: int, b: int, a: int) -> None:
    circuit.append(ToffoliGate.toffoli(carry, b, a))
    circuit.append(ToffoliGate.cnot(a, carry))
    circuit.append(ToffoliGate.cnot(carry, b))


def cuccaro_add(
    circuit: ReversibleCircuit,
    addend: Sequence[int],
    target: Sequence[int],
    carry_ancilla: int,
    carry_out: Optional[int] = None,
) -> None:
    """In-place ripple-carry addition ``target := target + addend``.

    ``addend`` and ``target`` are equal-length line lists (least significant
    bit first).  ``carry_ancilla`` must hold 0 and is restored.  If
    ``carry_out`` is given, that line is XORed with the carry out of the
    most significant position.
    """
    if len(addend) != len(target):
        raise ValueError("addend and target must have the same width")
    if not addend:
        return
    all_lines = list(addend) + list(target) + [carry_ancilla]
    if carry_out is not None:
        all_lines.append(carry_out)
    _check_lines(circuit, all_lines)

    width = len(addend)
    carries = [carry_ancilla] + [addend[i - 1] for i in range(1, width)]

    for i in range(width):
        _maj(circuit, carries[i], target[i], addend[i])
    if carry_out is not None:
        circuit.append(ToffoliGate.cnot(addend[width - 1], carry_out))
    for i in reversed(range(width)):
        _uma(circuit, carries[i], target[i], addend[i])


def cuccaro_subtract(
    circuit: ReversibleCircuit,
    subtrahend: Sequence[int],
    target: Sequence[int],
    carry_ancilla: int,
    borrow_out: Optional[int] = None,
) -> None:
    """In-place subtraction ``target := target - subtrahend`` (mod ``2**w``).

    Implemented as ``target := ~(~target + subtrahend)``; if ``borrow_out``
    is given it is XORed with 1 exactly when ``target < subtrahend`` held
    before the operation (i.e. it receives the borrow).
    """
    for line in target:
        circuit.append(ToffoliGate.x(line))
    cuccaro_add(circuit, subtrahend, target, carry_ancilla, carry_out=borrow_out)
    for line in target:
        circuit.append(ToffoliGate.x(line))


def controlled_add(
    circuit: ReversibleCircuit,
    control: int,
    addend: Sequence[int],
    target: Sequence[int],
    mask: Sequence[int],
    carry_ancilla: int,
    carry_out: Optional[int] = None,
) -> None:
    """Controlled in-place addition ``target := target + (control ? addend : 0)``.

    ``mask`` is a list of ``len(addend)`` scratch lines holding 0; they are
    used to hold ``addend AND control`` during the addition and are restored
    afterwards.
    """
    if len(mask) != len(addend):
        raise ValueError("mask register must have the same width as the addend")
    _check_lines(circuit, list(mask) + [control])

    for source, scratch in zip(addend, mask):
        circuit.append(ToffoliGate.toffoli(control, source, scratch))
    cuccaro_add(circuit, mask, target, carry_ancilla, carry_out=carry_out)
    for source, scratch in zip(addend, mask):
        circuit.append(ToffoliGate.toffoli(control, source, scratch))
