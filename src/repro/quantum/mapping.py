"""Mapping reversible Toffoli cascades into Clifford+T quantum circuits.

This is the final hop of the paper's flow (reversible synthesis level to
quantum level): every mixed-polarity multiple-controlled Toffoli gate is
expanded into the Clifford+T gate set, under one of the two cost models the
paper reports:

* NOT and CNOT gates map directly (negative controls are conjugated with X
  gates, which are Clifford and therefore free in the T-count),
* a two-control Toffoli uses the standard 7-T decomposition,
* a k-control Toffoli (k >= 3) uses a clean-ancilla AND-chain of ``2k - 3``
  Toffolis (Barenco et al. style); the ancilla register is shared between
  all gates of the cascade.  Under ``model="barenco"`` every chain link is
  a full 7-T Toffoli; under ``model="rtof"`` (the default, Maslov 2016) the
  ``2(k - 2)`` compute/uncompute links are 4-T *relative-phase* Toffolis —
  correct up to a diagonal of phases — and only the middle gate stays a
  full Toffoli.  The uncompute half applies the exact adjoint of the
  compute half on unchanged chain controls, so the relative phases cancel
  and the overall circuit acts as the plain classical permutation on
  computational basis states (verified end-to-end by the differential
  checker, not gate by gate).

The resulting explicit T-count equals the matching closed-form model of
:mod:`repro.quantum.tcount` gate for gate; :func:`map_to_clifford_t`
asserts this for every expanded gate, so the paper's headline cost numbers
are realized as actual circuits rather than merely predicted.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.quantum.circuit import GATE_ADJOINTS, QuantumCircuit, QuantumGate
from repro.quantum.tcount import available_models, mct_t_count
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = [
    "map_to_clifford_t",
    "relative_phase_toffoli",
    "relative_phase_toffoli_adjoint",
    "toffoli_clifford_t",
]


def toffoli_clifford_t(control_a: int, control_b: int, target: int) -> List[QuantumGate]:
    """The standard 7-T Clifford+T decomposition of a positive Toffoli gate."""
    g = QuantumGate
    return [
        g("h", (target,)),
        g("cx", (control_b, target)),
        g("tdg", (target,)),
        g("cx", (control_a, target)),
        g("t", (target,)),
        g("cx", (control_b, target)),
        g("tdg", (target,)),
        g("cx", (control_a, target)),
        g("t", (control_b,)),
        g("t", (target,)),
        g("h", (target,)),
        g("cx", (control_a, control_b)),
        g("t", (control_a,)),
        g("tdg", (control_b,)),
        g("cx", (control_a, control_b)),
    ]


def relative_phase_toffoli(
    control_a: int, control_b: int, target: int
) -> List[QuantumGate]:
    """Maslov's 4-T relative-phase Toffoli (RTOF).

    Acts as a Toffoli up to a relative phase of ``-i`` on the basis states
    with both controls set: ``|a b t> -> (-i)^{ab} |a b, t ^ ab>``.  Exact
    when compute/uncompute-paired with :func:`relative_phase_toffoli_adjoint`
    on unchanged controls, which is how the AND chains of
    :func:`map_to_clifford_t` use it.
    """
    g = QuantumGate
    return [
        g("h", (target,)),
        g("t", (target,)),
        g("cx", (control_b, target)),
        g("tdg", (target,)),
        g("cx", (control_a, target)),
        g("t", (target,)),
        g("cx", (control_b, target)),
        g("tdg", (target,)),
        g("cx", (control_a, target)),
        g("h", (target,)),
    ]


def relative_phase_toffoli_adjoint(
    control_a: int, control_b: int, target: int
) -> List[QuantumGate]:
    """The exact adjoint of :func:`relative_phase_toffoli` (also 4 T gates)."""
    return [
        QuantumGate(GATE_ADJOINTS[gate.name], gate.qubits)
        for gate in reversed(relative_phase_toffoli(control_a, control_b, target))
    ]


def _emit_negative_control_wrappers(
    circuit: QuantumCircuit, gate: ToffoliGate
) -> List[int]:
    """Apply X to negative-control qubits; returns the wrapped qubits."""
    wrapped = list(gate.negative_controls())
    for qubit in wrapped:
        circuit.add("x", qubit)
    return wrapped


def _emit_plain_mct(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
    model: str,
) -> None:
    """Emit a positive-control MCT using a clean-ancilla AND chain.

    ``model`` selects the chain-link decomposition: full 7-T Toffolis
    (``"barenco"``) or 4-T relative-phase Toffolis with their adjoints on
    the uncompute half (``"rtof"``).  The middle gate is a full Toffoli in
    both models.
    """
    k = len(controls)
    if k == 0:
        circuit.add("x", target)
        return
    if k == 1:
        circuit.add("cx", controls[0], target)
        return
    if k == 2:
        circuit.extend(toffoli_clifford_t(controls[0], controls[1], target))
        return

    needed = k - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"gate with {k} controls needs {needed} ancilla qubits, "
            f"got {len(ancillas)}"
        )
    chain: List[Tuple[int, int, int]] = []
    chain.append((controls[0], controls[1], ancillas[0]))
    for i in range(k - 3):
        chain.append((ancillas[i], controls[i + 2], ancillas[i + 1]))

    compute = toffoli_clifford_t if model == "barenco" else relative_phase_toffoli
    uncompute = (
        toffoli_clifford_t if model == "barenco" else relative_phase_toffoli_adjoint
    )
    for a, b, t in chain:
        circuit.extend(compute(a, b, t))
    circuit.extend(toffoli_clifford_t(ancillas[needed - 1], controls[-1], target))
    for a, b, t in reversed(chain):
        circuit.extend(uncompute(a, b, t))


def map_to_clifford_t(
    circuit: ReversibleCircuit, model: str = "rtof"
) -> QuantumCircuit:
    """Expand a reversible circuit into an explicit Clifford+T circuit.

    ``model`` is one of the closed-form T-count models of
    :mod:`repro.quantum.tcount` (``"rtof"``, the default, or
    ``"barenco"``); the expansion of every gate is asserted to spend
    exactly :func:`~repro.quantum.tcount.mct_t_count` T gates, so the
    explicit circuit realizes the closed form rather than approximating
    it.  The quantum circuit has the reversible circuit's lines as its
    first qubits, followed by ``max(0, max_controls - 2)`` shared clean
    ancilla qubits used by the large-gate decompositions.
    """
    if model not in available_models():
        raise ValueError(f"unknown T-count model {model!r}")
    # Trivial gates are skipped and duplicate entries deduplicated below,
    # so the ancilla register is sized from the *normalised* gate list —
    # a wide unsatisfiable gate must not inflate the mapped qubit count.
    gates = []
    max_controls = 0
    for gate in circuit.iter_gates():
        if gate.is_unsatisfiable():
            # The identity: costs nothing in the closed forms either.
            continue
        if gate.has_duplicate_controls():
            gate = gate.normalized()
        gates.append(gate)
        max_controls = max(max_controls, gate.num_controls())
    extra = max(0, max_controls - 2)
    result = QuantumCircuit(
        circuit.num_lines() + extra, name=f"{circuit.name}_cliffordt"
    )
    ancillas = list(range(circuit.num_lines(), circuit.num_lines() + extra))

    emitted_t = 0
    for gate in gates:
        wrapped = _emit_negative_control_wrappers(result, gate)
        controls = [line for line, _ in gate.controls]
        before = len(result._gates)
        _emit_plain_mct(result, controls, gate.target, ancillas, model)
        gate_t = sum(
            1 for g in result._gates[before:] if g.is_t_like()
        )
        assert gate_t == mct_t_count(gate.num_controls(), model), (
            f"explicit {model} expansion of {gate} spent {gate_t} T gates, "
            f"closed form says {mct_t_count(gate.num_controls(), model)}"
        )
        emitted_t += gate_t
        for qubit in wrapped:
            result.add("x", qubit)
    assert emitted_t == result.t_count()
    return result
