"""Mapping reversible Toffoli cascades into Clifford+T quantum circuits.

This is the final hop of the paper's flow (reversible synthesis level to
quantum level): every mixed-polarity multiple-controlled Toffoli gate is
expanded into the Clifford+T gate set.

* NOT and CNOT gates map directly (negative controls are conjugated with X
  gates, which are Clifford and therefore free in the T-count),
* a two-control Toffoli uses the standard 7-T decomposition,
* a k-control Toffoli (k >= 3) uses a clean-ancilla AND-chain of ``2k - 3``
  Toffolis (Barenco et al. style); the ancilla register is shared between
  all gates of the cascade.

The resulting explicit T-count equals the closed-form ``"barenco"`` model of
:mod:`repro.quantum.tcount`, which the test-suite asserts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.quantum.circuit import QuantumCircuit, QuantumGate
from repro.reversible.circuit import ReversibleCircuit
from repro.reversible.gates import ToffoliGate

__all__ = ["toffoli_clifford_t", "map_to_clifford_t"]


def toffoli_clifford_t(control_a: int, control_b: int, target: int) -> List[QuantumGate]:
    """The standard 7-T Clifford+T decomposition of a positive Toffoli gate."""
    g = QuantumGate
    return [
        g("h", (target,)),
        g("cx", (control_b, target)),
        g("tdg", (target,)),
        g("cx", (control_a, target)),
        g("t", (target,)),
        g("cx", (control_b, target)),
        g("tdg", (target,)),
        g("cx", (control_a, target)),
        g("t", (control_b,)),
        g("t", (target,)),
        g("h", (target,)),
        g("cx", (control_a, control_b)),
        g("t", (control_a,)),
        g("tdg", (control_b,)),
        g("cx", (control_a, control_b)),
    ]


def _emit_negative_control_wrappers(
    circuit: QuantumCircuit, gate: ToffoliGate
) -> List[int]:
    """Apply X to negative-control qubits; returns the wrapped qubits."""
    wrapped = list(gate.negative_controls())
    for qubit in wrapped:
        circuit.add("x", qubit)
    return wrapped


def _emit_plain_mct(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> None:
    """Emit a positive-control MCT using a clean-ancilla AND chain."""
    k = len(controls)
    if k == 0:
        circuit.add("x", target)
        return
    if k == 1:
        circuit.add("cx", controls[0], target)
        return
    if k == 2:
        circuit.extend(toffoli_clifford_t(controls[0], controls[1], target))
        return

    needed = k - 2
    if len(ancillas) < needed:
        raise ValueError(
            f"gate with {k} controls needs {needed} ancilla qubits, "
            f"got {len(ancillas)}"
        )
    chain: List[Tuple[int, int, int]] = []
    chain.append((controls[0], controls[1], ancillas[0]))
    for i in range(k - 3):
        chain.append((ancillas[i], controls[i + 2], ancillas[i + 1]))

    for a, b, t in chain:
        circuit.extend(toffoli_clifford_t(a, b, t))
    circuit.extend(toffoli_clifford_t(ancillas[needed - 1], controls[-1], target))
    for a, b, t in reversed(chain):
        circuit.extend(toffoli_clifford_t(a, b, t))


def map_to_clifford_t(circuit: ReversibleCircuit) -> QuantumCircuit:
    """Expand a reversible circuit into an explicit Clifford+T circuit.

    The quantum circuit has the reversible circuit's lines as its first
    qubits, followed by ``max(0, max_controls - 2)`` shared clean ancilla
    qubits used by the large-gate decompositions.
    """
    extra = max(0, circuit.max_controls() - 2)
    result = QuantumCircuit(circuit.num_lines() + extra, name=f"{circuit.name}_cliffordt")
    ancillas = list(range(circuit.num_lines(), circuit.num_lines() + extra))

    for gate in circuit.gates():
        wrapped = _emit_negative_control_wrappers(result, gate)
        controls = [line for line, _ in gate.controls]
        _emit_plain_mct(result, controls, gate.target, ancillas)
        for qubit in wrapped:
            result.add("x", qubit)
    return result
