"""Resource estimation of Clifford+T circuits.

Fault-tolerant execution is dominated by the T gates — their count, but
also how many *layers* of them the circuit needs when commuting T gates on
distinct qubits run in parallel (the T-depth, which bounds the magic-state
distillation pipeline depth).  This module computes the standard resource
vector of an explicit :class:`~repro.quantum.circuit.QuantumCircuit` in a
single pass:

* ``t_count`` — number of T / T-dagger gates,
* ``t_depth`` — greedy layering of commuting T gates: T gates whose qubit
  histories have already synchronised share a layer, every other gate
  (Clifford) merges qubit timelines without opening a new T layer,
* ``depth`` — total circuit depth under the same greedy schedule with
  every gate counted,
* ``num_qubits`` / ``num_gates`` / ``gate_counts`` — the size metrics and
  the per-gate-name histogram.

:class:`ResourceEstimate` is what the flows fold into
:class:`repro.core.cost.CostReport` when a ``map_model`` is selected, so
T-depth and circuit depth become first-class, cacheable cost metrics next
to the closed-form T-count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.quantum.circuit import _T_GATES, QuantumCircuit

__all__ = ["ResourceEstimate", "estimate_resources", "estimate_resources_reference"]


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource vector of one explicit Clifford+T circuit."""

    num_qubits: int
    num_gates: int
    t_count: int
    t_depth: int
    depth: int
    gate_counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary (stable key order)."""
        return {
            "num_qubits": self.num_qubits,
            "num_gates": self.num_gates,
            "t_count": self.t_count,
            "t_depth": self.t_depth,
            "depth": self.depth,
            "gate_counts": dict(sorted(self.gate_counts.items())),
        }


def estimate_resources(circuit: QuantumCircuit) -> ResourceEstimate:
    """Measure a Clifford+T circuit in one pass over its gate list.

    Both depths are greedy as-soon-as-possible schedules: a gate starts as
    soon as all of its qubits are free.  For the T-depth only T-like layers
    are counted — Clifford gates synchronise the qubit timelines they touch
    but do not open a layer of their own, which is exactly the greedy
    "commuting T gates share a layer" policy.

    The sweep is specialised to the 1- and 2-qubit gates of
    :data:`~repro.quantum.circuit.SUPPORTED_GATES` (no generator-``max``
    per gate, no gate-list copy), which matters on the million-gate
    Clifford+T expansions of the symbolic flow;
    :func:`estimate_resources_reference` keeps the generic loop as the
    oracle the property tests compare against.
    """
    t_levels = [0] * circuit.num_qubits
    depth_levels = [0] * circuit.num_qubits
    t_count = 0
    counts: Dict[str, int] = {}
    for gate in circuit.iter_gates():
        name = gate.name
        counts[name] = counts.get(name, 0) + 1
        qubits = gate.qubits
        if len(qubits) == 1:
            q = qubits[0]
            depth_levels[q] += 1
            if name in _T_GATES:
                t_count += 1
                t_levels[q] += 1
        else:
            a, b = qubits
            level = depth_levels[a]
            other = depth_levels[b]
            if other > level:
                level = other
            depth_levels[a] = depth_levels[b] = level + 1
            t_level = t_levels[a]
            other = t_levels[b]
            if other > t_level:
                t_level = other
            t_levels[a] = t_levels[b] = t_level
    return ResourceEstimate(
        num_qubits=circuit.num_qubits,
        num_gates=circuit.num_gates(),
        t_count=t_count,
        t_depth=max(t_levels, default=0),
        depth=max(depth_levels, default=0),
        gate_counts=counts,
    )


def estimate_resources_reference(circuit: QuantumCircuit) -> ResourceEstimate:
    """Generic per-gate sweep — the oracle for :func:`estimate_resources`."""
    t_levels = [0] * circuit.num_qubits
    depth_levels = [0] * circuit.num_qubits
    t_count = 0
    counts: Dict[str, int] = {}
    for gate in circuit.gates():
        counts[gate.name] = counts.get(gate.name, 0) + 1
        t_level = max(t_levels[q] for q in gate.qubits)
        depth_level = max(depth_levels[q] for q in gate.qubits) + 1
        if gate.is_t_like():
            t_count += 1
            t_level += 1
        for q in gate.qubits:
            t_levels[q] = t_level
            depth_levels[q] = depth_level
    return ResourceEstimate(
        num_qubits=circuit.num_qubits,
        num_gates=circuit.num_gates(),
        t_count=t_count,
        t_depth=max(t_levels, default=0),
        depth=max(depth_levels, default=0),
        gate_counts=counts,
    )
