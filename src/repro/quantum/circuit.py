"""A minimal Clifford+T quantum circuit representation.

Only what the reproduction needs: a gate list over a fixed number of qubits,
gate-count statistics (T-count, T-depth estimate) and conversion hooks for
the statevector simulator.  Gates are identified by name; the supported set
is listed in :data:`SUPPORTED_GATES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = ["GATE_ADJOINTS", "QuantumGate", "QuantumCircuit", "SUPPORTED_GATES"]


#: Gate name -> number of qubits it acts on.
SUPPORTED_GATES: Dict[str, int] = {
    "x": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "cx": 2,
    "cz": 2,
}

#: Gate name -> name of its adjoint (self-inverse gates map to themselves).
#: The single source the mapper's adjoint construction and the ``qc_cancel``
#: inverse-pair cancellation both read, so they can never desynchronize.
GATE_ADJOINTS: Dict[str, str] = {
    "x": "x",
    "z": "z",
    "h": "h",
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "cx": "cx",
    "cz": "cz",
}

_T_GATES = {"t", "tdg"}


@dataclass(frozen=True)
class QuantumGate:
    """A named gate applied to an ordered tuple of qubits."""

    name: str
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.name not in SUPPORTED_GATES:
            raise ValueError(f"unsupported gate {self.name!r}")
        if len(self.qubits) != SUPPORTED_GATES[self.name]:
            raise ValueError(
                f"gate {self.name!r} expects {SUPPORTED_GATES[self.name]} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError("gate qubits must be distinct")
        if any(q < 0 for q in self.qubits):
            raise ValueError("qubit indices must be non-negative")

    def is_t_like(self) -> bool:
        """True for T / T-dagger gates."""
        return self.name in _T_GATES


class QuantumCircuit:
    """A gate cascade over ``num_qubits`` qubits."""

    #: Target tag of the :mod:`repro.opt` pass manager (cf.
    #: :func:`repro.opt.targets.target_kind`).
    network_type = "qc"

    def __init__(self, num_qubits: int, name: str = "qc"):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = num_qubits
        self.name = name
        self._gates: List[QuantumGate] = []

    # -- construction --------------------------------------------------------

    def add(self, name: str, *qubits: int) -> None:
        """Append a gate by name."""
        gate = QuantumGate(name, tuple(qubits))
        if any(q >= self.num_qubits for q in qubits):
            raise ValueError(f"gate {gate} exceeds qubit count {self.num_qubits}")
        self._gates.append(gate)

    def extend(self, gates: Iterable[QuantumGate]) -> None:
        """Append several gates."""
        for gate in gates:
            self.add(gate.name, *gate.qubits)

    def copy(self) -> "QuantumCircuit":
        """An independent copy of the circuit."""
        result = QuantumCircuit(self.num_qubits, name=self.name)
        result._gates = list(self._gates)
        return result

    def with_gates(self, gates: Iterable[QuantumGate]) -> "QuantumCircuit":
        """A copy over the same qubits but with a different gate cascade."""
        result = QuantumCircuit(self.num_qubits, name=self.name)
        result.extend(gates)
        return result

    # -- statistics ------------------------------------------------------------

    def gates(self) -> List[QuantumGate]:
        """The gate list in application order (a fresh list)."""
        return list(self._gates)

    def iter_gates(self) -> Iterable[QuantumGate]:
        """Iterate the gate list without copying it."""
        return iter(self._gates)

    def num_gates(self) -> int:
        """Total number of gates."""
        return len(self._gates)

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def t_count(self) -> int:
        """Number of T and T-dagger gates."""
        return sum(1 for gate in self._gates if gate.is_t_like())

    def t_depth(self) -> int:
        """Greedy T-depth estimate (T layers assuming full parallelism)."""
        qubit_depth = [0] * self.num_qubits
        for gate in self._gates:
            level = max(qubit_depth[q] for q in gate.qubits)
            if gate.is_t_like():
                level += 1
            for q in gate.qubits:
                qubit_depth[q] = level
        return max(qubit_depth, default=0)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={self.num_gates()}, t={self.t_count()})"
        )
