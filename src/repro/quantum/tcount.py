"""Closed-form T-count models for mixed-polarity multiple-controlled Toffoli
gates.

The paper reports T-counts "according to [26] and [27]" (Maslov's
relative-phase Toffoli constructions and the Barenco et al. decompositions).
Two models are provided; both treat NOT and CNOT as free and negative
controls as free (the surrounding X gates are Clifford):

* ``"barenco"`` — every k-control gate is decomposed into ``2k - 3`` plain
  Toffoli gates using a clean-ancilla chain; each Toffoli costs 7 T gates:
  ``T(k) = 7 * (2k - 3)`` for ``k >= 2``.
* ``"rtof"`` (default) — the ``2(k - 2)`` compute/uncompute Toffolis of the
  chain are replaced by relative-phase Toffolis with 4 T gates each
  (Maslov 2016), the middle gate stays a full Toffoli:
  ``T(k) = 8(k - 2) + 7`` for ``k >= 2``.

These closed forms agree gate-for-gate with the explicit Clifford+T
expansion produced by :mod:`repro.quantum.mapping` for *both* models —
``map_to_clifford_t(model=...)`` asserts the agreement on every expanded
gate, and the golden-cost tables pin the resulting resource vectors.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = ["mct_t_count", "circuit_t_count", "available_models"]


_MODELS = ("barenco", "rtof")


def available_models() -> Iterable[str]:
    """Names of the supported cost models."""
    return _MODELS


def mct_t_count(num_controls: int, model: str = "rtof") -> int:
    """T-count of a single multiple-controlled Toffoli gate."""
    if model not in _MODELS:
        raise ValueError(f"unknown T-count model {model!r}")
    if num_controls < 0:
        raise ValueError("num_controls must be non-negative")
    if num_controls <= 1:
        return 0
    if num_controls == 2:
        return 7
    if model == "barenco":
        return 7 * (2 * num_controls - 3)
    return 8 * (num_controls - 2) + 7


def _effective_num_controls(gate) -> Optional[int]:
    """Control count a gate is charged for, or ``None`` for a trivial gate.

    A statically unsatisfiable gate is the identity and costs nothing;
    duplicate control entries are charged once (the explicit mapping of
    :mod:`repro.quantum.mapping` normalises them the same way, which keeps
    the closed forms and the emitted circuits in exact agreement).  Gate
    objects without the trivial-gate introspection methods are charged
    their raw ``num_controls()``.
    """
    is_unsatisfiable = getattr(gate, "is_unsatisfiable", None)
    if is_unsatisfiable is not None and is_unsatisfiable():
        return None
    if getattr(gate, "has_duplicate_controls", lambda: False)():
        return gate.normalized().num_controls()
    return gate.num_controls()


def circuit_t_count(circuit, model: str = "rtof") -> int:
    """Total T-count of a reversible circuit (any object with ``gates()``).

    ``circuit`` is duck-typed: it must provide ``gates()`` returning objects
    with a ``num_controls()`` method (as
    :class:`repro.reversible.circuit.ReversibleCircuit` does).  Statically
    trivial gates (cf. :func:`repro.reversible.optimize.remove_trivial_gates`)
    are identities and cost nothing.
    """
    total = 0
    for gate in circuit.gates():
        k = _effective_num_controls(gate)
        if k is not None:
            total += mct_t_count(k, model)
    return total


def t_count_histogram(circuit, model: str = "rtof") -> Dict[int, int]:
    """Map control count to the total T-count contributed by such gates."""
    histogram: Dict[int, int] = {}
    for gate in circuit.gates():
        k = _effective_num_controls(gate)
        if k is None:
            continue
        histogram[k] = histogram.get(k, 0) + mct_t_count(k, model)
    return histogram
