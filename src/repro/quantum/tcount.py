"""Closed-form T-count models for mixed-polarity multiple-controlled Toffoli
gates.

The paper reports T-counts "according to [26] and [27]" (Maslov's
relative-phase Toffoli constructions and the Barenco et al. decompositions).
Two models are provided; both treat NOT and CNOT as free and negative
controls as free (the surrounding X gates are Clifford):

* ``"barenco"`` — every k-control gate is decomposed into ``2k - 3`` plain
  Toffoli gates using a clean-ancilla chain; each Toffoli costs 7 T gates:
  ``T(k) = 7 * (2k - 3)`` for ``k >= 2``.
* ``"rtof"`` (default) — the ``2(k - 2)`` compute/uncompute Toffolis of the
  chain are replaced by relative-phase Toffolis with 4 T gates each
  (Maslov 2016), the middle gate stays a full Toffoli:
  ``T(k) = 8(k - 2) + 7`` for ``k >= 2``.

These closed forms agree gate-for-gate with the explicit Clifford+T
expansion produced by :mod:`repro.quantum.mapping` for *both* models —
``map_to_clifford_t(model=...)`` asserts the agreement on every expanded
gate, and the golden-cost tables pin the resulting resource vectors.

:func:`circuit_t_count` and :func:`t_count_histogram` are vectorised over
the packed columnar gate store of
:class:`~repro.reversible.circuit.ReversibleCircuit`: the per-gate
normalisation (unsatisfiable gates cost nothing, duplicate control entries
are charged once) is done mask-natively — popcount of the care mask gives
the charged control count, a polarity bit outside the care mask flags an
unsatisfiable gate — and the per-arity sums collapse into one
``np.bincount``.  The per-object loops stay as
:func:`circuit_t_count_reference` / :func:`t_count_histogram_reference`,
the oracles the property tests compare against (and the fallback for
duck-typed circuits without a gate store).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

__all__ = [
    "mct_t_count",
    "circuit_t_count",
    "circuit_t_count_reference",
    "t_count_histogram",
    "t_count_histogram_reference",
    "available_models",
]


_MODELS = ("barenco", "rtof")


def available_models() -> Iterable[str]:
    """Names of the supported cost models."""
    return _MODELS


def mct_t_count(num_controls: int, model: str = "rtof") -> int:
    """T-count of a single multiple-controlled Toffoli gate."""
    if model not in _MODELS:
        raise ValueError(f"unknown T-count model {model!r}")
    if num_controls < 0:
        raise ValueError("num_controls must be non-negative")
    if num_controls <= 1:
        return 0
    if num_controls == 2:
        return 7
    if model == "barenco":
        return 7 * (2 * num_controls - 3)
    return 8 * (num_controls - 2) + 7


def _model_cost_vector(max_controls: int, model: str) -> np.ndarray:
    """``mct_t_count(k, model)`` for every ``k`` in ``0..max_controls``."""
    ks = np.arange(max_controls + 1, dtype=np.int64)
    if model == "barenco":
        costs = 7 * (2 * ks - 3)
    else:
        costs = 8 * (ks - 2) + 7
    costs[ks <= 1] = 0
    if max_controls >= 2:
        costs[2] = 7
    return costs


def _effective_num_controls(gate) -> Optional[int]:
    """Control count a gate is charged for, or ``None`` for a trivial gate.

    A statically unsatisfiable gate is the identity and costs nothing;
    duplicate control entries are charged once (the explicit mapping of
    :mod:`repro.quantum.mapping` normalises them the same way, which keeps
    the closed forms and the emitted circuits in exact agreement).  Gate
    objects without the trivial-gate introspection methods are charged
    their raw ``num_controls()``.
    """
    is_unsatisfiable = getattr(gate, "is_unsatisfiable", None)
    if is_unsatisfiable is not None and is_unsatisfiable():
        return None
    if getattr(gate, "has_duplicate_controls", lambda: False)():
        return gate.normalized().num_controls()
    return gate.num_controls()


def _charged_control_counts(circuit) -> Optional[np.ndarray]:
    """Per-arity gate counts over the packed store, or ``None`` if absent.

    Entry ``k`` is the number of (satisfiable) gates charged for ``k``
    controls: the popcount of the care mask — duplicate entries collapsed —
    with unsatisfiable gates (polarity bits outside the care mask) dropped,
    matching :func:`_effective_num_controls` mask-natively.
    """
    gate_store = getattr(circuit, "gate_store", None)
    num_lines = getattr(circuit, "num_lines", None)
    if gate_store is None or num_lines is None:
        return None
    packed = gate_store().packed(num_lines())
    if packed.unsat.any():
        charged = packed.effective[~packed.unsat]
    else:
        charged = packed.effective
    return np.bincount(charged)


def circuit_t_count(circuit, model: str = "rtof") -> int:
    """Total T-count of a reversible circuit (any object with ``gates()``).

    ``circuit`` is duck-typed: a :class:`~repro.reversible.circuit.
    ReversibleCircuit` (or anything exposing its ``gate_store()`` /
    ``num_lines()`` surface) is costed by one vectorised popcount +
    ``np.bincount`` sweep over the packed mask columns, memoised on the
    store until the cascade mutates; any other object falls back to
    :func:`circuit_t_count_reference`, which only needs ``gates()``
    returning objects with a ``num_controls()`` method.  Statically
    trivial gates (cf. :func:`repro.reversible.optimize.remove_trivial_gates`)
    are identities and cost nothing.
    """
    gate_store = getattr(circuit, "gate_store", None)
    if gate_store is None:
        return circuit_t_count_reference(circuit, model)
    store = gate_store()
    if len(store) == 0:
        return 0
    if model not in _MODELS:
        raise ValueError(f"unknown T-count model {model!r}")
    key = ("t_count", model)
    cached = store.stats.get(key)
    if cached is not None:
        return cached
    counts = _charged_control_counts(circuit)
    costs = _model_cost_vector(len(counts) - 1, model)
    total = int(np.dot(counts, costs))
    store.stats[key] = total
    return total


def circuit_t_count_reference(circuit, model: str = "rtof") -> int:
    """Per-gate-object T-count loop — the oracle for :func:`circuit_t_count`."""
    total = 0
    for gate in circuit.gates():
        k = _effective_num_controls(gate)
        if k is not None:
            total += mct_t_count(k, model)
    return total


def t_count_histogram(circuit, model: str = "rtof") -> Dict[int, int]:
    """Map charged control count to the total T-count of such gates.

    Vectorised like :func:`circuit_t_count` (and memoised on the gate
    store); arities that occur but cost nothing (NOT / CNOT) appear with
    value 0, matching :func:`t_count_histogram_reference`.
    """
    gate_store = getattr(circuit, "gate_store", None)
    if gate_store is None:
        return t_count_histogram_reference(circuit, model)
    store = gate_store()
    if len(store) == 0:
        return {}
    if model not in _MODELS:
        raise ValueError(f"unknown T-count model {model!r}")
    key = ("t_hist", model)
    cached = store.stats.get(key)
    if cached is None:
        counts = _charged_control_counts(circuit)
        costs = _model_cost_vector(len(counts) - 1, model)
        cached = {
            int(k): int(counts[k] * costs[k]) for k in np.nonzero(counts)[0]
        }
        store.stats[key] = cached
    return dict(cached)


def t_count_histogram_reference(circuit, model: str = "rtof") -> Dict[int, int]:
    """Per-gate-object histogram loop — the oracle for :func:`t_count_histogram`."""
    histogram: Dict[int, int] = {}
    for gate in circuit.gates():
        k = _effective_num_controls(gate)
        if k is None:
            continue
        histogram[k] = histogram.get(k, 0) + mct_t_count(k, model)
    return histogram
