"""Quantum level: Clifford+T circuits, MCT mapping and T-count cost models.

The paper costs every reversible circuit by its number of qubits and its
T-count (fault-tolerant gate sets make the T gate the dominant cost, cf.
Section I).  This sub-package provides

* :mod:`repro.quantum.gates` / :mod:`repro.quantum.circuit` — a small
  Clifford+T circuit representation,
* :mod:`repro.quantum.mapping` — expansion of mixed-polarity
  multiple-controlled Toffoli gates into Clifford+T networks,
* :mod:`repro.quantum.tcount` — the closed-form T-count models used by the
  benchmark tables (Barenco-style and relative-phase-Toffoli style); the
  mapping realizes either model explicitly (``model="barenco"`` /
  ``model="rtof"``) and asserts gate-for-gate agreement,
* :mod:`repro.quantum.resources` — the resource estimator (T-count,
  greedy T-depth, total depth, gate histograms) the flows fold into their
  cost reports,
* :mod:`repro.quantum.statevector` — a dense simulator used by the tests to
  prove the gate decompositions unitarily correct.
"""

from repro.quantum.circuit import QuantumCircuit, QuantumGate
from repro.quantum.mapping import (
    map_to_clifford_t,
    relative_phase_toffoli,
    relative_phase_toffoli_adjoint,
    toffoli_clifford_t,
)
from repro.quantum.resources import ResourceEstimate, estimate_resources
from repro.quantum.tcount import circuit_t_count, mct_t_count

__all__ = [
    "QuantumCircuit",
    "QuantumGate",
    "ResourceEstimate",
    "circuit_t_count",
    "estimate_resources",
    "map_to_clifford_t",
    "mct_t_count",
    "relative_phase_toffoli",
    "relative_phase_toffoli_adjoint",
    "toffoli_clifford_t",
]
