"""Dense statevector simulation of small Clifford+T circuits.

Used by the test-suite to prove the multiple-controlled-Toffoli
decompositions of :mod:`repro.quantum.mapping` unitarily correct (they must
act as the corresponding classical permutation on computational basis
states, with no stray phases between basis states that started with
amplitude one).
"""

from __future__ import annotations

import cmath
from typing import Dict, Iterable

import numpy as np

from repro.quantum.circuit import QuantumCircuit, QuantumGate

__all__ = ["Statevector", "simulate_basis_state", "circuit_permutation"]


_SQRT2 = 1.0 / np.sqrt(2.0)

_SINGLE_QUBIT_MATRICES: Dict[str, np.ndarray] = {
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQRT2, _SQRT2], [_SQRT2, -_SQRT2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * cmath.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * cmath.pi / 4)]], dtype=complex),
}


class Statevector:
    """A dense quantum state over ``num_qubits`` qubits (qubit 0 = LSB)."""

    def __init__(self, num_qubits: int, basis_state: int = 0):
        if num_qubits <= 0 or num_qubits > 24:
            raise ValueError("num_qubits must be between 1 and 24")
        if not 0 <= basis_state < (1 << num_qubits):
            raise ValueError("basis_state out of range")
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(1 << num_qubits, dtype=complex)
        self.amplitudes[basis_state] = 1.0

    # -- gate application -----------------------------------------------------

    def apply(self, gate: QuantumGate) -> None:
        """Apply one gate in place."""
        if gate.name in _SINGLE_QUBIT_MATRICES:
            self._apply_single(_SINGLE_QUBIT_MATRICES[gate.name], gate.qubits[0])
        elif gate.name == "cx":
            self._apply_cx(gate.qubits[0], gate.qubits[1])
        elif gate.name == "cz":
            self._apply_cz(gate.qubits[0], gate.qubits[1])
        else:  # pragma: no cover - defensive
            raise ValueError(f"unsupported gate {gate.name!r}")

    def apply_circuit(self, circuit: QuantumCircuit) -> None:
        """Apply every gate of a circuit in order."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit has more qubits than the state")
        for gate in circuit.iter_gates():
            self.apply(gate)

    def _apply_single(self, matrix: np.ndarray, qubit: int) -> None:
        n = self.num_qubits
        state = self.amplitudes.reshape(1 << (n - qubit - 1), 2, 1 << qubit)
        self.amplitudes = np.einsum("ij,ajb->aib", matrix, state).reshape(-1)

    def _apply_cx(self, control: int, target: int) -> None:
        indices = np.arange(self.amplitudes.size)
        mask = (indices >> control) & 1 == 1
        swapped = indices ^ (1 << target)
        new_amplitudes = self.amplitudes.copy()
        new_amplitudes[indices[mask]] = self.amplitudes[swapped[mask]]
        self.amplitudes = new_amplitudes

    def _apply_cz(self, control: int, target: int) -> None:
        indices = np.arange(self.amplitudes.size)
        mask = (((indices >> control) & 1) == 1) & (((indices >> target) & 1) == 1)
        self.amplitudes[mask] *= -1

    # -- queries ---------------------------------------------------------------

    def probability(self, basis_state: int) -> float:
        """Probability of measuring ``basis_state``."""
        return float(abs(self.amplitudes[basis_state]) ** 2)

    def dominant_basis_state(self, tolerance: float = 1e-9) -> int:
        """The single basis state carrying (almost) all probability.

        Raises if the state is not concentrated on one computational basis
        state (up to ``tolerance``).
        """
        index = int(np.argmax(np.abs(self.amplitudes)))
        if abs(self.probability(index) - 1.0) > tolerance:
            raise ValueError("state is not a computational basis state")
        return index


def simulate_basis_state(circuit: QuantumCircuit, basis_state: int) -> int:
    """Run ``circuit`` on a basis state and return the resulting basis state."""
    state = Statevector(circuit.num_qubits, basis_state)
    state.apply_circuit(circuit)
    return state.dominant_basis_state()


def circuit_permutation(circuit: QuantumCircuit, num_data_qubits: int) -> Iterable[int]:
    """The classical permutation a (classically-acting) circuit realises.

    Iterates the image of every basis state of the first ``num_data_qubits``
    qubits (remaining qubits start and must end in state 0).
    """
    for basis_state in range(1 << num_data_qubits):
        image = simulate_basis_state(circuit, basis_state)
        if image >> num_data_qubits:
            raise ValueError("ancilla qubits were not returned to zero")
        yield image
