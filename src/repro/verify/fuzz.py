"""Seeded structural fuzzers for the differential test layer.

Every generator is a pure function of its seed, so a failing test prints a
seed that reproduces the exact structure.  Three families cover the entry
points of the reproduction:

* :func:`random_truth_table` — explicit multi-output functions (the input of
  the functional synthesis back-ends),
* :func:`random_aig` / :func:`random_xmg` — multi-level logic networks (the
  input of the flows and of the XMG-based hierarchical back-end),
* :func:`random_hdl_design` — Verilog expression designs in the supported
  subset (the input of the whole pipeline, front-end included).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.logic.aig import Aig
from repro.logic.truth_table import TruthTable
from repro.logic.xmg import Xmg

__all__ = [
    "random_aig",
    "random_hdl_design",
    "random_truth_table",
    "random_xmg",
]


def random_truth_table(
    seed: int, num_inputs: int = 3, num_outputs: int = 3
) -> TruthTable:
    """A uniformly random multi-output truth table."""
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 1 << num_outputs, size=1 << num_inputs).astype(
        np.uint64
    )
    return TruthTable(num_inputs, num_outputs, words)


def random_aig(
    seed: int,
    num_pis: int = 4,
    num_gates: int = 12,
    num_pos: int = 3,
) -> Aig:
    """A random structurally-hashed AIG built from AND/OR/XOR/MUX steps.

    Outputs are drawn from the most recently created literals (biased
    towards deep nodes) so the network rarely collapses to a constant.
    """
    rng = np.random.default_rng(seed)
    aig = Aig(f"fuzz_aig_{seed}")
    literals: List[int] = [aig.add_pi() for _ in range(num_pis)]
    for _ in range(num_gates):
        choice = int(rng.integers(0, 4))
        picks = [
            int(literals[int(rng.integers(0, len(literals)))]) ^ int(rng.integers(0, 2))
            for _ in range(3)
        ]
        if choice == 0:
            literals.append(aig.create_and(picks[0], picks[1]))
        elif choice == 1:
            literals.append(aig.create_or(picks[0], picks[1]))
        elif choice == 2:
            literals.append(aig.create_xor(picks[0], picks[1]))
        else:
            literals.append(aig.create_mux(picks[0], picks[1], picks[2]))
    for index in range(num_pos):
        # Prefer recent (deep) literals, fall back towards the inputs.
        offset = int(rng.integers(1, min(len(literals), num_gates + 1) + 1))
        lit = int(literals[-offset]) ^ int(rng.integers(0, 2))
        aig.add_po(lit, f"f{index}")
    return aig


def random_xmg(
    seed: int,
    num_pis: int = 4,
    num_gates: int = 10,
    num_pos: int = 2,
) -> Xmg:
    """A random XOR-majority graph (MAJ/XOR/AND steps, random polarities)."""
    rng = np.random.default_rng(seed)
    xmg = Xmg(f"fuzz_xmg_{seed}")
    literals: List[int] = [xmg.add_pi() for _ in range(num_pis)]
    for _ in range(num_gates):
        choice = int(rng.integers(0, 3))
        picks = [
            int(literals[int(rng.integers(0, len(literals)))]) ^ int(rng.integers(0, 2))
            for _ in range(3)
        ]
        if choice == 0:
            literals.append(xmg.create_maj(picks[0], picks[1], picks[2]))
        elif choice == 1:
            literals.append(xmg.create_xor(picks[0], picks[1]))
        else:
            literals.append(xmg.create_and(picks[0], picks[2]))
    for index in range(num_pos):
        offset = int(rng.integers(1, min(len(literals), num_gates + 1) + 1))
        lit = int(literals[-offset]) ^ int(rng.integers(0, 2))
        xmg.add_po(lit, f"f{index}")
    return xmg


#: Binary operators usable in generated designs.  Division and modulo are
#: excluded: their divide-by-zero convention is front-end-defined and would
#: make the fuzz corpus exercise the convention rather than the synthesis.
_HDL_BINARY_OPS = ("+", "-", "*", "&", "|", "^", "&", "|", "^")
_HDL_COMPARE_OPS = ("==", "!=", "<", ">=")


def random_hdl_design(
    seed: int,
    width: int = 3,
    num_inputs: int = 2,
    num_wires: int = 5,
    name: Optional[str] = None,
) -> str:
    """Verilog source of a random combinational expression design.

    The module has ``num_inputs`` inputs of ``width`` bits, one ``width``-bit
    output, and a chain of ``num_wires`` intermediate wires combining earlier
    signals with arithmetic/bitwise/shift/ternary operators from the
    supported subset.  The same seed always produces the same source.
    """
    if width < 1:
        raise ValueError("width must be positive")
    if num_inputs < 1:
        raise ValueError("num_inputs must be positive")
    rng = np.random.default_rng(seed)
    module = name or f"fuzz{seed}"
    inputs = [chr(ord("a") + i) for i in range(num_inputs)]
    signals = list(inputs)

    def operand() -> str:
        if rng.integers(0, 8) == 0:
            return f"{width}'d{int(rng.integers(0, 1 << width))}"
        text = signals[int(rng.integers(0, len(signals)))]
        if rng.integers(0, 4) == 0:
            text = f"(~{text})"
        return text

    lines = []
    for index in range(num_wires):
        wire = f"t{index}"
        kind = int(rng.integers(0, 4))
        if kind == 0:
            op = _HDL_BINARY_OPS[int(rng.integers(0, len(_HDL_BINARY_OPS)))]
            expr = f"{operand()} {op} {operand()}"
        elif kind == 1:
            op = "<<" if rng.integers(0, 2) == 0 else ">>"
            expr = f"{operand()} {op} {int(rng.integers(0, width))}"
        elif kind == 2:
            cmp_op = _HDL_COMPARE_OPS[int(rng.integers(0, len(_HDL_COMPARE_OPS)))]
            expr = (
                f"({operand()} {cmp_op} {operand()}) ? {operand()} : {operand()}"
            )
        else:
            expr = f"{operand()} + ({operand()} ^ {operand()})"
        lines.append(f"    wire [{width - 1}:0] {wire} = {expr};")
        signals.append(wire)

    port_list = ",\n".join(
        [f"    input  [{width - 1}:0] {text}" for text in inputs]
        + [f"    output [{width - 1}:0] y"]
    )
    body = "\n".join(lines)
    return (
        f"// random expression design (seed {seed})\n"
        f"module {module} (\n{port_list}\n);\n"
        f"{body}\n"
        f"    assign y = {signals[-1]};\n"
        f"endmodule\n"
    )
