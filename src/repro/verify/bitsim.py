"""Bit-parallel word-batch simulation of AIGs, XMGs and reversible circuits.

All simulators in this module share one data layout: a batch of ``P`` input
patterns is stored as a ``uint64`` numpy matrix with one *row per signal*
and one *column per 64 patterns* — bit ``t`` of word ``w`` in a row is the
signal's value in test vector ``64*w + t``.  One sweep over a structure
therefore evaluates 64 test vectors per machine word, which is what makes
exhaustive checking of the paper's bit-widths and heavy differential
fuzzing affordable in pure Python.

Two batch constructors cover the two verification regimes of the paper's
``cec`` step:

* :func:`exhaustive_batch` packs all ``2**n`` minterms (complete checking),
* :func:`random_batch` draws seeded random patterns (falsification for
  input counts where exhaustion is impossible).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.logic.aig import Aig
from repro.logic.xmg import Xmg
from repro.reversible.circuit import ReversibleCircuit
from repro.logic.truth_table import TruthTable

__all__ = [
    "PatternBatch",
    "exhaustive_batch",
    "outputs_from_states",
    "pack_bits",
    "random_batch",
    "simulate_aig",
    "simulate_reversible",
    "simulate_reversible_states",
    "simulate_truth_table",
    "simulate_xmg",
    "unpack_bits",
]

_WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Pattern of input variable ``i`` (``i < 6``) within one 64-bit word when
#: minterms are enumerated in order: variable 0 alternates every pattern,
#: variable 5 every 32 patterns.
_VAR_WORDS = (
    np.uint64(0xAAAAAAAAAAAAAAAA),
    np.uint64(0xCCCCCCCCCCCCCCCC),
    np.uint64(0xF0F0F0F0F0F0F0F0),
    np.uint64(0xFF00FF00FF00FF00),
    np.uint64(0xFFFF0000FFFF0000),
    np.uint64(0xFFFFFFFF00000000),
)


def _num_words(num_patterns: int) -> int:
    return (num_patterns + _WORD_BITS - 1) // _WORD_BITS


def _tail_mask_words(num_patterns: int) -> np.ndarray:
    """Per-word mask selecting only the valid bits of a pattern batch."""
    mask = np.full(_num_words(num_patterns), _ALL_ONES, dtype=np.uint64)
    tail = num_patterns % _WORD_BITS
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean matrix ``(rows, P)`` into ``uint64`` words ``(rows, W)``.

    Bit ``t`` of word ``w`` in a row is ``bits[row, 64*w + t]``; the unused
    tail bits of the last word are zero.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.ndim == 1:
        bits = bits[np.newaxis, :]
    num_patterns = bits.shape[-1]
    words = _num_words(num_patterns)
    padded = np.zeros(bits.shape[:-1] + (words * _WORD_BITS,), dtype=np.uint64)
    padded[..., :num_patterns] = bits
    grouped = padded.reshape(bits.shape[:-1] + (words, _WORD_BITS))
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    return np.bitwise_or.reduce(grouped << shifts, axis=-1)


def unpack_bits(words: np.ndarray, num_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(rows, W)`` words to ``(rows, P)`` bools."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim == 1:
        words = words[np.newaxis, :]
    shifts = np.arange(_WORD_BITS, dtype=np.uint64)
    bits = (words[..., :, np.newaxis] >> shifts) & np.uint64(1)
    flat = bits.reshape(words.shape[:-1] + (words.shape[-1] * _WORD_BITS,))
    return flat[..., :num_patterns].astype(bool)


class PatternBatch:
    """A batch of input patterns in bit-parallel layout.

    ``inputs`` has shape ``(num_inputs, num_words)``; row ``i`` is the
    packed simulation pattern of primary input ``i``.  ``exhaustive``
    records whether the batch enumerates *all* minterms (in natural order),
    which is what lets a differential check report completeness.
    """

    __slots__ = ("num_inputs", "num_patterns", "inputs", "exhaustive")

    def __init__(
        self, num_inputs: int, num_patterns: int, inputs: np.ndarray, exhaustive: bool
    ):
        inputs = np.asarray(inputs, dtype=np.uint64)
        if inputs.shape != (num_inputs, _num_words(num_patterns)):
            raise ValueError(
                f"expected input matrix of shape "
                f"({num_inputs}, {_num_words(num_patterns)}), got {inputs.shape}"
            )
        self.num_inputs = num_inputs
        self.num_patterns = num_patterns
        self.inputs = inputs
        self.exhaustive = exhaustive

    @property
    def num_words(self) -> int:
        """Number of 64-bit simulation words per signal."""
        return _num_words(self.num_patterns)

    def tail_mask(self) -> np.ndarray:
        """Per-word mask selecting only the valid pattern bits."""
        return _tail_mask_words(self.num_patterns)

    def minterm(self, pattern_index: int) -> int:
        """The input minterm of one pattern position (as a Python integer)."""
        if not 0 <= pattern_index < self.num_patterns:
            raise ValueError(f"pattern index {pattern_index} out of range")
        word, bit = divmod(pattern_index, _WORD_BITS)
        value = 0
        for i in range(self.num_inputs):
            if (int(self.inputs[i, word]) >> bit) & 1:
                value |= 1 << i
        return value

    def minterms(self) -> List[int]:
        """All input minterms of the batch, in pattern order."""
        return [self.minterm(t) for t in range(self.num_patterns)]


def exhaustive_batch(num_inputs: int) -> PatternBatch:
    """All ``2**num_inputs`` minterms in natural order, 64 per word.

    Variable ``i < 6`` has a periodic in-word pattern; variable ``i >= 6``
    is constant within each word (bit ``i - 6`` of the word index), so the
    packing is built without touching individual patterns.
    """
    if num_inputs < 0:
        raise ValueError("num_inputs must be non-negative")
    if num_inputs > 30:
        raise ValueError(
            f"exhaustive batch over {num_inputs} inputs is not tractable"
        )
    num_patterns = 1 << num_inputs
    words = _num_words(num_patterns)
    inputs = np.zeros((num_inputs, words), dtype=np.uint64)
    word_index = np.arange(words, dtype=np.uint64)
    tail = num_patterns % _WORD_BITS
    in_word_mask = np.uint64((1 << tail) - 1) if tail else _ALL_ONES
    for i in range(num_inputs):
        if i < 6:
            inputs[i, :] = _VAR_WORDS[i] & in_word_mask
        else:
            high = (word_index >> np.uint64(i - 6)) & np.uint64(1)
            inputs[i, :] = np.where(high.astype(bool), _ALL_ONES, np.uint64(0))
    return PatternBatch(num_inputs, num_patterns, inputs, exhaustive=True)


def random_batch(num_inputs: int, num_patterns: int, seed: int = 1) -> PatternBatch:
    """A seeded batch of uniformly random input patterns."""
    if num_patterns <= 0:
        raise ValueError("num_patterns must be positive")
    rng = np.random.default_rng(seed)
    words = _num_words(num_patterns)
    inputs = rng.integers(
        0, 1 << 64, size=(max(num_inputs, 1), words), dtype=np.uint64
    )[:num_inputs]
    inputs = inputs & np.broadcast_to(
        _tail_mask_words(num_patterns), (num_inputs, words)
    )
    return PatternBatch(num_inputs, num_patterns, inputs, exhaustive=False)


# ---------------------------------------------------------------------------
# Structure simulators
# ---------------------------------------------------------------------------

#: Word-column chunk of the network simulators.  The per-node value matrix
#: of a chunk is ``num_nodes * _CHUNK_WORDS * 8`` bytes (~32 MB per 1000
#: nodes), so even exhaustive batches over wide designs stay memory-bounded
#: instead of allocating a ``(num_nodes, 2**n / 64)`` matrix at once.
_CHUNK_WORDS = 4096


def simulate_aig(aig: Aig, batch: PatternBatch) -> np.ndarray:
    """Evaluate every AIG output on a batch; returns ``(num_pos, W)`` words."""
    if batch.num_inputs != aig.num_pis():
        raise ValueError(
            f"batch has {batch.num_inputs} inputs, AIG has {aig.num_pis()} PIs"
        )
    num_nodes = len(aig._fanin0)
    fanin0 = aig._fanin0
    fanin1 = aig._fanin1
    pos = aig.pos()
    outputs = np.empty((len(pos), batch.num_words), dtype=np.uint64)

    for start in range(0, batch.num_words, _CHUNK_WORDS):
        stop = min(start + _CHUNK_WORDS, batch.num_words)
        values = np.zeros((num_nodes, stop - start), dtype=np.uint64)
        for i, node in enumerate(aig._pis):
            values[node] = batch.inputs[i, start:stop]

        def lit_value(lit: int) -> np.ndarray:
            value = values[lit >> 1]
            if lit & 1:
                return value ^ _ALL_ONES
            return value

        for node in range(num_nodes):
            f0 = fanin0[node]
            if f0 != -1:
                values[node] = lit_value(f0) & lit_value(fanin1[node])
        for j, po in enumerate(pos):
            outputs[j, start:stop] = lit_value(po)
    return outputs & batch.tail_mask()


def simulate_xmg(xmg: Xmg, batch: PatternBatch) -> np.ndarray:
    """Evaluate every XMG output on a batch; returns ``(num_pos, W)`` words."""
    if batch.num_inputs != xmg.num_pis():
        raise ValueError(
            f"batch has {batch.num_inputs} inputs, XMG has {xmg.num_pis()} PIs"
        )
    num_nodes = len(xmg._kind)
    pos = xmg.pos()
    outputs = np.empty((len(pos), batch.num_words), dtype=np.uint64)

    for start in range(0, batch.num_words, _CHUNK_WORDS):
        stop = min(start + _CHUNK_WORDS, batch.num_words)
        values = np.zeros((num_nodes, stop - start), dtype=np.uint64)
        for i, node in enumerate(xmg._pis):
            values[node] = batch.inputs[i, start:stop]

        def lit_value(lit: int) -> np.ndarray:
            value = values[lit >> 1]
            if lit & 1:
                return value ^ _ALL_ONES
            return value

        for node in range(num_nodes):
            if xmg.is_maj(node):
                a, b, c = (lit_value(f) for f in xmg.fanins(node))
                values[node] = (a & b) | (a & c) | (b & c)
            elif xmg.is_xor(node):
                a, b = (lit_value(f) for f in xmg.fanins(node))
                values[node] = a ^ b
        for j, po in enumerate(pos):
            outputs[j, start:stop] = lit_value(po)
    return outputs & batch.tail_mask()


def simulate_reversible_states(
    circuit: ReversibleCircuit, batch: PatternBatch
) -> np.ndarray:
    """Final line states of a reversible circuit on a batch.

    Returns ``(num_lines, W)`` words: row ``l`` is the packed final value of
    line ``l`` across the batch.  Input lines start from the batch patterns,
    constant lines from their declared value, unbound lines from 0.  Each
    gate costs one vectorised pass: the trigger pattern is the AND of its
    (complemented, for negative polarity) control rows, XORed into the
    target row.
    """
    if batch.num_inputs != circuit.num_inputs():
        raise ValueError(
            f"batch has {batch.num_inputs} inputs, circuit has "
            f"{circuit.num_inputs()} input lines"
        )
    num_lines = circuit.num_lines()
    state = np.zeros((num_lines, batch.num_words), dtype=np.uint64)
    for line, info in enumerate(circuit.lines()):
        if info.input_index is not None:
            state[line] = batch.inputs[info.input_index]
        elif info.constant:
            state[line] = _ALL_ONES
    targets, cares, polarities, _ = circuit.gate_store().columns()
    for care, polarity, target in zip(cares, polarities, targets):
        if care == 0:
            state[target] ^= _ALL_ONES
            continue
        if polarity & ~care:
            # Unsatisfiable gate: the AND of both polarities of a line is 0,
            # so the reference loop XORs nothing — skip it outright.
            continue
        mask = care
        low = mask & -mask
        line = low.bit_length() - 1
        mask ^= low
        trigger = state[line] if (polarity >> line) & 1 else state[line] ^ _ALL_ONES
        while mask:
            low = mask & -mask
            line = low.bit_length() - 1
            mask ^= low
            trigger = trigger & (
                state[line] if (polarity >> line) & 1 else state[line] ^ _ALL_ONES
            )
        state[target] ^= trigger
    return state & batch.tail_mask()


def outputs_from_states(
    circuit: ReversibleCircuit, states: np.ndarray
) -> np.ndarray:
    """Select the primary-output rows from a final-state matrix.

    Rows are ordered by primary-output index (matching
    :meth:`ReversibleCircuit.evaluate` bit order).
    """
    output_lines = circuit.output_lines()
    if not output_lines:
        # np.array([]) would be shape (0,), not (0, W); downstream masking
        # and first-difference scans need the word axis even when empty.
        return np.zeros((0, states.shape[1]), dtype=np.uint64)
    return np.array(
        [states[output_lines[j]] for j in sorted(output_lines)], dtype=np.uint64
    )


def simulate_reversible(
    circuit: ReversibleCircuit, batch: PatternBatch
) -> np.ndarray:
    """Primary-output patterns of a reversible circuit on a batch.

    Returns ``(num_outputs, W)`` words ordered by primary-output index
    (matching :meth:`ReversibleCircuit.evaluate` bit order).
    """
    return outputs_from_states(circuit, simulate_reversible_states(circuit, batch))


def simulate_truth_table(table: TruthTable, batch: PatternBatch) -> np.ndarray:
    """Evaluate an explicit truth table on a batch; ``(num_outputs, W)`` words."""
    if batch.num_inputs != table.num_inputs:
        raise ValueError(
            f"batch has {batch.num_inputs} inputs, table has "
            f"{table.num_inputs}"
        )
    if batch.exhaustive:
        selected = table.words
    else:
        bits = unpack_bits(batch.inputs, batch.num_patterns)
        minterms = np.zeros(batch.num_patterns, dtype=np.int64)
        for i in range(batch.num_inputs):
            minterms |= bits[i].astype(np.int64) << i
        selected = table.words[minterms]
    columns = (
        (selected[np.newaxis, :] >> np.arange(table.num_outputs, dtype=np.uint64)[:, np.newaxis])
        & np.uint64(1)
    ).astype(bool)
    return pack_bits(columns)


def first_difference(
    a: np.ndarray, b: np.ndarray, batch: PatternBatch
) -> Optional[int]:
    """Index of the first pattern on which two output matrices disagree.

    ``a`` and ``b`` are ``(num_outputs, W)`` matrices as produced by the
    simulators above (already masked to the batch's valid patterns).
    Returns ``None`` when they agree everywhere.
    """
    diff = np.bitwise_or.reduce(a ^ b, axis=0) if a.size else np.zeros(0)
    nonzero = np.nonzero(diff)[0]
    if nonzero.size == 0:
        return None
    word = int(nonzero[0])
    bits = int(diff[word])
    bit = (bits & -bits).bit_length() - 1
    return word * _WORD_BITS + bit


def output_word_at(outputs: np.ndarray, pattern_index: int) -> int:
    """Extract one pattern's output word from an ``(num_outputs, W)`` matrix."""
    word, bit = divmod(pattern_index, _WORD_BITS)
    value = 0
    for j in range(outputs.shape[0]):
        if (int(outputs[j, word]) >> bit) & 1:
            value |= 1 << j
    return value
