"""Differential equivalence checking across representation layers.

One checker for every pair of layers of the reproduction: a specification
and an implementation — any of :class:`~repro.logic.truth_table.TruthTable`,
:class:`~repro.logic.aig.Aig`, :class:`~repro.logic.xmg.Xmg`,
:class:`~repro.reversible.circuit.ReversibleCircuit` or a mapped Clifford+T
:class:`~repro.quantum.circuit.QuantumCircuit` (via
:func:`mapped_circuit_simulator`) — are evaluated on the *same* bit-parallel
pattern batch and compared word-by-word.  On disagreement the first
differing minterm is reconstructed and reported together with both output
words, which is what makes a failing fuzz run actionable.

Three modes mirror the paper's ``cec`` regimes:

* ``"full"``    — exhaustive over all ``2**n`` minterms (complete),
* ``"sampled"`` — a seeded random batch (falsification only),
* ``"auto"``    — full when the input count permits, sampled otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.logic.aig import Aig
from repro.logic.truth_table import TruthTable
from repro.logic.xmg import Xmg
from repro.quantum.circuit import QuantumCircuit
from repro.reversible.circuit import ReversibleCircuit
from repro.verify import bitsim
from repro.verify.bitsim import PatternBatch, exhaustive_batch, random_batch

__all__ = [
    "DifferentialResult",
    "MappedCircuitError",
    "VERIFY_MODES",
    "check_equivalent",
    "check_quantum_equivalent",
    "mapped_circuit_simulator",
    "normalize_verify_mode",
    "simulator_for",
]

#: The verification modes understood by :func:`check_equivalent` and the
#: flow/CLI layers (``"off"`` is handled by the callers, not here).
VERIFY_MODES = ("off", "sampled", "full", "auto")


def normalize_verify_mode(value) -> str:
    """Map a flow/engine ``verify`` argument to a canonical mode string.

    Booleans keep their historical meaning: ``True`` is the automatic
    policy (exhaustive when the input count permits, sampled otherwise),
    ``False`` disables verification.  ``None`` also maps to ``"off"``.
    """
    if value is None:
        return "off"
    if isinstance(value, bool):
        return "auto" if value else "off"
    mode = str(value).lower()
    if mode not in VERIFY_MODES:
        raise ValueError(
            f"unknown verification mode {value!r}; expected a bool or one of "
            f"{', '.join(VERIFY_MODES)}"
        )
    return mode

#: ``"auto"`` checks exhaustively up to this many inputs.
AUTO_FULL_LIMIT = 12


class MappedCircuitError(ValueError):
    """A mapped Clifford+T circuit violated its classical contract.

    Raised by the mapped-circuit simulator when a basis state does not map
    to a basis state or an ancilla qubit ends dirty; carries the offending
    minterm so :func:`check_equivalent` can turn it into a failing
    :class:`DifferentialResult` instead of a crash.
    """

    def __init__(self, minterm: int, message: str):
        super().__init__(message)
        self.minterm = minterm


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of a differential check between two representations."""

    equivalent: bool
    complete: bool
    num_patterns: int
    counterexample: Optional[int] = None
    spec_word: Optional[int] = None
    impl_word: Optional[int] = None
    message: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


class _Simulator:
    """A uniform functional view: input/output counts plus batch evaluation."""

    def __init__(self, num_inputs: int, num_outputs: int, run, kind: str):
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self._run = run
        self.kind = kind

    def simulate(self, batch: PatternBatch) -> np.ndarray:
        return self._run(batch)


def simulator_for(obj: Any) -> _Simulator:
    """Wrap a supported representation in the uniform simulator interface.

    Accepts a :class:`TruthTable`, :class:`Aig`, :class:`Xmg`,
    :class:`ReversibleCircuit`, an existing simulator, or a bare
    :class:`QuantumCircuit` — the latter is rejected with a pointer to
    :func:`mapped_circuit_simulator`, because a quantum circuit alone does
    not know which qubits are inputs and outputs.
    """
    if isinstance(obj, _Simulator):
        return obj
    if isinstance(obj, TruthTable):
        return _Simulator(
            obj.num_inputs,
            obj.num_outputs,
            lambda batch: bitsim.simulate_truth_table(obj, batch),
            "truth-table",
        )
    if isinstance(obj, Aig):
        return _Simulator(
            obj.num_pis(),
            obj.num_pos(),
            lambda batch: bitsim.simulate_aig(obj, batch),
            "aig",
        )
    if isinstance(obj, Xmg):
        return _Simulator(
            obj.num_pis(),
            obj.num_pos(),
            lambda batch: bitsim.simulate_xmg(obj, batch),
            "xmg",
        )
    if isinstance(obj, ReversibleCircuit):
        return _Simulator(
            obj.num_inputs(),
            obj.num_outputs(),
            lambda batch: bitsim.simulate_reversible(obj, batch),
            "reversible",
        )
    if isinstance(obj, QuantumCircuit):
        raise TypeError(
            "a bare QuantumCircuit has no input/output qubit roles; wrap it "
            "with repro.verify.differential.mapped_circuit_simulator"
        )
    raise TypeError(f"cannot build a simulator for {type(obj).__name__}")


def mapped_circuit_simulator(
    quantum: QuantumCircuit, reversible: ReversibleCircuit
) -> _Simulator:
    """Simulator for a Clifford+T circuit mapped from a reversible circuit.

    The reversible circuit supplies the line roles (which qubits carry
    primary inputs, constants and outputs); the quantum circuit is run on
    the corresponding computational basis states with the dense statevector
    simulator, so each pattern proves the mapped circuit acts as the same
    classical permutation (no stray superpositions or phases between basis
    states).  Exponential in the qubit count — only sensible for small
    mapped circuits; sampled mode is recommended.
    """
    from repro.quantum.statevector import simulate_basis_state

    if quantum.num_qubits < reversible.num_lines():
        raise ValueError(
            "quantum circuit has fewer qubits than the reversible circuit "
            "it supposedly maps"
        )
    output_lines = reversible.output_lines()
    ordered_outputs = [output_lines[j] for j in sorted(output_lines)]

    def run(batch: PatternBatch) -> np.ndarray:
        columns = np.zeros(
            (len(ordered_outputs), batch.num_patterns), dtype=bool
        )
        for t in range(batch.num_patterns):
            minterm = batch.minterm(t)
            initial = reversible.initial_state(minterm)
            try:
                final = simulate_basis_state(quantum, initial)
            except ValueError as exc:
                # Superposition / stray-phase final state: the circuit is
                # not even classical on this input.
                raise MappedCircuitError(
                    minterm,
                    f"mapped circuit is not a classical permutation on "
                    f"input {minterm}: {exc}",
                ) from exc
            if final >> reversible.num_lines():
                raise MappedCircuitError(
                    minterm,
                    f"mapped circuit left ancilla qubits dirty on input "
                    f"{minterm}",
                )
            for j, line in enumerate(ordered_outputs):
                columns[j, t] = bool((final >> line) & 1)
        return bitsim.pack_bits(columns)

    return _Simulator(
        reversible.num_inputs(), reversible.num_outputs(), run, "clifford+t"
    )


#: Qubit ceiling of :func:`check_quantum_equivalent` — each sampled basis
#: state costs one dense statevector simulation of both circuits.
QUANTUM_EQUIV_QUBIT_LIMIT = 16


def check_quantum_equivalent(
    spec: QuantumCircuit,
    impl: QuantumCircuit,
    mode: str = "auto",
    num_samples: int = 16,
    seed: int = 1,
    atol: float = 1e-9,
) -> DifferentialResult:
    """Differentially compare two Clifford+T circuits as unitaries.

    Unlike :func:`check_equivalent` this does not need input/output roles:
    both circuits are applied to the same computational basis states and
    the full final statevectors are compared amplitude by amplitude
    (phases included, so a peephole pass dropping a lone ``s`` or ``t``
    gate is caught even though probabilities match).  ``mode`` follows the
    usual regimes — ``"full"`` simulates every basis state, ``"sampled"``
    a seeded random subset, ``"auto"`` picks full for small circuits.
    Exponential in the qubit count; circuits beyond
    :data:`QUANTUM_EQUIV_QUBIT_LIMIT` qubits are rejected with a
    :class:`ValueError` rather than silently skipped.
    """
    from repro.quantum.statevector import Statevector

    if spec.num_qubits != impl.num_qubits:
        return DifferentialResult(
            False,
            True,
            0,
            message=(
                f"qubit counts differ: {spec.num_qubits} vs {impl.num_qubits}"
            ),
        )
    n = spec.num_qubits
    if n > QUANTUM_EQUIV_QUBIT_LIMIT:
        raise ValueError(
            f"{n} qubits exceed the {QUANTUM_EQUIV_QUBIT_LIMIT}-qubit "
            "statevector equivalence limit"
        )
    mode = normalize_verify_mode(mode)
    if mode == "off":
        raise ValueError("mode 'off' is handled by callers, not the checker")
    if mode == "auto":
        mode = "full" if n <= 8 else "sampled"
    if mode == "full" or num_samples >= (1 << n):
        basis_states = list(range(1 << n))
        complete = True
    else:
        rng = np.random.default_rng(seed)
        basis_states = [
            int(state)
            for state in rng.integers(0, 1 << n, size=num_samples, dtype=np.int64)
        ]
        complete = False
    for state in basis_states:
        spec_vec = Statevector(n, state)
        spec_vec.apply_circuit(spec)
        impl_vec = Statevector(n, state)
        impl_vec.apply_circuit(impl)
        if not np.allclose(spec_vec.amplitudes, impl_vec.amplitudes, atol=atol):
            return DifferentialResult(
                False,
                complete,
                len(basis_states),
                counterexample=state,
                message=(
                    f"statevectors diverge on basis state {state} "
                    f"(max deviation "
                    f"{np.max(np.abs(spec_vec.amplitudes - impl_vec.amplitudes)):.3g})"
                ),
            )
    return DifferentialResult(True, complete, len(basis_states), message="ok")


def _make_batch(
    num_inputs: int,
    mode: str,
    num_samples: int,
    seed: int,
    auto_full_limit: int,
) -> PatternBatch:
    if mode == "auto":
        mode = "full" if num_inputs <= auto_full_limit else "sampled"
    if mode == "full":
        return exhaustive_batch(num_inputs)
    if mode == "sampled":
        total = 1 << num_inputs if num_inputs < 63 else None
        if total is not None and num_samples >= total:
            # Sampling at least the whole input space degrades to the
            # exhaustive batch: no duplicate draws, and the verdict is
            # complete.
            return exhaustive_batch(num_inputs)
        return random_batch(num_inputs, num_samples, seed=seed)
    raise ValueError(
        f"unknown verification mode {mode!r}; expected one of "
        f"{', '.join(m for m in VERIFY_MODES if m != 'off')}"
    )


def check_equivalent(
    spec: Any,
    impl: Any,
    mode: str = "auto",
    num_samples: int = 256,
    seed: int = 1,
    auto_full_limit: int = AUTO_FULL_LIMIT,
) -> DifferentialResult:
    """Differentially compare two representations of a Boolean function.

    ``spec`` and ``impl`` are any mix of truth table / AIG / XMG /
    reversible circuit / :func:`mapped_circuit_simulator` views.  Both are
    simulated on the same pattern batch; the result carries the first
    differing minterm and both output words on disagreement.
    ``auto_full_limit`` is the input count up to which ``"auto"`` checks
    exhaustively — the single place that policy lives.
    """
    spec_sim = simulator_for(spec)
    impl_sim = simulator_for(impl)
    if spec_sim.num_inputs != impl_sim.num_inputs:
        return DifferentialResult(
            False,
            True,
            0,
            message=(
                f"input counts differ: {spec_sim.num_inputs} "
                f"({spec_sim.kind}) vs {impl_sim.num_inputs} ({impl_sim.kind})"
            ),
        )
    if spec_sim.num_outputs != impl_sim.num_outputs:
        return DifferentialResult(
            False,
            True,
            0,
            message=(
                f"output counts differ: {spec_sim.num_outputs} "
                f"({spec_sim.kind}) vs {impl_sim.num_outputs} ({impl_sim.kind})"
            ),
        )

    batch = _make_batch(
        spec_sim.num_inputs, mode, num_samples, seed, auto_full_limit
    )
    try:
        spec_out = spec_sim.simulate(batch)
        impl_out = impl_sim.simulate(batch)
    except MappedCircuitError as exc:
        return DifferentialResult(
            False,
            batch.exhaustive,
            batch.num_patterns,
            counterexample=exc.minterm,
            message=str(exc),
        )
    index = bitsim.first_difference(spec_out, impl_out, batch)
    if index is None:
        return DifferentialResult(
            True, batch.exhaustive, batch.num_patterns, message="ok"
        )
    minterm = batch.minterm(index)
    spec_word = bitsim.output_word_at(spec_out, index)
    impl_word = bitsim.output_word_at(impl_out, index)
    return DifferentialResult(
        False,
        batch.exhaustive,
        batch.num_patterns,
        counterexample=minterm,
        spec_word=spec_word,
        impl_word=impl_word,
        message=(
            f"output mismatch on input {minterm}: {impl_sim.kind} produced "
            f"{impl_word}, {spec_sim.kind} expected {spec_word}"
        ),
    )
