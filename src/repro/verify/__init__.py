"""Bit-parallel differential verification (the fast ABC ``cec`` analogue).

The paper's methodology checks every synthesised reversible circuit against
its irreversible specification.  This package turns that check into a
first-class, fast subsystem shared by every layer of the reproduction:

``repro.verify.bitsim``
    The shared simulation core: AIGs, XMGs and reversible circuits are
    evaluated on batches of input patterns packed 64-per-``uint64`` word,
    so one pass over the structure simulates 64 test vectors at once
    (exhaustive packing for small input counts, seeded random batches for
    large ones).

``repro.verify.differential``
    The differential checker: any two of {truth table, AIG, XMG, reversible
    circuit, Clifford+T circuit interpreted as a permutation} are compared
    on the same pattern batch and a concrete counterexample minterm is
    reported on disagreement.  The legacy per-input paths in
    :mod:`repro.reversible.verification` and :mod:`repro.logic.cec` are
    thin wrappers over this module.

``repro.verify.fuzz``
    Seeded structural fuzzers (random truth tables, random AIGs/XMGs,
    random HDL expression designs) that feed the property-based and
    differential test layers.
"""

from repro.verify.bitsim import (
    PatternBatch,
    exhaustive_batch,
    pack_bits,
    random_batch,
    simulate_aig,
    simulate_reversible,
    simulate_reversible_states,
    simulate_truth_table,
    simulate_xmg,
    unpack_bits,
)
from repro.verify.differential import (
    DifferentialResult,
    check_equivalent,
    check_quantum_equivalent,
    mapped_circuit_simulator,
    simulator_for,
)
from repro.verify.fuzz import (
    random_aig,
    random_hdl_design,
    random_truth_table,
    random_xmg,
)

__all__ = [
    "DifferentialResult",
    "PatternBatch",
    "check_equivalent",
    "check_quantum_equivalent",
    "exhaustive_batch",
    "mapped_circuit_simulator",
    "pack_bits",
    "random_aig",
    "random_batch",
    "random_hdl_design",
    "random_truth_table",
    "random_xmg",
    "simulate_aig",
    "simulate_reversible",
    "simulate_reversible_states",
    "simulate_truth_table",
    "simulate_xmg",
    "simulator_for",
    "unpack_bits",
]
