"""Flow abstraction: a named sequence of stages from design entry to a
reversible circuit.

A :class:`Flow` is a list of :class:`FlowStage` callables threaded through a
shared context dictionary; running it produces a :class:`FlowResult` with
the final circuit, per-stage timings and the aggregate cost report.  The
three concrete flows of the paper are assembled in
:mod:`repro.core.flows`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.cost import CostReport
from repro.reversible.circuit import ReversibleCircuit

__all__ = ["Flow", "FlowResult", "FlowStage"]


@dataclass
class FlowStage:
    """One stage of a flow: a name and a context transformer.

    ``provides`` names the context keys the stage is responsible for
    computing.  When every one of them is already present in the context —
    e.g. because a batch engine pre-computed the bit-blasted AIG once and
    shares it across configurations — the stage is skipped entirely and
    recorded in :attr:`FlowResult.skipped_stages`.
    """

    name: str
    run: Callable[[Dict[str, Any]], None]
    provides: tuple = ()

    def is_satisfied_by(self, context: Dict[str, Any]) -> bool:
        """True when all declared outputs are already in the context.

        ``None`` does not satisfy a requirement — a caller forwarding an
        unset optional artifact (e.g. ``aig=None``) gets the stage run,
        not a skip into a crash downstream.
        """
        return bool(self.provides) and all(
            context.get(key) is not None for key in self.provides
        )


@dataclass
class FlowResult:
    """Outcome of a flow run."""

    flow: str
    design: str
    bitwidth: int
    circuit: ReversibleCircuit
    report: CostReport
    stage_runtimes: Dict[str, float] = field(default_factory=dict)
    context: Dict[str, Any] = field(default_factory=dict)
    skipped_stages: List[str] = field(default_factory=list)

    def stage_runtime(self, name: str) -> float:
        """Runtime of one stage in seconds."""
        return self.stage_runtimes[name]


class Flow:
    """A named sequence of stages producing a reversible circuit.

    The context dictionary is seeded with ``design``, ``bitwidth`` and any
    keyword arguments of :meth:`run`; stages communicate by reading and
    writing context keys (``verilog``, ``aig``, ``esop``, ``xmg``,
    ``circuit``, ...).  The final stage must set ``circuit``.
    """

    def __init__(self, name: str, stages: List[FlowStage], cost_model: str = "rtof"):
        if not stages:
            raise ValueError("a flow needs at least one stage")
        self.name = name
        self.stages = stages
        self.cost_model = cost_model

    def stage_names(self) -> List[str]:
        """Names of the stages in execution order."""
        return [stage.name for stage in self.stages]

    def run(self, design: str, bitwidth: int, **parameters: Any) -> FlowResult:
        """Execute the flow for one design instance."""
        context: Dict[str, Any] = {
            "design": design,
            "bitwidth": bitwidth,
            **parameters,
        }
        stage_runtimes: Dict[str, float] = {}
        skipped_stages: List[str] = []
        start = time.perf_counter()
        for stage in self.stages:
            if stage.is_satisfied_by(context):
                stage_runtimes[stage.name] = 0.0
                skipped_stages.append(stage.name)
                continue
            stage_start = time.perf_counter()
            stage.run(context)
            stage_runtimes[stage.name] = time.perf_counter() - stage_start
        total_runtime = time.perf_counter() - start

        circuit = context.get("circuit")
        if not isinstance(circuit, ReversibleCircuit):
            raise RuntimeError(
                f"flow {self.name!r} did not produce a reversible circuit"
            )
        report = CostReport.from_circuit(
            circuit,
            design=design,
            flow=self.name,
            bitwidth=bitwidth,
            runtime_seconds=total_runtime,
            model=self.cost_model,
            verified=context.get("verified"),
            resources=context.get("resources"),
            extra=context.get("extra_metrics"),
        )
        return FlowResult(
            flow=self.name,
            design=design,
            bitwidth=bitwidth,
            circuit=circuit,
            report=report,
            stage_runtimes=stage_runtimes,
            context=context,
            skipped_stages=skipped_stages,
        )
