"""The paper's contribution: end-to-end design flows and design space
exploration for quantum computers.

* :mod:`repro.core.flows` — the three flows of Fig. 1 (symbolic functional,
  ESOP-based, hierarchical), each going from Verilog through classical logic
  synthesis to a reversible circuit,
* :mod:`repro.core.cost` — the cost report (qubits, T-count, runtime) used
  throughout the experiments,
* :mod:`repro.core.explorer` — design space exploration across flows and
  flow parameters, including Pareto-front extraction,
* :mod:`repro.core.reports` — paper-style table rendering for the benchmark
  harness.
"""

from repro.core.cost import CostReport
from repro.core.explorer import DesignSpaceExplorer, ParetoPoint
from repro.core.flow import Flow, FlowResult, FlowStage
from repro.core.flows import (
    available_flows,
    esop_flow,
    hierarchical_flow,
    run_flow,
    symbolic_flow,
)

__all__ = [
    "CostReport",
    "DesignSpaceExplorer",
    "Flow",
    "FlowResult",
    "FlowStage",
    "ParetoPoint",
    "available_flows",
    "esop_flow",
    "hierarchical_flow",
    "run_flow",
    "symbolic_flow",
]
