"""The design flows of Fig. 1, plus the LUT-granular pebbling flow.

Every flow starts from a Verilog description (the generated ``INTDIV(n)`` /
``NEWTON(n)`` designs or user-provided source), performs classical logic
synthesis and hands the result to one of the reversible synthesis back-ends:

* :func:`symbolic_flow`     — ABC ``dc2`` + ``collapse`` analogue, optimum
  embedding, transformation-based synthesis (Table II),
* :func:`esop_flow`         — AIG optimisation, ESOP extraction and
  exorcism-style minimisation, REVS-style ESOP synthesis with the factoring
  parameter ``p`` (Table III),
* :func:`hierarchical_flow` — repeated ``resyn2`` analogue, ``xmglut``-style
  XMG mapping, hierarchical synthesis (Table IV),
* :func:`lut_flow`          — k-LUT covering of the optimised AIG, a
  reversible pebble game scheduled over the LUT DAG (``strategy`` is a
  registered pebbling strategy — ``bennett`` / ``eager`` / ``bounded`` /
  SAT-``exact`` — with a ``max_pebbles`` qubit budget), and per-LUT
  ESOP/exact-ESOP/TBS synthesis of each schedule step (the paper's
  LUT-based hierarchical synthesis).

All flows share a common tail: an optional reversible peephole pipeline
(``rev_opt``, e.g. ``"rev-default"``) over the synthesised cascade,
differential verification against the bit-blasted design (ABC ``cec``
analogue), and an optional explicit Clifford+T mapping (``map_model``,
``"rtof"`` / ``"barenco"``) whose resource vector — T-count, T-depth,
total depth, mapped qubits — joins the cost report.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.core.flow import Flow, FlowResult, FlowStage
from repro.hdl.designs import intdiv_verilog, newton_verilog
from repro.hdl.synthesize import synthesize_verilog
from repro.logic.aig import Aig
from repro.logic.collapse import bdd_to_truth_table, collapse_to_bdd, collapse_to_esop
from repro.logic.xmg_mapping import aig_to_xmg
from repro.opt import as_pipeline
from repro.reversible.embedding import optimum_embedding
from repro.reversible.esop_synth import esop_synthesis
from repro.reversible.hierarchical import hierarchical_synthesis
from repro.reversible.symbolic_tbs import symbolic_tbs
from repro.verify.differential import (
    AUTO_FULL_LIMIT,
    check_equivalent,
    normalize_verify_mode,
)

__all__ = [
    "available_flows",
    "design_source",
    "esop_flow",
    "frontend_artifacts",
    "hierarchical_flow",
    "lut_flow",
    "run_flow",
    "symbolic_flow",
]


def design_source(design: str, bitwidth: int) -> str:
    """Verilog source of a named built-in design.

    ``intdiv`` and ``newton`` are the reciprocal designs of the paper;
    ``isqrt`` is the inverse-square-root companion design (the paper's
    "future work" function, see :mod:`repro.hdl.isqrt`).
    """
    design = design.lower()
    if design == "intdiv":
        return intdiv_verilog(bitwidth)
    if design == "newton":
        return newton_verilog(bitwidth)
    if design == "isqrt":
        from repro.hdl.isqrt import isqrt_verilog

        return isqrt_verilog(bitwidth)
    raise ValueError(
        f"unknown design {design!r} (expected 'intdiv', 'newton' or 'isqrt')"
    )


# -- shared stages ------------------------------------------------------------


def _stage_frontend(context: Dict[str, Any]) -> None:
    """Design entry: generate/accept Verilog and bit-blast it into an AIG.

    The stage declares that it ``provides`` the AIG, so :meth:`Flow.run`
    skips it whenever ``aig`` is already seeded into the context (a
    pre-built AIG passed to :func:`run_flow`, or the shared frontend of a
    batch exploration).
    """
    source = context.get("verilog")
    if source is None:
        source = design_source(context["design"], context["bitwidth"])
        context["verilog"] = source
    context["aig"] = synthesize_verilog(source)


def frontend_artifacts(
    design: str, bitwidth: int, verilog: Optional[str] = None
) -> Dict[str, Any]:
    """Pre-compute the shared frontend stage of every flow.

    Returns ``{"verilog": source, "aig": aig}`` ready to be passed as extra
    keyword arguments to :func:`run_flow`; seeding these artifacts skips
    the frontend stage.  The optimisation passes downstream are purely
    functional (they never mutate their input AIG), so one bit-blasted AIG
    is safe to share across arbitrarily many configurations of the same
    design instance.
    """
    context: Dict[str, Any] = {"design": design, "bitwidth": bitwidth}
    if verilog is not None:
        context["verilog"] = verilog
    _stage_frontend(context)
    return {"verilog": context["verilog"], "aig": context["aig"]}


def _make_optimize_stage(script: str, rounds: int) -> FlowStage:
    """The AIG optimisation stage, now a pass-manager pipeline.

    ``script``/``rounds`` give the flow's default pipeline (the historical
    per-flow ABC script); the ``opt`` context key — a pipeline spec string
    such as ``"b;rw;rf"`` or ``"dc2*3"``, or a pre-built
    :class:`repro.opt.Pipeline` — overrides it per run, with ``"none"``
    disabling AIG optimisation entirely.  ``opt_guard`` optionally enables
    the per-pass differential equivalence guard
    (``off``/``sampled``/``full``/``auto``).
    """
    default_spec = f"({script})*{rounds}"

    def run(context: Dict[str, Any]) -> None:
        spec = context.get("opt")
        pipeline = as_pipeline(default_spec if spec is None else spec)
        # The pre-optimisation AIG is the specification the verify stage
        # checks against; keeping it aside means a buggy optimisation
        # pass corrupts the implementation but never the reference.
        context.setdefault("spec_aig", context["aig"])
        result = pipeline.run(
            context["aig"], guard=context.get("opt_guard", "off")
        )
        context["aig"] = result.network
        context["opt_reports"] = result.reports
        context["extra_metrics"] = {
            **context.get("extra_metrics", {}),
            "opt_pipeline": str(pipeline),
            "opt_gates": result.network.num_gates(),
        }

    return FlowStage("optimize", run)


def _stage_xmg_opt(context: Dict[str, Any]) -> None:
    """Optional XMG optimisation pipeline between mapping and synthesis.

    Disabled by default (``xmg_opt`` unset/None/"none"): pass a spec such
    as ``"xmg-default"`` (the registered strash/Ω-rewrite/XOR/cut-refactor
    pipeline) or any combination of the ``xmg_*`` passes to reduce the MAJ
    count — and therefore the Toffoli blocks and T-count — of the
    hierarchical synthesis back-end.
    """
    spec = context.get("xmg_opt")
    pipeline = as_pipeline(spec)
    if not len(pipeline):
        return
    result = pipeline.run(
        context["xmg"], guard=context.get("opt_guard", "off")
    )
    context["xmg"] = result.network
    context["xmg_opt_reports"] = result.reports
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "xmg_opt_pipeline": str(pipeline),
        "xmg_maj": result.network.num_maj(),
        "xmg_xor": result.network.num_xor(),
    }


def _stage_rev_opt(context: Dict[str, Any]) -> None:
    """Optional peephole optimisation of the synthesised cascade.

    ``rev_opt`` is a pass-manager pipeline spec over the ``rev`` target —
    e.g. ``"rev-default"`` (trivial-gate removal, NOT merging and
    cancellation to a fixed point) or any combination of ``rt`` / ``rn`` /
    ``rc`` — executed with keep-best tracking under the lexicographic
    ``(T-count, gates)`` objective and the optional per-pass differential
    guard (``opt_guard``).  The historical boolean ``post_optimize``
    parameter maps to the default pipeline.
    """
    spec = context.get("rev_opt")
    if spec is None and context.get("post_optimize", False):
        spec = "rev-default"
    pipeline = as_pipeline(spec)
    if not len(pipeline):
        return
    before = context["circuit"]
    result = pipeline.run(before, guard=context.get("opt_guard", "off"))
    context["circuit"] = result.network
    context["rev_opt_reports"] = result.reports
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "rev_opt_pipeline": str(pipeline),
        "rev_opt_gates_before": before.num_gates(),
        "rev_opt_gates": result.network.num_gates(),
    }


def _stage_resources(context: Dict[str, Any]) -> None:
    """Optional explicit Clifford+T mapping and resource estimation.

    ``map_model`` selects the decomposition model (``"rtof"`` — 4-T
    relative-phase Toffoli chains — or ``"barenco"``); the cascade is
    expanded into an explicit Clifford+T circuit whose per-gate T-count is
    asserted against the closed forms of :mod:`repro.quantum.tcount`, an
    optional ``qc_opt`` peephole pipeline (e.g. ``"qc-default"``) runs on
    the mapped circuit, and the resulting
    :class:`~repro.quantum.resources.ResourceEstimate` joins the flow's
    :class:`~repro.core.cost.CostReport` (T-depth, total depth, mapped
    qubits).  Skipped entirely when ``map_model`` is unset, so flows only
    pay for the expansion when asked.
    """
    model = context.get("map_model")
    if model is None:
        return
    from repro.quantum.mapping import map_to_clifford_t
    from repro.quantum.resources import estimate_resources
    from repro.verify.differential import QUANTUM_EQUIV_QUBIT_LIMIT

    quantum = map_to_clifford_t(context["circuit"], model=model)
    qc_pipeline = as_pipeline(context.get("qc_opt"))
    if len(qc_pipeline):
        # The quantum guard compares full statevectors — exponential in
        # qubits.  An explicit ``qc_opt_guard`` is always honoured (and
        # raises loudly when infeasible); otherwise the stage inherits
        # ``opt_guard`` whenever the mapped circuit is small enough for
        # the statevector checker.
        guard = context.get("qc_opt_guard")
        if guard is None:
            guard = context.get("opt_guard", "off")
            if quantum.num_qubits > QUANTUM_EQUIV_QUBIT_LIMIT:
                guard = "off"
        result = qc_pipeline.run(quantum, guard=guard)
        quantum = result.network
        context["qc_opt_reports"] = result.reports
    estimate = estimate_resources(quantum)
    context["quantum_circuit"] = quantum
    context["resources"] = estimate
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "map_model": model,
        "qc_t_count": estimate.t_count,
    }


def _stage_verify(context: Dict[str, Any]) -> None:
    """ABC ``cec`` analogue: differentially compare circuit and AIG.

    ``verify`` in the context is a bool (historical) or one of the named
    modes ``off`` / ``sampled`` / ``full`` / ``auto``; the check itself is
    the bit-parallel differential checker of :mod:`repro.verify`, which
    simulates the bit-blasted AIG and the synthesised reversible circuit
    on the same packed pattern batch.  The reference is ``spec_aig`` —
    the AIG *before* any optimisation pipeline touched it — so a buggy
    pass (or a buggy XMG round-trip) makes verification fail instead of
    silently verifying the circuit against its own corrupted input.
    """
    mode = normalize_verify_mode(context.get("verify", True))
    if mode == "off":
        context["verified"] = None
        return
    aig: Aig = context.get("spec_aig") or context["aig"]
    result = check_equivalent(
        aig,
        context["circuit"],
        mode=mode,
        num_samples=context.get("verify_samples", 256),
        seed=context.get("verify_seed", 1),
        auto_full_limit=context.get("verify_input_limit", AUTO_FULL_LIMIT),
    )
    if not result:
        raise RuntimeError(f"flow verification failed: {result.message}")
    context["verified"] = True
    context["verify_complete"] = result.complete


# -- symbolic functional flow -----------------------------------------------------


def _stage_collapse_bdd(context: Dict[str, Any]) -> None:
    manager, roots = collapse_to_bdd(context["aig"])
    context["bdd"] = (manager, roots)
    context["function"] = bdd_to_truth_table(manager, roots)
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "bdd_nodes": manager.node_count(roots),
    }


def _stage_embed(context: Dict[str, Any]) -> None:
    context["embedding"] = optimum_embedding(context["function"])


def _stage_tbs(context: Dict[str, Any]) -> None:
    context["circuit"] = symbolic_tbs(
        context["embedding"],
        bidirectional=context.get("bidirectional", True),
        name=f"{context['design']}_{context['bitwidth']}_symbolic",
    )


def symbolic_flow(cost_model: str = "rtof", optimization_rounds: int = 2) -> Flow:
    """The symbolic functional synthesis flow (Section IV-A / Table II)."""
    return Flow(
        "symbolic",
        [
            FlowStage("frontend", _stage_frontend, provides=("aig",)),
            _make_optimize_stage("dc2", optimization_rounds),
            FlowStage("collapse", _stage_collapse_bdd),
            FlowStage("embed", _stage_embed),
            FlowStage("tbs", _stage_tbs),
            FlowStage("rev-opt", _stage_rev_opt),
            FlowStage("verify", _stage_verify),
            FlowStage("resources", _stage_resources),
        ],
        cost_model=cost_model,
    )


# -- ESOP-based flow ----------------------------------------------------------------


def _stage_esop_extract(context: Dict[str, Any]) -> None:
    cover = collapse_to_esop(context["aig"], minimize=True)
    context["esop"] = cover
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "esop_terms": cover.num_terms(),
        "esop_shared_terms": cover.shared_terms(),
    }


def _stage_esop_synthesis(context: Dict[str, Any]) -> None:
    context["circuit"] = esop_synthesis(
        context["esop"],
        p=context.get("p", 0),
        name=f"{context['design']}_{context['bitwidth']}_esop_p{context.get('p', 0)}",
    )


def esop_flow(cost_model: str = "rtof", optimization_rounds: int = 1) -> Flow:
    """The ESOP-based (REVS) synthesis flow (Section IV-B / Table III)."""
    return Flow(
        "esop",
        [
            FlowStage("frontend", _stage_frontend, provides=("aig",)),
            _make_optimize_stage("dc2", optimization_rounds),
            FlowStage("exorcism", _stage_esop_extract),
            FlowStage("esop-synthesis", _stage_esop_synthesis),
            FlowStage("rev-opt", _stage_rev_opt),
            FlowStage("verify", _stage_verify),
            FlowStage("resources", _stage_resources),
        ],
        cost_model=cost_model,
    )


# -- hierarchical flow -----------------------------------------------------------------


def _stage_xmg_map(context: Dict[str, Any]) -> None:
    xmg = aig_to_xmg(context["aig"], k=context.get("lut_size", 4))
    context["xmg"] = xmg
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "xmg_maj": xmg.num_maj(),
        "xmg_xor": xmg.num_xor(),
    }


def _stage_hierarchical(context: Dict[str, Any]) -> None:
    context["circuit"] = hierarchical_synthesis(
        context["xmg"],
        strategy=context.get("strategy", "bennett"),
        name=f"{context['design']}_{context['bitwidth']}_hier",
    )


def hierarchical_flow(cost_model: str = "rtof", optimization_rounds: int = 2) -> Flow:
    """The hierarchical synthesis flow (Section IV-C / Table IV).

    Between XMG mapping and synthesis an optional XMG optimisation
    pipeline (context key ``xmg_opt``, e.g. ``"xmg-default"``) reduces
    the MAJ count that directly determines the Toffoli blocks of the
    back-end.
    """
    return Flow(
        "hierarchical",
        [
            FlowStage("frontend", _stage_frontend, provides=("aig",)),
            _make_optimize_stage("resyn2", optimization_rounds),
            FlowStage("xmglut", _stage_xmg_map),
            FlowStage("xmg-opt", _stage_xmg_opt),
            FlowStage("hierarchical-synthesis", _stage_hierarchical),
            FlowStage("rev-opt", _stage_rev_opt),
            FlowStage("verify", _stage_verify),
            FlowStage("resources", _stage_resources),
        ],
        cost_model=cost_model,
    )


# -- LUT-based hierarchical flow (pebbling) ------------------------------------------


def _stage_xmg_roundtrip(context: Dict[str, Any]) -> None:
    """Optional XMG optimisation of the LUT flow's AIG (round-trip).

    The LUT flow consumes an AIG, so the XMG pass library reaches it by
    mapping the optimised AIG into an XMG, running the ``xmg_opt``
    pipeline (same parameter as the hierarchical flow, e.g.
    ``"xmg-default"``) and expanding the result back with
    :func:`~repro.logic.xmg_mapping.xmg_to_aig`.  The round-tripped AIG
    carries the XOR/MAJ structure the pipeline found, which LUT covering
    packs into fewer, cheaper LUTs.  Disabled by default.
    """
    spec = context.get("xmg_opt")
    pipeline = as_pipeline(spec)
    if not len(pipeline):
        return
    from repro.logic.xmg_mapping import xmg_to_aig

    context.setdefault("spec_aig", context["aig"])
    # ``xmg_opt_k`` sizes the AIG->XMG mapping of the round-trip; it is
    # deliberately independent of the LUT covering size ``k`` downstream.
    xmg = aig_to_xmg(context["aig"], k=context.get("xmg_opt_k", 4))
    result = pipeline.run(xmg, guard=context.get("opt_guard", "off"))
    context["aig"] = xmg_to_aig(result.network)
    context["xmg_opt_reports"] = result.reports
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "xmg_opt_pipeline": str(pipeline),
        "xmg_maj": result.network.num_maj(),
        "xmg_xor": result.network.num_xor(),
    }


def _stage_lut_map(context: Dict[str, Any]) -> None:
    from repro.logic.cuts import lut_map

    mapping = lut_map(
        context["aig"],
        k=context.get("k", 4),
        max_cuts=context.get("max_cuts", 8),
        selection=context.get("cut_selection", "area"),
    )
    context["lut_mapping"] = mapping
    context["extra_metrics"] = {
        **context.get("extra_metrics", {}),
        "num_luts": mapping.num_luts(),
        "lut_depth": mapping.depth(),
    }


def _stage_pebble(context: Dict[str, Any]) -> None:
    from repro.reversible.pebbling import make_schedule

    strategy = context.get("strategy", "bennett")
    options: Dict[str, Any] = {}
    if strategy == "exact" and context.get("exact_time_budget") is not None:
        options["time_budget"] = float(context["exact_time_budget"])
    schedule = make_schedule(
        context["lut_mapping"],
        strategy=strategy,
        max_pebbles=context.get("max_pebbles"),
        **options,
    )
    stats = schedule.stats()  # cached from make_schedule's validation
    context["schedule"] = schedule
    extra = {
        **context.get("extra_metrics", {}),
        "pebble_peak": stats.pebble_peak,
        "schedule_steps": stats.num_steps,
        "recomputes": schedule.num_recomputes(),
    }
    if schedule.info:
        # The exact engine's provenance: which SAT regime ran and whether
        # move-optimality was proven within the time budget.
        extra["pebble_engine"] = schedule.info.get("engine")
        extra["pebble_optimal"] = bool(schedule.info.get("optimal"))
    context["extra_metrics"] = extra


def _stage_lut_synthesis(context: Dict[str, Any]) -> None:
    from repro.reversible.lut_synth import synthesize_schedule

    context["circuit"] = synthesize_schedule(
        context["schedule"],
        name=f"{context['design']}_{context['bitwidth']}_lut",
        lut_synth=context.get("lut_synth", "esop"),
        validate=False,  # the pebble stage already validated
    )


def lut_flow(cost_model: str = "rtof", optimization_rounds: int = 2) -> Flow:
    """The LUT-based hierarchical flow with a reversible pebbling scheduler.

    Parameters consumed from the flow context: ``k`` (LUT size, default 4),
    ``max_cuts`` (priority-cut bound), ``cut_selection`` (``area`` —
    default — or ``depth``), ``strategy`` (a registered pebbling strategy:
    ``bennett`` / ``eager`` / ``bounded`` / ``exact``), ``max_pebbles``
    (pebble budget of the bounded and exact strategies; an int, or a float
    in ``(0, 1)`` as a fraction of the LUT count), ``exact_time_budget``
    (wall-clock seconds the ``exact`` strategy may spend in SAT),
    ``lut_synth`` (per-LUT sub-synthesizer, ``esop``, ``exact`` or
    ``tbs``) and ``xmg_opt`` (optional XMG round-trip optimisation
    pipeline, see :func:`_stage_xmg_roundtrip`).
    """
    return Flow(
        "lut",
        [
            FlowStage("frontend", _stage_frontend, provides=("aig",)),
            _make_optimize_stage("resyn2", optimization_rounds),
            FlowStage("xmg-opt", _stage_xmg_roundtrip),
            FlowStage("lut-map", _stage_lut_map),
            FlowStage("pebble", _stage_pebble),
            FlowStage("lut-synthesis", _stage_lut_synthesis),
            FlowStage("rev-opt", _stage_rev_opt),
            FlowStage("verify", _stage_verify),
            FlowStage("resources", _stage_resources),
        ],
        cost_model=cost_model,
    )


_FLOW_FACTORIES = {
    "symbolic": symbolic_flow,
    "esop": esop_flow,
    "hierarchical": hierarchical_flow,
    "lut": lut_flow,
}


def available_flows() -> List[str]:
    """Names of the registered flows (Fig. 1 plus the ``lut`` flow)."""
    return list(_FLOW_FACTORIES)


def run_flow(
    flow: str,
    design: Union[str, Aig],
    bitwidth: int,
    verify: Union[bool, str] = True,
    cost_model: str = "rtof",
    **parameters: Any,
) -> FlowResult:
    """Run one named flow on one design instance.

    ``design`` is ``"intdiv"``, ``"newton"``, or a pre-built
    :class:`~repro.logic.aig.Aig` (in which case ``bitwidth`` is only used
    for reporting).  ``verify`` is a bool or one of the named modes
    ``off`` / ``sampled`` / ``full`` / ``auto`` (see
    :mod:`repro.verify.differential`).  ``parameters`` are forwarded to the
    stages (``p``, ``strategy``, ``lut_size``, ``k``, ``max_pebbles``,
    ``exact_time_budget``, ``lut_synth``, ``bidirectional``,
    ``verilog``, ``verify_samples``,
    ``opt`` — an AIG pipeline spec such as ``"b;rw;rf"`` or ``"none"`` —
    ``xmg_opt`` — an XMG pipeline spec such as ``"xmg-default"`` for the
    hierarchical flow — ``rev_opt`` — a reversible peephole pipeline spec
    such as ``"rev-default"``, run on the synthesised cascade of every
    flow — ``map_model`` — ``"rtof"`` or ``"barenco"``, enabling the
    explicit Clifford+T mapping and folding T-depth/depth resource metrics
    into the report — ``qc_opt`` — a Clifford+T peephole pipeline spec
    such as ``"qc-default"``, run on the mapped circuit — ``opt_guard``,
    the per-pass equivalence guard mode shared by every pipeline stage —
    and ``qc_opt_guard``, overriding the guard for the ``qc_opt``
    pipeline only (without it, ``opt_guard`` applies whenever the mapped
    circuit fits the statevector checker's qubit limit), ...).
    """
    if flow not in _FLOW_FACTORIES:
        raise ValueError(
            f"unknown flow {flow!r}; available: {', '.join(available_flows())}"
        )
    flow_object = _FLOW_FACTORIES[flow](cost_model=cost_model)
    if isinstance(design, Aig):
        parameters = {**parameters, "aig": design}
        design_name = design.name or "custom"
    else:
        design_name = design
    return flow_object.run(design_name, bitwidth, verify=verify, **parameters)
