"""Design space exploration across flows and flow parameters.

The paper's central claim is that the combination of classical and
reversible logic synthesis "enables nontrivial design space exploration":
the designer can trade qubits against T-count (space against time) by
choosing the flow and its parameters.  :class:`DesignSpaceExplorer` runs a
set of flow configurations on one design and extracts the Pareto-optimal
points of that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cost import CostReport
from repro.core.flows import run_flow

__all__ = ["FlowConfiguration", "ParetoPoint", "DesignSpaceExplorer"]


@dataclass(frozen=True)
class FlowConfiguration:
    """One point of the design space: a flow plus its parameters."""

    flow: str
    parameters: tuple = ()

    def label(self) -> str:
        """Human-readable configuration label."""
        if not self.parameters:
            return self.flow
        params = ", ".join(f"{key}={value}" for key, value in self.parameters)
        return f"{self.flow}({params})"

    def as_kwargs(self) -> Dict[str, Any]:
        return dict(self.parameters)


@dataclass(frozen=True)
class ParetoPoint:
    """A non-dominated (qubits, T-count) point with its provenance."""

    configuration: str
    qubits: int
    t_count: int
    report: CostReport


def default_configurations() -> List[FlowConfiguration]:
    """The configurations explored by the paper's experiments."""
    return [
        FlowConfiguration("symbolic"),
        FlowConfiguration("esop", (("p", 0),)),
        FlowConfiguration("esop", (("p", 1),)),
        FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
        FlowConfiguration("hierarchical", (("strategy", "per_output"),)),
    ]


class DesignSpaceExplorer:
    """Run several flow configurations on one design and analyse the results."""

    def __init__(
        self,
        design: str,
        bitwidth: int,
        configurations: Optional[Sequence[FlowConfiguration]] = None,
        verify: bool = True,
        cost_model: str = "rtof",
    ):
        self.design = design
        self.bitwidth = bitwidth
        self.configurations = list(configurations or default_configurations())
        self.verify = verify
        self.cost_model = cost_model
        self.reports: Dict[str, CostReport] = {}

    # -- exploration --------------------------------------------------------------

    def explore(self) -> Dict[str, CostReport]:
        """Run every configuration; returns label -> cost report."""
        for configuration in self.configurations:
            result = run_flow(
                configuration.flow,
                self.design,
                self.bitwidth,
                verify=self.verify,
                cost_model=self.cost_model,
                **configuration.as_kwargs(),
            )
            self.reports[configuration.label()] = result.report
        return dict(self.reports)

    # -- analysis -----------------------------------------------------------------

    def pareto_front(self) -> List[ParetoPoint]:
        """Non-dominated points on the (qubits, T-count) plane."""
        if not self.reports:
            self.explore()
        points = []
        for label, report in self.reports.items():
            dominated = any(
                other.dominates(report)
                for other_label, other in self.reports.items()
                if other_label != label
            )
            if not dominated:
                points.append(
                    ParetoPoint(label, report.qubits, report.t_count, report)
                )
        points.sort(key=lambda point: (point.qubits, point.t_count))
        return points

    def best_by_qubits(self) -> CostReport:
        """The configuration with the fewest qubits."""
        if not self.reports:
            self.explore()
        return min(self.reports.values(), key=lambda report: report.qubits)

    def best_by_t_count(self) -> CostReport:
        """The configuration with the smallest T-count."""
        if not self.reports:
            self.explore()
        return min(self.reports.values(), key=lambda report: report.t_count)

    def summary_rows(self) -> List[tuple]:
        """Rows ``(configuration, qubits, T-count, runtime)`` for reporting."""
        if not self.reports:
            self.explore()
        return [
            (label, report.qubits, report.t_count, report.runtime_seconds)
            for label, report in sorted(self.reports.items())
        ]
