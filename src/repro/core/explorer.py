"""Design space exploration across flows, flow parameters and designs.

The paper's central claim is that the combination of classical and
reversible logic synthesis "enables nontrivial design space exploration":
the designer can trade qubits against T-count (space against time) by
choosing the flow and its parameters.

This module provides the exploration machinery at two levels:

:class:`ExplorationEngine`
    A batch engine that runs many :class:`ExplorationTask` configurations —
    expanded from :class:`ParameterGrid` sweeps over flows × parameters ×
    designs × bitwidths by :func:`build_sweep` — either serially or on a
    process pool, with a persistent content-addressed
    :class:`~repro.core.cache.ResultCache`, per-configuration error/timeout
    capture (one failing flow never aborts a sweep) and streaming results
    via :meth:`ExplorationEngine.run_iter`.  The bit-blasted AIG frontend
    is computed once per design instance and shared across all of its
    configurations.

:class:`DesignSpaceExplorer`
    The paper-facing convenience wrapper: one design, one bitwidth, a list
    of :class:`FlowConfiguration`, Pareto-front analysis of the (qubits,
    T-count) plane.  It delegates execution to the engine, so it inherits
    parallelism and caching through its ``jobs`` / ``cache_dir`` arguments.
"""

from __future__ import annotations

import itertools
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.cache import ResultCache, cache_key
from repro.core.cost import CostReport
from repro.core.flows import design_source, frontend_artifacts, run_flow
from repro.verify.differential import normalize_verify_mode

__all__ = [
    "ConfigurationOutcome",
    "DesignSpaceExplorer",
    "ExplorationEngine",
    "ExplorationTask",
    "FlowConfiguration",
    "ParameterGrid",
    "ParetoPoint",
    "build_sweep",
    "default_configurations",
    "flow_default_configurations",
    "pareto_front_of",
]


@dataclass(frozen=True)
class FlowConfiguration:
    """One point of the design space: a flow plus its parameters."""

    flow: str
    parameters: tuple = ()

    def label(self) -> str:
        """Human-readable configuration label."""
        if not self.parameters:
            return self.flow
        params = ", ".join(f"{key}={value}" for key, value in self.parameters)
        return f"{self.flow}({params})"

    def as_kwargs(self) -> Dict[str, Any]:
        return dict(self.parameters)

    def with_parameter(self, name: str, value: Any) -> "FlowConfiguration":
        """A copy with one parameter set (replacing any existing value).

        Used by ``explore --opt`` to cross a configuration list with a
        set of optimisation pipeline specs.
        """
        parameters = tuple(
            (key, existing) for key, existing in self.parameters if key != name
        ) + ((name, value),)
        return FlowConfiguration(self.flow, parameters)


@dataclass(frozen=True)
class ParetoPoint:
    """A non-dominated (qubits, T-count) point with its provenance.

    When several configurations land on the *same* (qubits, T-count)
    point, the front keeps one :class:`ParetoPoint` whose
    ``configuration`` is the lexicographically smallest label and whose
    ``aliases`` lists every other label that reached the point, so a
    collapsed point still names all of its witnesses.
    """

    configuration: str
    qubits: int
    t_count: int
    report: CostReport
    aliases: Tuple[str, ...] = ()

    def label(self) -> str:
        """The configuration label, with any aliases appended."""
        if not self.aliases:
            return self.configuration
        return f"{self.configuration} [= {', '.join(self.aliases)}]"


def default_configurations() -> List[FlowConfiguration]:
    """The configurations explored by the paper's experiments."""
    return [
        FlowConfiguration("symbolic"),
        FlowConfiguration("esop", (("p", 0),)),
        FlowConfiguration("esop", (("p", 1),)),
        FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
        FlowConfiguration("hierarchical", (("strategy", "per_output"),)),
    ]


#: Default per-flow sweeps (the CLI's ``explore --flow`` argument).  The
#: ``lut`` entries sweep the pebbling strategies; the ``bounded`` budgets
#: are fractions of the LUT count so one sweep fits designs of any size.
#: Each flow also carries one ``rev_opt`` point, so the default sweeps
#: probe the reversible peephole pipeline next to the structural knobs.
_FLOW_DEFAULT_CONFIGURATIONS: Dict[str, List[FlowConfiguration]] = {
    "symbolic": [
        FlowConfiguration("symbolic"),
        FlowConfiguration("symbolic", (("rev_opt", "rev-default"),)),
    ],
    "esop": [
        FlowConfiguration("esop", (("p", 0),)),
        FlowConfiguration("esop", (("p", 1),)),
        FlowConfiguration("esop", (("p", 0), ("rev_opt", "rev-default"))),
    ],
    "hierarchical": [
        FlowConfiguration("hierarchical", (("strategy", "bennett"),)),
        FlowConfiguration("hierarchical", (("strategy", "per_output"),)),
        FlowConfiguration(
            "hierarchical",
            (("strategy", "bennett"), ("xmg_opt", "xmg-default")),
        ),
        FlowConfiguration(
            "hierarchical",
            (("strategy", "per_output"), ("xmg_opt", "xmg-default")),
        ),
        FlowConfiguration(
            "hierarchical",
            (
                ("strategy", "bennett"),
                ("xmg_opt", "xmg-default"),
                ("rev_opt", "rev-default"),
            ),
        ),
    ],
    "lut": [
        FlowConfiguration("lut", (("strategy", "bennett"),)),
        FlowConfiguration(
            "lut", (("strategy", "bennett"), ("xmg_opt", "xmg-default"))
        ),
        FlowConfiguration(
            "lut", (("strategy", "bennett"), ("rev_opt", "rev-default"))
        ),
        FlowConfiguration("lut", (("strategy", "eager"),)),
        FlowConfiguration("lut", (("strategy", "bounded"), ("max_pebbles", 0.25))),
        FlowConfiguration("lut", (("strategy", "bounded"), ("max_pebbles", 0.5))),
        FlowConfiguration("lut", (("strategy", "bounded"), ("max_pebbles", 0.75))),
        FlowConfiguration(
            "lut",
            (
                ("strategy", "exact"),
                ("max_pebbles", 0.5),
                ("lut_synth", "exact"),
            ),
        ),
    ],
}


def flow_default_configurations(flow: str) -> List[FlowConfiguration]:
    """The default sweep of one flow (qubits-vs-T-count curve per strategy)."""
    try:
        return list(_FLOW_DEFAULT_CONFIGURATIONS[flow])
    except KeyError:
        raise ValueError(
            f"unknown flow {flow!r}; available: "
            f"{', '.join(sorted(_FLOW_DEFAULT_CONFIGURATIONS))}"
        ) from None


def pareto_front_of(reports: Dict[str, CostReport]) -> List[ParetoPoint]:
    """Non-dominated points of ``label -> report`` on the (qubits, T-count) plane.

    Dominance rule: a report is dominated iff another report has
    ``qubits <=`` *and* ``t_count <=`` with at least one strict inequality.
    Configurations with *identical* (qubits, T-count) do not dominate each
    other; the front keeps exactly one :class:`ParetoPoint` per distinct
    cost point — represented by the lexicographically smallest
    configuration label, with every other coinciding label recorded in
    :attr:`ParetoPoint.aliases` — so redundant points never appear twice
    but no configuration silently disappears from the front.
    """
    labels_for_point: Dict[Tuple[int, int], List[str]] = {}
    for label, report in reports.items():
        point = (report.qubits, report.t_count)
        labels_for_point.setdefault(point, []).append(label)
    points = []
    for (qubits, t_count), labels in labels_for_point.items():
        labels.sort()
        report = reports[labels[0]]
        dominated = any(
            other.dominates(report)
            for other in reports.values()
            if (other.qubits, other.t_count) != (qubits, t_count)
        )
        if not dominated:
            points.append(
                ParetoPoint(
                    labels[0], qubits, t_count, report, tuple(labels[1:])
                )
            )
    points.sort(key=lambda point: (point.qubits, point.t_count))
    return points


# -- sweep construction -------------------------------------------------------


class ParameterGrid:
    """Expand one flow and parameter value ranges into configurations.

    Every keyword argument names a flow parameter; scalar values are fixed,
    list/tuple/range values are swept, and the grid is their Cartesian
    product::

        >>> [c.label() for c in ParameterGrid("esop", p=[0, 1])]
        ['esop(p=0)', 'esop(p=1)']
    """

    def __init__(self, flow: str, **ranges: Any) -> None:
        self.flow = flow
        self.ranges: List[Tuple[str, Tuple[Any, ...]]] = []
        for name in sorted(ranges):
            values = ranges[name]
            if isinstance(values, (list, tuple, range)):
                values = tuple(values)  # explicit order is preserved
            elif isinstance(values, (set, frozenset)):
                values = tuple(sorted(values, key=repr))  # determinism only
            else:
                values = (values,)
            if not values:
                raise ValueError(f"empty value range for parameter {name!r}")
            self.ranges.append((name, values))

    def configurations(self) -> List[FlowConfiguration]:
        """All configurations of the grid, in deterministic order."""
        if not self.ranges:
            return [FlowConfiguration(self.flow)]
        names = [name for name, _ in self.ranges]
        products = itertools.product(*(values for _, values in self.ranges))
        return [
            FlowConfiguration(self.flow, tuple(zip(names, combo)))
            for combo in products
        ]

    def __iter__(self) -> Iterator[FlowConfiguration]:
        return iter(self.configurations())

    def __len__(self) -> int:
        count = 1
        for _, values in self.ranges:
            count *= len(values)
        return count


@dataclass(frozen=True)
class ExplorationTask:
    """One unit of exploration work: a configuration bound to a design instance."""

    design: str
    bitwidth: int
    configuration: FlowConfiguration
    verilog: Optional[str] = None

    def label(self) -> str:
        return f"{self.design}({self.bitwidth})/{self.configuration.label()}"

    def source(self) -> str:
        """The Verilog source this task synthesises (for cache addressing)."""
        if self.verilog is not None:
            return self.verilog
        return design_source(self.design, self.bitwidth)


def build_sweep(
    designs: Union[str, Sequence[str]],
    bitwidths: Union[int, Sequence[int]],
    configurations: Iterable[Union[FlowConfiguration, ParameterGrid]],
    verilog: Optional[str] = None,
) -> List[ExplorationTask]:
    """Expand designs × bitwidths × configurations into exploration tasks.

    ``configurations`` may mix plain :class:`FlowConfiguration` objects and
    :class:`ParameterGrid` sweeps; grids are expanded in place.  ``verilog``
    optionally supplies the source of a custom (non-built-in) design and is
    attached to every task.
    """
    if isinstance(designs, str):
        designs = [designs]
    if isinstance(bitwidths, int):
        bitwidths = [bitwidths]
    expanded: List[FlowConfiguration] = []
    for entry in configurations:
        if isinstance(entry, ParameterGrid):
            expanded.extend(entry.configurations())
        else:
            expanded.append(entry)
    return [
        ExplorationTask(design, bitwidth, configuration, verilog=verilog)
        for design in designs
        for bitwidth in bitwidths
        for configuration in expanded
    ]


# -- outcomes -----------------------------------------------------------------


@dataclass(frozen=True)
class ConfigurationOutcome:
    """The result of one exploration task: a report, a cache hit, or an error."""

    task: ExplorationTask
    report: Optional[CostReport] = None
    error: Optional[str] = None
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.report is not None

    def label(self) -> str:
        return self.task.label()


#: Error message of outcomes abandoned by an engine stop request (the
#: graceful-drain hook); also the marker the pool path uses to tell a
#: cancelled spec from a genuinely failed one.
_CANCELLED = "cancelled: engine stop requested"


# -- worker -------------------------------------------------------------------

#: Shared frontend artifacts (bit-blasted AIGs), keyed by frontend id.
#: Populated once per worker process by the pool initializer, so task specs
#: only carry a small id.  Serial in-process runs pass their table to
#: :func:`_execute_task` explicitly instead — two interleaved serial
#: engines must never clobber each other's tables.
_WORKER_FRONTENDS: Dict[int, Dict[str, Any]] = {}

#: Staging slot for the fork-once handoff: the engine publishes the
#: frontend table here *before* creating a fork-context pool, so every
#: worker inherits it through the forked address space — zero pickling of
#: AIGs, per worker or per task.  Platforms without ``fork`` pickle the
#: table once per worker via the initializer args instead.
_POOL_FRONTENDS: Dict[int, Dict[str, Any]] = {}


def _set_worker_frontends(frontends: Dict[int, Dict[str, Any]]) -> None:
    """Install the shared frontend table in this (worker) process."""
    global _WORKER_FRONTENDS
    _WORKER_FRONTENDS = frontends


def _adopt_pool_frontends() -> None:
    """Fork-context pool initializer: adopt the inherited frontend table."""
    _set_worker_frontends(_POOL_FRONTENDS)


class _AlarmGuard:
    """Best-effort per-configuration timeout via a POSIX interval timer.

    Arms ``SIGALRM`` for ``timeout`` seconds; requires the main thread of
    the (worker) process and is a silent no-op elsewhere.  ``disarm()``
    restores the previously installed handler and any previously running
    timer, so the calling process's own alarm machinery survives a serial
    in-process run.
    """

    def __init__(self, timeout: Optional[float]) -> None:
        self.armed = False
        self._previous_handler = None
        self._previous_timer = (0.0, 0.0)
        if not timeout:
            return
        try:
            import signal

            def _on_timeout(signum, frame):
                raise TimeoutError(
                    f"configuration exceeded timeout of {timeout} s"
                )

            self._previous_handler = signal.signal(signal.SIGALRM, _on_timeout)
        except Exception:  # not the main thread, no SIGALRM on this platform
            return
        try:
            self._previous_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
        except Exception:
            # e.g. OverflowError for absurd timeouts: undo the handler swap
            # so the arming failure cannot corrupt the host's SIGALRM state.
            signal.signal(signal.SIGALRM, self._previous_handler)
            return
        import time

        self._armed_at = time.monotonic()
        self.armed = True

    def disarm(self) -> None:
        if not self.armed:
            return
        self.armed = False
        import signal
        import time

        delay, interval = self._previous_timer
        if delay > 0:
            # The host's timer kept "running" conceptually while ours was
            # armed: restore what would be left of it, not its full span.
            delay = max(delay - (time.monotonic() - self._armed_at), 1e-3)
        signal.setitimer(signal.ITIMER_REAL, delay, interval)
        if self._previous_handler is not None:
            signal.signal(signal.SIGALRM, self._previous_handler)


def _execute_task(
    spec: Dict[str, Any],
    frontends: Optional[Dict[int, Dict[str, Any]]] = None,
) -> Tuple[int, str, Optional[CostReport]]:
    """Run one flow configuration; never raises.

    Module-level so it can be pickled into :class:`ProcessPoolExecutor`
    workers.  Returns ``(index, error_message, report)`` where exactly one
    of ``error_message`` / ``report`` is meaningful.  A positive
    ``timeout`` arms an :class:`_AlarmGuard` around the flow execution; a
    late alarm that fires after the flow already produced its report is
    ignored rather than misreported as a failure.
    """
    index = spec["index"]
    guard = _AlarmGuard(spec.get("timeout"))
    report: Optional[CostReport] = None
    error = ""
    try:
        try:
            parameters = dict(spec["parameters"])
            if "verilog" not in parameters and "aig" not in parameters:
                # The shared frontend only applies when the configuration
                # does not bring its own design source/AIG — configuration
                # parameters always win over engine-level sharing.
                table = _WORKER_FRONTENDS if frontends is None else frontends
                frontend = table.get(spec.get("frontend_id"), {})
                if frontend.get("verilog") is not None:
                    parameters["verilog"] = frontend["verilog"]
                elif spec.get("verilog") is not None:
                    parameters["verilog"] = spec["verilog"]
                if frontend.get("aig") is not None:
                    parameters["aig"] = frontend["aig"]
            result = run_flow(
                spec["flow"],
                spec["design"],
                spec["bitwidth"],
                verify=spec["verify"],
                cost_model=spec["cost_model"],
                **parameters,
            )
            report = result.report
        finally:
            guard.disarm()
    except BaseException as exc:  # error isolation: one task must not kill a sweep
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        error = f"{type(exc).__name__}: {exc}"
    if report is not None:
        return index, "", report
    return index, error or "unknown error", None


# -- engine -------------------------------------------------------------------


class ExplorationEngine:
    """Run batches of exploration tasks with parallelism and caching.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs serially in
        the calling process, larger values use a
        :class:`~concurrent.futures.ProcessPoolExecutor`.
    cache:
        ``None`` to disable caching, a directory path, or a pre-built
        :class:`ResultCache`.  Cached results are content-addressed on the
        design source + flow + parameters + bitwidth + cost model + verify
        mode, so a cached sweep re-runs zero flows.
    verify:
        A bool (historical) or one of the named verification modes
        ``off`` / ``sampled`` / ``full`` / ``auto``; forwarded to every
        flow's verify stage (see :mod:`repro.verify.differential`).
    timeout:
        Optional per-configuration wall-clock budget in seconds; a timed
        out configuration is recorded as a failed outcome.
    share_frontend:
        Bit-blast each distinct design instance once and share the AIG
        across all of its configurations (serial path; pool workers
        inherit the table fork-once, see :meth:`_make_pool`).
    on_result:
        Optional callback invoked with each :class:`ConfigurationOutcome`
        as it completes — the streaming hook used by the CLI progress
        output.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[None, str, ResultCache] = None,
        verify: Union[bool, str] = True,
        cost_model: str = "rtof",
        timeout: Optional[float] = None,
        share_frontend: bool = True,
        on_result: Optional[Callable[[ConfigurationOutcome], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        # Reject unknown verification modes up front, not per task deep in
        # a worker process.
        normalize_verify_mode(verify)
        self.jobs = jobs
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.verify = verify
        self.cost_model = cost_model
        self.timeout = timeout
        self.share_frontend = share_frontend
        self.on_result = on_result
        #: Configurations dispatched for execution (cache misses, whether
        #: they succeeded or failed) in the last :meth:`run`.
        self.executed = 0
        #: Cache hits in the last :meth:`run`.
        self.cache_hits = 0
        #: Failed configurations in the last :meth:`run`.
        self.failures = 0
        #: Configurations abandoned by ``should_stop`` in the last :meth:`run`.
        self.cancelled = 0
        #: Size in bytes of the largest pickled task spec shipped to a
        #: worker in the last pool :meth:`run` (0 for serial runs).  Task
        #: specs carry only a frontend *id*, never the AIG itself, so this
        #: stays small no matter how large the design is — the regression
        #: tests and the kernel benchmark assert on it.
        self.last_task_payload_bytes = 0

    # -- execution ------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[ExplorationTask],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> List[ConfigurationOutcome]:
        """Run every task; outcomes are returned in task order."""
        tasks = list(tasks)
        slots: List[Optional[ConfigurationOutcome]] = [None] * len(tasks)
        for index, outcome in self._run_indexed(tasks, should_stop):
            slots[index] = outcome
        return [outcome for outcome in slots if outcome is not None]

    def run_iter(
        self,
        tasks: Sequence[ExplorationTask],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator[ConfigurationOutcome]:
        """Run every task, yielding outcomes as they complete (streaming).

        ``should_stop`` is polled between configurations (the cancellation
        hook of the job server's graceful drain): once it returns true, no
        further flow starts and every not-yet-started task is yielded as a
        cancelled outcome.  Cache hits are still served — they cost one
        file read — and configurations already executing run to completion,
        so a stopped sweep never loses a finished result.
        """
        for _, outcome in self._run_indexed(tasks, should_stop):
            yield outcome

    def _run_indexed(
        self,
        tasks: Sequence[ExplorationTask],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator[Tuple[int, ConfigurationOutcome]]:
        """Run every task, yielding ``(task position, outcome)`` pairs."""
        self.executed = 0
        self.cache_hits = 0
        self.failures = 0
        self.cancelled = 0
        self.last_task_payload_bytes = 0

        tasks = list(tasks)
        # The Verilog sources are only needed for cache addressing and for
        # the shared frontend; with both disabled the workers generate
        # them on demand.
        need_sources = self.cache is not None or self.share_frontend
        sources: Dict[Tuple[str, int, Optional[str]], Optional[str]] = {}
        for task in tasks:
            instance = (task.design, task.bitwidth, task.verilog)
            if instance not in sources:
                if not need_sources:
                    sources[instance] = None
                    continue
                try:
                    sources[instance] = task.source()
                except Exception:
                    # Unbuildable design: the worker reports the real error
                    # per task; the instance just cannot be cache-addressed.
                    sources[instance] = None

        pending: List[Tuple[int, ExplorationTask, Optional[str]]] = []
        for index, task in enumerate(tasks):
            source = sources[(task.design, task.bitwidth, task.verilog)]
            key = None
            if self.cache is not None and source is not None:
                key = cache_key(
                    source,
                    task.configuration.flow,
                    task.configuration.parameters,
                    task.bitwidth,
                    cost_model=self.cost_model,
                    verify=self.verify,
                    design=task.design,
                )
            if self.cache is not None and key is not None:
                report = self.cache.get(key)
                if report is not None:
                    self.cache_hits += 1
                    yield index, self._emit(
                        ConfigurationOutcome(task, report=report, cached=True)
                    )
                    continue
            pending.append((index, task, key))

        if not pending:
            return

        frontend_ids, frontends_by_id = self._shared_frontends(pending, sources)
        specs = [
            self._task_spec(index, task, frontend_ids)
            for index, task, _ in pending
        ]
        keys = {index: key for index, _, key in pending}
        by_index = {index: task for index, task, _ in pending}

        # jobs > 1 always uses the pool, even for a single pending task:
        # the pool is what provides crash isolation and keeps SIGALRM out
        # of the calling process.
        if self.jobs == 1:
            for position, spec in enumerate(specs):
                if should_stop is not None and should_stop():
                    yield from self._cancel_remaining(specs[position:], by_index)
                    return
                index, error, report = _execute_task(spec, frontends_by_id)
                yield index, self._finish(
                    by_index[index], keys[index], error, report
                )
            return

        import pickle

        # Record the largest per-task payload the pool will ship.  Specs
        # that cannot be pickled at all are skipped here — the pool itself
        # turns them into per-task failures without aborting the sweep.
        for spec in specs:
            try:
                size = len(pickle.dumps(spec))
            except Exception:
                continue
            self.last_task_payload_bytes = max(
                self.last_task_payload_bytes, size
            )
        for index, error, report in self._run_pool(
            specs, frontends_by_id, should_stop
        ):
            if report is None and error == _CANCELLED:
                self.cancelled += 1
                yield index, self._emit(
                    ConfigurationOutcome(by_index[index], error=_CANCELLED)
                )
                continue
            yield index, self._finish(by_index[index], keys[index], error, report)

    def _cancel_remaining(
        self,
        specs: Sequence[Dict[str, Any]],
        by_index: Dict[int, ExplorationTask],
    ) -> Iterator[Tuple[int, ConfigurationOutcome]]:
        """Yield a cancelled outcome for every not-yet-started spec."""
        for spec in specs:
            index = spec["index"]
            self.cancelled += 1
            yield index, self._emit(
                ConfigurationOutcome(by_index[index], error=_CANCELLED)
            )

    #: A task that was in flight during this many pool crashes is assumed
    #: to be the crasher and recorded as failed instead of retried.
    MAX_CRASH_SUSPICIONS = 2

    def _run_pool(
        self,
        specs: Sequence[Dict[str, Any]],
        frontends_by_id: Dict[int, Dict[str, Any]],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator[Tuple[int, str, Optional[CostReport]]]:
        """Execute task specs on a process pool, surviving dead workers.

        A worker that dies outright (OOM, segfault in native code,
        ``sys.exit``) breaks the whole :class:`ProcessPoolExecutor`; to keep
        the per-configuration error-isolation contract, the unfinished
        specs are resubmitted on a fresh pool.  Only the (bounded set of)
        specs whose futures broke are counted as crash suspects; a spec in
        flight during :attr:`MAX_CRASH_SUSPICIONS` crashes is recorded as
        failed rather than retried, so a reliably crashing configuration
        cannot restart pools forever.  The shared frontends reach the
        workers through the fork-once handoff of :meth:`_make_pool` (or
        once per worker via the pool initializer on spawn platforms),
        never once per task spec.
        """
        queue = list(specs)
        suspicions: Dict[int, int] = {}
        while queue:
            if should_stop is not None and should_stop():
                for spec in queue:
                    yield spec["index"], _CANCELLED, None
                return
            before = len(queue)
            queue, crashed = yield from self._drain_one_pool(
                queue, frontends_by_id, should_stop
            )
            if not crashed and len(queue) == before:
                # The pool could not make any progress at all (e.g. worker
                # processes cannot even start): fail the remainder rather
                # than restarting pools forever.
                for spec in queue:
                    yield spec["index"], "process pool unavailable", None
                return
            for spec in crashed:
                index = spec["index"]
                suspicions[index] = suspicions.get(index, 0) + 1
                if suspicions[index] >= self.MAX_CRASH_SUSPICIONS:
                    yield (
                        index,
                        "worker process died repeatedly while running this "
                        "configuration",
                        None,
                    )
                else:
                    queue.append(spec)

    def _drain_one_pool(
        self,
        queue: List[Dict[str, Any]],
        frontends_by_id: Dict[int, Dict[str, Any]],
        should_stop: Optional[Callable[[], bool]] = None,
    ):
        """Run specs on one pool; returns ``(unsubmitted, crashed)`` on a break.

        Keeps at most ``2 * jobs`` futures outstanding so that when the
        pool breaks, the set of specs whose futures errored — the crash
        suspects — is small; specs never submitted are retried without
        suspicion.  Once ``should_stop`` returns true no further spec is
        submitted; the outstanding futures are drained (their results are
        not lost) and the unsubmitted remainder is returned to the caller,
        which reports it as cancelled.
        """
        queue = list(queue)
        crashed: List[Dict[str, Any]] = []
        with self._make_pool(frontends_by_id) as pool:
            futures: Dict[Any, Dict[str, Any]] = {}
            while queue or futures:
                stopping = should_stop is not None and should_stop()
                try:
                    while queue and not stopping and len(futures) < 2 * self.jobs:
                        spec = queue.pop(0)
                        futures[pool.submit(_execute_task, spec)] = spec
                except Exception:
                    # The pool broke between a worker dying and us seeing
                    # its future fail: submit() raises BrokenProcessPool.
                    # The spec being submitted never ran — retry it without
                    # suspicion; the in-flight ones are the suspects.
                    queue.insert(0, spec)
                    yield from self._salvage_outstanding(futures, crashed)
                    return queue, crashed
                if stopping and not futures:
                    return queue, crashed
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    spec = futures.pop(future)
                    try:
                        yield future.result()
                    except BrokenProcessPool:
                        crashed.append(spec)
                    except Exception as exc:
                        # The pool is healthy; only this task's future
                        # failed (e.g. its parameters or result could not
                        # be pickled).  Record it and keep the pool.
                        yield (
                            spec["index"],
                            f"{type(exc).__name__}: {exc}",
                            None,
                        )
                if crashed:
                    # The pool is broken.  Harvest any future that still
                    # finished with a valid result; only the truly lost
                    # ones become crash suspects for the retry.
                    yield from self._salvage_outstanding(futures, crashed)
                    return queue, crashed
        return queue, crashed

    def _make_pool(self, frontends_by_id: Dict[int, Dict[str, Any]]):
        """A worker pool whose processes hold the shared frontend table.

        On platforms with ``fork`` the table is published to a module
        global before the pool starts and each worker inherits it through
        the forked address space — the bit-blasted AIGs are never pickled,
        neither per task nor per worker.  Elsewhere (``spawn`` platforms)
        the table is pickled once per worker via the initializer args, the
        historical behaviour.
        """
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            global _POOL_FRONTENDS
            _POOL_FRONTENDS = frontends_by_id
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_adopt_pool_frontends,
            )
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_set_worker_frontends,
            initargs=(frontends_by_id,),
        )

    @staticmethod
    def _salvage_outstanding(
        futures: Dict[Any, Dict[str, Any]],
        crashed: List[Dict[str, Any]],
    ) -> Iterator[Tuple[int, str, Optional[CostReport]]]:
        """Yield results of already-completed futures; mark the rest crashed.

        A completed-but-unharvested result must not be discarded when the
        pool breaks — otherwise an innocent long-running configuration
        that straddles two crashes would be reported as the crasher.
        """
        for future, spec in futures.items():
            if future.done() and future.exception() is None:
                yield future.result()
            else:
                crashed.append(spec)

    # -- helpers --------------------------------------------------------------

    def _shared_frontends(
        self,
        pending: Sequence[Tuple[int, ExplorationTask, Optional[str]]],
        sources: Dict[Tuple[str, int, Optional[str]], Optional[str]],
    ) -> Tuple[Dict[Tuple[str, int, Optional[str]], int], Dict[int, Dict[str, Any]]]:
        """Bit-blast each distinct design instance once, if sharing is on.

        Returns ``(instance -> frontend id, frontend id -> artifacts)``;
        task specs carry only the small integer id, and the artifact table
        reaches workers by fork inheritance (or one initializer pickle per
        worker on spawn platforms) — see :meth:`_make_pool`.

        Known limitation: the bit-blasts run serially in the calling
        process before any worker starts, and every worker holds the
        whole table.  For sweeps whose frontend cost rivals the flows
        themselves, pass ``share_frontend=False`` (CLI
        ``--no-shared-frontend``) to bit-blast per configuration inside
        the workers instead.
        """
        frontend_ids: Dict[Tuple[str, int, Optional[str]], int] = {}
        frontends_by_id: Dict[int, Dict[str, Any]] = {}
        if not self.share_frontend:
            return frontend_ids, frontends_by_id
        for _, task, _ in pending:
            instance = (task.design, task.bitwidth, task.verilog)
            if instance in frontend_ids or sources[instance] is None:
                continue
            try:
                # The bit-blast runs in the calling process, so it gets the
                # same per-configuration timeout budget as the flows.
                guard = _AlarmGuard(self.timeout)
                try:
                    artifacts = frontend_artifacts(
                        task.design, task.bitwidth, verilog=sources[instance]
                    )
                finally:
                    guard.disarm()
            except Exception:
                # An unbuildable (or too slow) design is reported per-task
                # by the worker, with the real error message, instead of
                # aborting the sweep.
                continue
            frontend_id = len(frontends_by_id)
            frontend_ids[instance] = frontend_id
            frontends_by_id[frontend_id] = artifacts
        return frontend_ids, frontends_by_id

    def _task_spec(
        self,
        index: int,
        task: ExplorationTask,
        frontend_ids: Dict[Tuple[str, int, Optional[str]], int],
    ) -> Dict[str, Any]:
        return {
            "index": index,
            "design": task.design,
            "bitwidth": task.bitwidth,
            "flow": task.configuration.flow,
            "parameters": task.configuration.parameters,
            "verify": self.verify,
            "cost_model": self.cost_model,
            "timeout": self.timeout,
            "verilog": task.verilog,
            "frontend_id": frontend_ids.get(
                (task.design, task.bitwidth, task.verilog)
            ),
        }

    def _finish(
        self,
        task: ExplorationTask,
        key: Optional[str],
        error: str,
        report: Optional[CostReport],
    ) -> ConfigurationOutcome:
        self.executed += 1
        if report is None:
            self.failures += 1
            outcome = ConfigurationOutcome(task, error=error or "unknown error")
        else:
            if self.cache is not None and key is not None:
                self.cache.put(key, report, label=task.label())
            outcome = ConfigurationOutcome(task, report=report)
        return self._emit(outcome)

    def _emit(self, outcome: ConfigurationOutcome) -> ConfigurationOutcome:
        if self.on_result is not None:
            self.on_result(outcome)
        return outcome


# -- the paper-facing explorer ------------------------------------------------


class DesignSpaceExplorer:
    """Run several flow configurations on one design and analyse the results.

    Execution is delegated to an :class:`ExplorationEngine`; pass ``jobs``,
    ``cache_dir`` and ``timeout`` to explore in parallel, reuse previous
    results and survive misbehaving configurations.
    """

    def __init__(
        self,
        design: str,
        bitwidth: int,
        configurations: Optional[Sequence[FlowConfiguration]] = None,
        verify: Union[bool, str] = True,
        cost_model: str = "rtof",
        jobs: int = 1,
        cache_dir: Union[None, str, ResultCache] = None,
        timeout: Optional[float] = None,
        share_frontend: bool = True,
    ):
        self.design = design
        self.bitwidth = bitwidth
        self.configurations = list(configurations or default_configurations())
        self.verify = verify
        self.cost_model = cost_model
        self.engine = ExplorationEngine(
            jobs=jobs,
            cache=cache_dir,
            verify=verify,
            cost_model=cost_model,
            timeout=timeout,
            share_frontend=share_frontend,
        )
        self.reports: Dict[str, CostReport] = {}
        self.errors: Dict[str, str] = {}
        self._explored = False

    # -- exploration --------------------------------------------------------------

    def explore(
        self, on_result: Optional[Callable[[ConfigurationOutcome], None]] = None
    ) -> Dict[str, CostReport]:
        """Run every configuration; returns label -> cost report.

        Failing configurations are captured in :attr:`errors` instead of
        aborting the exploration; ``on_result`` streams outcomes as they
        complete.  Both :attr:`reports` and :attr:`errors` are reset at
        the start of every call, so a retry never shows stale failures.
        """
        self.reports = {}
        self.errors = {}
        tasks = build_sweep(self.design, self.bitwidth, self.configurations)
        self.engine.on_result = on_result
        for outcome in self.engine.run_iter(tasks):
            label = outcome.task.configuration.label()
            if outcome.ok:
                self.reports[label] = outcome.report
            else:
                self.errors[label] = outcome.error
        self._explored = True
        return dict(self.reports)

    def _ensure_explored(self) -> None:
        if not self.reports and not self._explored:
            self.explore()

    def _require_reports(self) -> None:
        self._ensure_explored()
        if not self.reports:
            detail = "; ".join(
                f"{label}: {error}" for label, error in self.errors.items()
            )
            raise RuntimeError(
                "no configuration produced a report"
                + (f" ({detail})" if detail else "")
            )

    # -- analysis -----------------------------------------------------------------

    def pareto_front(self) -> List[ParetoPoint]:
        """Non-dominated points on the (qubits, T-count) plane.

        Dominance rule: a report is dominated iff another report has
        ``qubits <=`` *and* ``t_count <=`` with at least one strict
        inequality.  Configurations with *identical* (qubits, T-count) do
        not dominate each other; the front keeps exactly one representative
        per distinct cost point — the lexicographically smallest
        configuration label — so redundant points never appear twice.
        """
        self._ensure_explored()
        return pareto_front_of(self.reports)

    def best_by_qubits(self) -> CostReport:
        """The configuration with the fewest qubits."""
        self._require_reports()
        return min(self.reports.values(), key=lambda report: report.qubits)

    def best_by_t_count(self) -> CostReport:
        """The configuration with the smallest T-count."""
        self._require_reports()
        return min(self.reports.values(), key=lambda report: report.t_count)

    def summary_rows(self) -> List[tuple]:
        """Rows ``(configuration, qubits, T-count, runtime)`` for reporting."""
        self._ensure_explored()
        return [
            (label, report.qubits, report.t_count, report.runtime_seconds)
            for label, report in sorted(self.reports.items())
        ]
