"""Paper-style table rendering for the benchmark harness.

The benchmark scripts collect :class:`repro.core.cost.CostReport` objects and
use these helpers to print rows shaped like the paper's Tables I-IV
(bit-width, qubits, T-count, runtime per design).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.cost import CostReport
from repro.utils.tables import format_table

__all__ = [
    "paper_table",
    "side_by_side_table",
    "ratio_summary",
    "flow_graph_description",
    "outcome_table",
    "reports_to_json",
    "reports_from_json",
]


def paper_table(reports: Sequence[CostReport], title: str = "") -> str:
    """Render one flow's reports as an ``n / qubits / T-count / runtime`` table."""
    rows = [report.as_table_row() for report in sorted(reports, key=lambda r: r.bitwidth)]
    return format_table(["n", "qubits", "T-count", "runtime [s]"], rows, title=title)


def side_by_side_table(
    groups: Dict[str, Sequence[CostReport]], title: str = ""
) -> str:
    """Render several designs side by side (like INTDIV vs NEWTON columns)."""
    bitwidths = sorted(
        {report.bitwidth for reports in groups.values() for report in reports}
    )
    headers = ["n"]
    for name in groups:
        headers += [f"{name} qubits", f"{name} T-count", f"{name} runtime [s]"]
    rows = []
    for n in bitwidths:
        row: List[object] = [n]
        for name, reports in groups.items():
            match = next((r for r in reports if r.bitwidth == n), None)
            if match is None:
                row += [None, None, None]
            else:
                row += [match.qubits, match.t_count, match.runtime_seconds]
        rows.append(row)
    return format_table(headers, rows, title=title)


def ratio_summary(
    reports: Sequence[CostReport], baselines: Dict[int, Tuple[int, int]]
) -> List[Tuple[int, float, float]]:
    """Qubit and T-count ratios versus a baseline (paper Section V narrative).

    ``baselines`` maps bit-width to ``(qubits, t_count)``.  Returns rows
    ``(n, qubit_ratio, t_ratio)`` where a ratio below 1 means the flow beats
    the baseline.
    """
    rows = []
    for report in sorted(reports, key=lambda r: r.bitwidth):
        if report.bitwidth not in baselines:
            continue
        base_qubits, base_t = baselines[report.bitwidth]
        rows.append(
            (
                report.bitwidth,
                report.qubits / base_qubits if base_qubits else float("inf"),
                report.t_count / base_t if base_t else float("inf"),
            )
        )
    return rows


def outcome_table(outcomes: Sequence, title: str = "") -> str:
    """Render engine outcomes — including failures and cache hits — as a table.

    ``outcomes`` are :class:`repro.core.explorer.ConfigurationOutcome`
    objects (typed loosely to avoid an import cycle).  Failed
    configurations show their error message instead of metrics, so a sweep
    report never silently drops a configuration.
    """
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            report = outcome.report
            status = "cached" if outcome.cached else "ok"
            rows.append(
                (
                    outcome.label(),
                    report.qubits,
                    report.t_count,
                    f"{report.runtime_seconds:.3f}",
                    status,
                )
            )
        else:
            rows.append((outcome.label(), "-", "-", "-", f"error: {outcome.error}"))
    return format_table(
        ["configuration", "qubits", "T-count", "runtime [s]", "status"],
        rows,
        title=title,
    )


def reports_to_json(reports: Iterable[CostReport], indent: Optional[int] = 2) -> str:
    """Serialise a collection of reports as a JSON array."""
    return json.dumps([report.to_dict() for report in reports], indent=indent)


def reports_from_json(text: str) -> List[CostReport]:
    """Inverse of :func:`reports_to_json`."""
    return [CostReport.from_dict(entry) for entry in json.loads(text)]


def flow_graph_description() -> str:
    """A textual rendering of Fig. 1 (the design-flow graph)."""
    lines = [
        "design level        INTDIV(n) / NEWTON(n)   [Verilog]",
        "                         |",
        "logic synthesis     bit-blast -> AIG -> {dc2 | resyn2} optimisation",
        "                         |",
        "                 +-------+----------------+----------------------+",
        "                 |                        |                      |",
        "              collapse                 exorcism               xmglut",
        "               (BDD)                   (ESOP)                  (XMG)",
        "                 |                        |                      |",
        "reversible   symbolic functional   ESOP-based (REVS, p)   hierarchical (REVS)",
        "synthesis        |                        |                      |",
        "                 +------------+-----------+----------+-----------+",
        "                              |",
        "quantum level        Clifford+T mapping / T-count cost models",
    ]
    return "\n".join(lines)
