"""Cost reports: the metrics the paper's experiments tabulate.

Every flow run produces a :class:`CostReport` holding the number of qubits,
the T-count (under a selectable cost model), the gate count, the largest
control count and the flow runtime — the columns of Tables I-IV.  When the
flow also maps the cascade to an explicit Clifford+T circuit (the
``map_model`` flow parameter), the quantum resource vector — T-depth,
total circuit depth and the mapped qubit count, cf.
:mod:`repro.quantum.resources` — joins the report as first-class metrics.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.reversible.circuit import ReversibleCircuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.quantum.resources import ResourceEstimate

__all__ = ["CostReport"]


@dataclass(frozen=True)
class CostReport:
    """Cost metrics of one synthesis result."""

    design: str
    flow: str
    bitwidth: int
    qubits: int
    t_count: int
    gate_count: int
    max_controls: int
    runtime_seconds: float
    verified: Optional[bool] = None
    #: Greedy T-depth of the explicit Clifford+T mapping (``None`` when the
    #: flow did not map; cf. :func:`repro.quantum.resources.estimate_resources`).
    t_depth: Optional[int] = None
    #: Total depth of the explicit Clifford+T mapping.
    qc_depth: Optional[int] = None
    #: Qubit count of the explicit mapping (lines + shared clean ancillas).
    qc_qubits: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_circuit(
        cls,
        circuit: ReversibleCircuit,
        design: str,
        flow: str,
        bitwidth: int,
        runtime_seconds: float,
        model: str = "rtof",
        verified: Optional[bool] = None,
        resources: Optional["ResourceEstimate"] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> "CostReport":
        """Measure a reversible circuit and build the report.

        ``resources`` optionally carries the estimate of the explicit
        Clifford+T mapping (produced by the flows' resources stage); its
        T-depth, total depth and qubit count become first-class report
        fields and its gate histogram lands in ``extra``.
        """
        extra = dict(extra or {})
        t_depth = qc_depth = qc_qubits = None
        if resources is not None:
            t_depth = resources.t_depth
            qc_depth = resources.depth
            qc_qubits = resources.num_qubits
            extra.setdefault("qc_gates", resources.num_gates)
        return cls(
            design=design,
            flow=flow,
            bitwidth=bitwidth,
            qubits=circuit.num_lines(),
            t_count=circuit.t_count(model),
            gate_count=circuit.num_gates(),
            max_controls=circuit.max_controls(),
            runtime_seconds=runtime_seconds,
            verified=verified,
            t_depth=t_depth,
            qc_depth=qc_depth,
            qc_qubits=qc_qubits,
            extra=extra,
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CostReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. a cache file)."""
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})

    def metrics(self) -> Dict[str, Any]:
        """The deterministic metrics: everything except the wall-clock runtime.

        Two runs of the same configuration (serial or parallel, cached or
        not) produce identical :meth:`metrics`; only ``runtime_seconds``
        varies between runs.
        """
        data = self.to_dict()
        data.pop("runtime_seconds", None)
        return data

    def as_table_row(self):
        """The ``(n, qubits, T-count, runtime)`` row used by the benchmarks."""
        return (self.bitwidth, self.qubits, self.t_count, self.runtime_seconds)

    def dominates(self, other: "CostReport") -> bool:
        """Pareto dominance on the (qubits, T-count) plane."""
        return (
            self.qubits <= other.qubits
            and self.t_count <= other.t_count
            and (self.qubits < other.qubits or self.t_count < other.t_count)
        )
