"""Content-addressed result cache for design space exploration.

Exploration sweeps re-run the same flow configurations over and over —
across engine invocations, across benchmark runs, across CLI sessions and
(since the job server exists) across concurrent service clients.  The
:class:`ResultCache` persists every :class:`~repro.core.cost.CostReport`
keyed by a digest of *what was actually computed*:

* the Verilog source of the design instance (not just its name, so editing
  a design invalidates its entries),
* the flow name and its parameters, canonicalised recursively (sorted
  dict keys, type-tagged scalars) so two semantically identical parameter
  sets hash identically regardless of insertion order or dict/pair-list
  spelling,
* the cost model and whether the run was verified,
* a cache-format version (bumped whenever report semantics change).

Each entry is one small JSON file under the cache directory, so the cache
is trivially inspectable, survives crashes entry-by-entry, and can be
shared between processes without locking (writes go through a temp file +
atomic rename).  A corrupt or truncated entry file is treated exactly like
a missing one — :meth:`ResultCache.get` and ``in`` agree — and is unlinked
on first access so it stops occupying an entry slot.

With ``max_entries`` set the cache is bounded: after every write the
oldest entries (least-recently-used, measured by file mtime — a cache hit
refreshes the entry's mtime) are evicted until the bound holds, and the
instance counts ``hits`` / ``misses`` / ``evictions`` for the service's
metrics endpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.cost import CostReport

__all__ = ["ResultCache", "cache_key", "CACHE_FORMAT_VERSION"]

#: Bump to invalidate all existing cache entries when the meaning of a
#: report (or of a flow) changes incompatibly.  Version 6: the ``lut``
#: flow gained the SAT-backed ``strategy=exact`` pebbling and
#: ``lut_synth=exact`` synthesis (plus the ``exact_time_budget`` parameter
#: and ``pebble_engine`` / ``pebble_optimal`` metrics), so old entries
#: must not shadow runs of the new engines.  Version 7: parameter
#: canonicalisation became recursive and order-insensitive (dict- and
#: list-valued parameters previously hashed by ``repr`` insertion order),
#: so every key of a parameterised configuration potentially changed.
CACHE_FORMAT_VERSION = 7


def _canonical_value(value: Any) -> Any:
    """A JSON-stable, order-insensitive shape of one parameter value.

    Every value becomes a type-tagged JSON structure: dict items are
    sorted by their canonicalised key (insertion order never leaks into
    the cache key), sets are sorted, lists and tuples keep their
    (semantic) order but collapse onto one tag, and scalars carry a type
    tag so ``1`` / ``1.0`` / ``True`` / ``"1"`` stay distinct.  Unknown
    objects fall back to ``repr`` — deterministic for the value types
    flow parameters actually use.
    """
    if value is None or isinstance(value, (bool, str)):
        return [type(value).__name__, value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        # repr() is the shortest round-trip representation, so equal
        # floats canonicalise equally (and -0.0 stays distinct from 0.0).
        return ["float", repr(value)]
    if isinstance(value, dict):
        items = [
            [_canonical_value(key), _canonical_value(entry)]
            for key, entry in value.items()
        ]
        items.sort(key=lambda item: json.dumps(item[0], sort_keys=True))
        return ["dict", items]
    if isinstance(value, (set, frozenset)):
        elements = sorted(
            (_canonical_value(entry) for entry in value),
            key=lambda element: json.dumps(element, sort_keys=True),
        )
        return ["set", elements]
    if isinstance(value, (list, tuple)):
        return ["seq", [_canonical_value(entry) for entry in value]]
    return ["repr", type(value).__name__, repr(value)]


def _canonical_parameters(parameters: Any) -> List[List[Any]]:
    """Parameters in a deterministic, JSON-friendly shape.

    Accepts a dict or an iterable of ``(name, value)`` pairs; both
    spellings of the same parameter set canonicalise identically.  Pairs
    are sorted by parameter name only (never by value, so mixed-type
    values cannot raise) with later duplicates winning, matching the
    ``dict(parameters)`` semantics the flow runner applies.
    """
    if isinstance(parameters, dict):
        items = list(parameters.items())
    else:
        items = [tuple(pair) for pair in parameters]
    merged: Dict[str, Any] = {}
    for name, value in items:
        merged[str(name)] = value
    return [
        [name, _canonical_value(value)] for name, value in sorted(merged.items())
    ]


def cache_key(
    source: str,
    flow: str,
    parameters: Any,
    bitwidth: int,
    cost_model: str = "rtof",
    verify: Any = True,
    design: str = "",
) -> str:
    """Content-addressed key of one flow execution.

    ``source`` is the Verilog text of the design instance; ``parameters``
    is a dict or a tuple of ``(name, value)`` pairs.  ``design`` is the
    design's name — included because a cached :class:`CostReport` carries
    the name, so two designs sharing one Verilog source must not collide.
    ``verify`` accepts the historical booleans as well as the named
    verification modes (``off``/``sampled``/``full``/``auto``); both forms
    address the same entry.
    """
    from repro.verify.differential import normalize_verify_mode

    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "source": source,
            "design": design,
            "flow": flow,
            "parameters": _canonical_parameters(parameters),
            "bitwidth": bitwidth,
            "cost_model": cost_model,
            "verify": normalize_verify_mode(verify),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent store of flow results, one JSON file per entry.

    ``max_entries`` bounds the cache: after every :meth:`put` the
    least-recently-used entries (by file mtime; hits refresh it) are
    unlinked until at most ``max_entries`` remain.  The instance counts
    ``hits`` / ``misses`` / ``evictions``; all counters are thread-safe,
    and the file operations tolerate concurrent readers/writers/evictors
    in other processes (atomic renames, unlink races ignored).
    """

    def __init__(self, directory, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load(self, key: str) -> Tuple[Optional[CostReport], bool]:
        """``(report, corrupt)`` — the entry, or why there is none.

        ``corrupt`` is ``True`` when an entry file exists but cannot be
        decoded into a report (truncated write, foreign file); both
        :meth:`get` and :meth:`__contains__` build on this, so membership
        and retrieval can never disagree.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None, False
        try:
            data = json.loads(text)
            report = CostReport.from_dict(data["report"])
        except (ValueError, KeyError, TypeError):
            return None, True
        return report, False

    def get(self, key: str) -> Optional[CostReport]:
        """The cached report for ``key``, or ``None`` (counting hit/miss).

        A corrupt entry file counts as a miss and is unlinked, so it
        neither satisfies later ``in`` checks nor occupies an entry slot
        (``len``/eviction) forever.
        """
        report, corrupt = self._load(key)
        if report is None:
            if corrupt:
                try:
                    os.unlink(self._path(key))
                except OSError:
                    pass
            with self._lock:
                self.misses += 1
            return None
        try:
            # Refresh the entry's recency so bounded caches evict true LRU
            # order, not insertion order.
            os.utime(self._path(key))
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return report

    def put(self, key: str, report: CostReport, **metadata: Any) -> None:
        """Persist a report under ``key`` (atomic write), then evict."""
        entry = {
            "key": key,
            "version": CACHE_FORMAT_VERSION,
            "created": time.time(),
            "report": report.to_dict(),
        }
        if metadata:
            entry["metadata"] = metadata
        fd, tmp_name = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.max_entries is not None:
            self._evict(keep=key)

    def _evict(self, keep: Optional[str] = None) -> None:
        """Unlink least-recently-used entries until ``max_entries`` holds.

        The just-written ``keep`` entry is never evicted even if a clock
        skew makes it look old.  Unlink races with other processes are
        benign: whoever loses the race simply does not count the eviction.
        """
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue  # concurrently evicted
        excess = len(entries) - (self.max_entries or 0)
        if excess <= 0:
            return
        entries.sort(key=lambda item: item[0])
        protected = None if keep is None else self._path(keep)
        for _, path in entries:
            if excess <= 0:
                break
            if protected is not None and path == protected:
                continue
            try:
                path.unlink()
            except OSError:
                excess -= 1  # someone else removed it; the bound still shrank
                continue
            with self._lock:
                self.evictions += 1
            excess -= 1

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would return a report (no counter effect)."""
        report, _ = self._load(key)
        return report is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` counted by this cache instance."""
        return self.hits, self.misses

    def counters(self) -> Dict[str, Any]:
        """All counters plus the current entry count and hit rate."""
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "entries": len(self),
            "max_entries": self.max_entries,
            "hit_rate": (hits / total) if total else None,
        }
