"""Content-addressed result cache for design space exploration.

Exploration sweeps re-run the same flow configurations over and over —
across engine invocations, across benchmark runs, across CLI sessions.  The
:class:`ResultCache` persists every :class:`~repro.core.cost.CostReport`
keyed by a digest of *what was actually computed*:

* the Verilog source of the design instance (not just its name, so editing
  a design invalidates its entries),
* the flow name and its parameters,
* the cost model and whether the run was verified,
* a cache-format version (bumped whenever report semantics change).

Each entry is one small JSON file under the cache directory, so the cache
is trivially inspectable, survives crashes entry-by-entry, and can be
shared between processes without locking (writes go through a temp file +
atomic rename).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.core.cost import CostReport

__all__ = ["ResultCache", "cache_key"]

#: Bump to invalidate all existing cache entries when the meaning of a
#: report (or of a flow) changes incompatibly.  Version 5: every flow
#: gained the ``rev-opt`` (reversible peephole pipeline) and ``resources``
#: (explicit Clifford+T mapping via ``map_model``, T-depth/depth metrics)
#: stages, reports carry the ``t_depth`` / ``qc_depth`` / ``qc_qubits``
#: fields, and the explicit mapping defaults to the 4-T relative-phase
#: Toffoli chains.  Version 6: the ``lut`` flow gained the SAT-backed
#: ``strategy=exact`` pebbling and ``lut_synth=exact`` synthesis (plus the
#: ``exact_time_budget`` parameter and ``pebble_engine`` /
#: ``pebble_optimal`` metrics), so old entries must not shadow runs of the
#: new engines.
CACHE_FORMAT_VERSION = 6


def _canonical_parameters(parameters: Any) -> Any:
    """Parameters in a deterministic, JSON-friendly shape."""
    if isinstance(parameters, dict):
        items = sorted(parameters.items())
    else:
        items = sorted(tuple(parameters))
    return [[str(key), repr(value)] for key, value in items]


def cache_key(
    source: str,
    flow: str,
    parameters: Any,
    bitwidth: int,
    cost_model: str = "rtof",
    verify: Any = True,
    design: str = "",
) -> str:
    """Content-addressed key of one flow execution.

    ``source`` is the Verilog text of the design instance; ``parameters``
    is a dict or a tuple of ``(name, value)`` pairs.  ``design`` is the
    design's name — included because a cached :class:`CostReport` carries
    the name, so two designs sharing one Verilog source must not collide.
    ``verify`` accepts the historical booleans as well as the named
    verification modes (``off``/``sampled``/``full``/``auto``); both forms
    address the same entry.
    """
    from repro.verify.differential import normalize_verify_mode

    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "source": source,
            "design": design,
            "flow": flow,
            "parameters": _canonical_parameters(parameters),
            "bitwidth": bitwidth,
            "cost_model": cost_model,
            "verify": normalize_verify_mode(verify),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent store of flow results, one JSON file per entry."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[CostReport]:
        """The cached report for ``key``, or ``None`` (counting hit/miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            report = CostReport.from_dict(data["report"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, key: str, report: CostReport, **metadata: Any) -> None:
        """Persist a report under ``key`` (atomic write)."""
        entry = {
            "key": key,
            "version": CACHE_FORMAT_VERSION,
            "created": time.time(),
            "report": report.to_dict(),
        }
        if metadata:
            entry["metadata"] = metadata
        fd, tmp_name = tempfile.mkstemp(
            prefix=".cache-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Tuple[int, int]:
        """``(hits, misses)`` counted by this cache instance."""
        return self.hits, self.misses
