"""Per-client token-bucket rate limiting for the job server.

Each client (identified by the ``X-Client-Id`` request header, falling
back to the peer address) owns one :class:`TokenBucket`: ``burst`` tokens
of capacity refilled continuously at ``rate`` tokens per second.  A
request that finds no token is rejected with HTTP 429 instead of queueing,
so one greedy client cannot starve the worker pool — the shared cache
already makes its *repeated* sweeps free, the limiter bounds how fast it
can submit *new* work.

Buckets are created lazily and pruned once they are both full and idle,
so a long-running server does not accumulate state for every client that
ever connected.  Everything is monotonic-clock based and thread-safe.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

__all__ = ["RateLimiter", "TokenBucket"]


class TokenBucket:
    """``burst``-capacity bucket refilled at ``rate`` tokens per second."""

    def __init__(
        self, rate: float, burst: float, clock=time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        now = self._clock()
        with self._lock:
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Current token balance (after refill)."""
        now = self._clock()
        with self._lock:
            self._refill(now)
            return self._tokens

    def idle_and_full(self) -> bool:
        """Whether the bucket holds no state worth keeping."""
        return self.available() >= self.burst


class RateLimiter:
    """Lazily created per-client token buckets.

    ``rate``/``burst`` apply to every client identically; ``rate=None``
    disables limiting (every check passes), which is the CLI default for
    trusted local use.  ``max_clients`` bounds the table: when exceeded,
    full-and-idle buckets are pruned first, and as a last resort the
    oldest bucket is dropped (a dropped client restarts with a full
    bucket — strictly more permissive, never less).
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: float = 5,
        max_clients: int = 4096,
        clock=time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def check(self, client: str, tokens: float = 1.0) -> bool:
        """Whether ``client`` may proceed (consuming ``tokens`` if so)."""
        if self.rate is None:
            return True
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._prune()
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, clock=self._clock
                )
        return bucket.try_acquire(tokens)

    def _prune(self) -> None:
        """Drop reclaimable buckets; called with the table lock held."""
        for client in [
            name for name, bucket in self._buckets.items() if bucket.idle_and_full()
        ]:
            del self._buckets[client]
        while len(self._buckets) >= self.max_clients:
            self._buckets.pop(next(iter(self._buckets)))

    def snapshot(self) -> Tuple[int, bool]:
        """``(tracked clients, enabled)`` for the metrics endpoint."""
        with self._lock:
            return len(self._buckets), self.enabled
