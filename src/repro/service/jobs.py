"""Job model and worker pool of the synthesis service.

A *job* is one exploration sweep — designs × bitwidths × flow
configurations — submitted by a client and executed asynchronously by the
:class:`JobManager`'s worker threads.  Every worker drives its own
:class:`~repro.core.explorer.ExplorationEngine` over the manager's single
shared :class:`~repro.core.cache.ResultCache`, which is what makes the
service more than a remote CLI: any configuration any client ever
computed is a cache hit for every later job, across processes and across
server restarts (the cache is a directory of files).

Execution and observation are decoupled: workers append outcome events to
the job under a condition variable, and any number of observers (the
streaming HTTP endpoint, the blocking :meth:`Job.wait` used by tests)
consume them at their own pace via cursors.  Each event carries the
job-so-far Pareto front per design instance, so a streaming client watches
the front tighten configuration by configuration.

Shutdown is graceful by default: the manager stops accepting submissions,
lets queued and running jobs finish (*drain*), and only then stops its
workers — no completed result is ever lost.  A non-draining shutdown
instead cancels between configurations via the engine's ``should_stop``
hook; configurations already running still complete and are recorded.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.cache import ResultCache
from repro.core.cost import CostReport
from repro.core.explorer import (
    ConfigurationOutcome,
    ExplorationEngine,
    ExplorationTask,
    FlowConfiguration,
    build_sweep,
    default_configurations,
    flow_default_configurations,
    pareto_front_of,
)
from repro.service.metrics import ServiceMetrics

__all__ = ["Job", "JobManager", "JobSpec", "ServiceClosed"]


class ServiceClosed(RuntimeError):
    """Raised by :meth:`JobManager.submit` once shutdown has begun."""


#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, CANCELLED)


def _parse_configurations(payload: Dict[str, Any]) -> List[FlowConfiguration]:
    """Expand the payload's configuration description (see from_payload)."""
    if "sweeps" in payload:
        from repro.cli import parse_sweep_spec  # deferred: repro.cli is heavy

        configurations: List[FlowConfiguration] = []
        for spec in payload["sweeps"]:
            configurations.extend(parse_sweep_spec(str(spec)).configurations())
        return configurations
    if "configurations" in payload:
        configurations = []
        for entry in payload["configurations"]:
            if not isinstance(entry, dict) or "flow" not in entry:
                raise ValueError(
                    "each configuration must be an object with a 'flow' key"
                )
            parameters = entry.get("parameters", {})
            if not isinstance(parameters, dict):
                raise ValueError("configuration 'parameters' must be an object")
            configurations.append(
                FlowConfiguration(
                    str(entry["flow"]), tuple(sorted(parameters.items()))
                )
            )
        return configurations
    if "flow" in payload:
        return flow_default_configurations(str(payload["flow"]))
    return default_configurations()


@dataclass(frozen=True)
class JobSpec:
    """What one job computes: a sweep plus execution knobs."""

    designs: Tuple[str, ...]
    bitwidths: Tuple[int, ...]
    configurations: Tuple[FlowConfiguration, ...]
    verify: str = "off"
    cost_model: str = "rtof"
    jobs: int = 1
    timeout: Optional[float] = None
    verilog: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Build a spec from a JSON request body.

        Recognised keys: ``design``/``designs``, ``bitwidth``/``bitwidths``,
        one of ``sweeps`` (CLI ``--sweep`` strings) / ``configurations``
        (``[{"flow": ..., "parameters": {...}}]``) / ``flow`` (that flow's
        default sweep) — defaulting to the paper's five configurations —
        plus ``verify``, ``cost_model``, ``jobs``, ``timeout`` and
        ``verilog`` (custom design source).  Raises ``ValueError`` on
        malformed input; nothing is executed yet.
        """
        if not isinstance(payload, dict):
            raise ValueError("job payload must be a JSON object")
        designs = payload.get("designs", payload.get("design", "intdiv"))
        if isinstance(designs, str):
            designs = [designs]
        if not designs or not all(isinstance(d, str) for d in designs):
            raise ValueError("'designs' must be a non-empty list of names")
        bitwidths = payload.get("bitwidths", payload.get("bitwidth", 4))
        if isinstance(bitwidths, int):
            bitwidths = [bitwidths]
        if not bitwidths or not all(
            isinstance(n, int) and not isinstance(n, bool) and n > 0
            for n in bitwidths
        ):
            raise ValueError("'bitwidths' must be a non-empty list of positive ints")
        verify = payload.get("verify", "off")
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError("'jobs' must be a positive integer")
        timeout = payload.get("timeout")
        if timeout is not None and not (
            isinstance(timeout, (int, float)) and timeout > 0
        ):
            raise ValueError("'timeout' must be a positive number")
        verilog = payload.get("verilog")
        if verilog is not None and not isinstance(verilog, str):
            raise ValueError("'verilog' must be a string of Verilog source")
        spec = cls(
            designs=tuple(designs),
            bitwidths=tuple(bitwidths),
            configurations=tuple(_parse_configurations(payload)),
            verify=str(verify) if not isinstance(verify, bool) else verify,
            cost_model=str(payload.get("cost_model", "rtof")),
            jobs=jobs,
            timeout=float(timeout) if timeout is not None else None,
            verilog=verilog,
        )
        spec.tasks()  # fail fast on an empty or inconsistent sweep
        return spec

    def tasks(self) -> List[ExplorationTask]:
        """The sweep expanded into engine tasks (validates the spec)."""
        tasks = build_sweep(
            list(self.designs),
            list(self.bitwidths),
            list(self.configurations),
            verilog=self.verilog,
        )
        if not tasks:
            raise ValueError("job expands to an empty sweep")
        return tasks


def _pareto_groups(
    reports: Dict[Tuple[str, int], Dict[str, CostReport]]
) -> List[Dict[str, Any]]:
    """Per design-instance Pareto fronts, serialised for JSON transport."""
    groups = []
    for (design, bitwidth), labelled in sorted(reports.items()):
        groups.append(
            {
                "design": design,
                "bitwidth": bitwidth,
                "points": [
                    {
                        "configuration": point.configuration,
                        "aliases": list(point.aliases),
                        "qubits": point.qubits,
                        "t_count": point.t_count,
                    }
                    for point in pareto_front_of(labelled)
                ],
            }
        )
    return groups


class Job:
    """One submitted sweep: spec, lifecycle state, streamed outcome events.

    Observers read :attr:`events` through :meth:`events_since` /
    :meth:`wait_events` cursors; the worker appends under the condition
    variable and notifies.  All mutation happens through the ``_``-methods
    called by the owning :class:`JobManager` worker.
    """

    def __init__(self, job_id: str, spec: JobSpec, num_tasks: int) -> None:
        self.id = job_id
        self.spec = spec
        self.num_tasks = num_tasks
        self.state = QUEUED
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.error: Optional[str] = None
        self.completed = 0
        self.cached = 0
        self.failed = 0
        self.cancelled = 0
        self.events: List[Dict[str, Any]] = []
        self._reports: Dict[Tuple[str, int], Dict[str, CostReport]] = {}
        self._condition = threading.Condition()

    # -- worker side -----------------------------------------------------------

    def _append_event(self, event: Dict[str, Any]) -> None:
        with self._condition:
            self.events.append(event)
            self._condition.notify_all()

    def _mark_running(self) -> None:
        with self._condition:
            self.state = RUNNING
            self.started = time.time()
            self._condition.notify_all()

    def _record(self, outcome: ConfigurationOutcome) -> None:
        """Fold one engine outcome into counters, fronts and the event log."""
        task = outcome.task
        event: Dict[str, Any] = {
            "type": "outcome",
            "label": task.label(),
            "design": task.design,
            "bitwidth": task.bitwidth,
            "configuration": task.configuration.label(),
            "ok": outcome.ok,
            "cached": outcome.cached,
        }
        if outcome.ok:
            self.completed += 1
            if outcome.cached:
                self.cached += 1
            event["report"] = outcome.report.to_dict()
            instance = self._reports.setdefault((task.design, task.bitwidth), {})
            instance[task.configuration.label()] = outcome.report
        else:
            if outcome.error and outcome.error.startswith("cancelled"):
                self.cancelled += 1
            else:
                self.failed += 1
            event["error"] = outcome.error
        event["pareto"] = _pareto_groups(self._reports)
        self._append_event(event)

    def _finish(self, state: str, error: Optional[str] = None) -> None:
        with self._condition:
            self.state = state
            self.error = error
            self.finished = time.time()
            self.events.append(
                {
                    "type": "done",
                    "state": state,
                    "error": error,
                    "pareto": _pareto_groups(self._reports),
                    "summary": self._summary(),
                }
            )
            self._condition.notify_all()

    # -- observer side ---------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in _TERMINAL

    def events_since(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        """Events appended after ``cursor`` plus the new cursor."""
        with self._condition:
            events = self.events[cursor:]
        return events, cursor + len(events)

    def wait_events(
        self, cursor: int, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Block until events past ``cursor`` exist, the job ends, or timeout."""
        with self._condition:
            self._condition.wait_for(
                lambda: len(self.events) > cursor or self.done, timeout
            )
            events = self.events[cursor:]
        return events, cursor + len(events)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state; returns success."""
        with self._condition:
            return self._condition.wait_for(lambda: self.done, timeout)

    def reports(self) -> Dict[Tuple[str, int], Dict[str, CostReport]]:
        """``(design, bitwidth) -> configuration label -> report`` so far."""
        with self._condition:
            return {
                instance: dict(labelled)
                for instance, labelled in self._reports.items()
            }

    def pareto(self) -> List[Dict[str, Any]]:
        """The current per-instance Pareto fronts (JSON-ready)."""
        with self._condition:
            return _pareto_groups(self._reports)

    def _summary(self) -> Dict[str, Any]:
        return {
            "num_tasks": self.num_tasks,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "cancelled": self.cancelled,
        }

    def to_dict(self, include_events: bool = False) -> Dict[str, Any]:
        """JSON-ready job status (the ``GET /jobs/<id>`` body)."""
        with self._condition:
            data = {
                "id": self.id,
                "state": self.state,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "error": self.error,
                **self._summary(),
                "pareto": _pareto_groups(self._reports),
            }
            if include_events:
                data["events"] = list(self.events)
        return data


class JobManager:
    """A worker-thread pool draining a FIFO job queue through the engine.

    Parameters
    ----------
    cache:
        ``None``, a directory path, or a prebuilt
        :class:`~repro.core.cache.ResultCache`; shared by every worker, so
        concurrent jobs deduplicate work through it.
    workers:
        Worker threads (concurrent jobs).  Each runs one job at a time.
    max_engine_jobs:
        Per-job concurrency limit: a job may request ``jobs`` worker
        *processes* for its engine, clamped to this bound so one job
        cannot monopolise the machine.
    metrics:
        Optional :class:`~repro.service.metrics.ServiceMetrics` receiving
        job/flow counters and latency observations.
    """

    def __init__(
        self,
        cache: Union[None, str, ResultCache] = None,
        workers: int = 2,
        max_engine_jobs: int = 1,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_engine_jobs < 1:
            raise ValueError("max_engine_jobs must be >= 1")
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.workers = workers
        self.max_engine_jobs = max_engine_jobs
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._accepting = True
        self._cancel_event = threading.Event()
        self._lock = threading.Lock()
        self._sequence = itertools.count(1)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-service-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------------

    @property
    def accepting(self) -> bool:
        return self._accepting

    def submit(self, spec: Union[JobSpec, Dict[str, Any]]) -> Job:
        """Validate, enqueue and return a new job (raising on bad specs).

        Raises :class:`ServiceClosed` once shutdown has begun and
        ``ValueError`` for malformed specs — both *before* the job exists,
        so every listed job is executable.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_payload(spec)
        tasks = spec.tasks()  # validates; raises ValueError
        with self._lock:
            if not self._accepting:
                raise ServiceClosed("service is shutting down")
            job_id = f"job-{next(self._sequence)}-{uuid.uuid4().hex[:8]}"
            job = Job(job_id, spec, num_tasks=len(tasks))
            self._jobs[job_id] = job
        self.metrics.incr("jobs_submitted")
        self._queue.put(job_id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    # -- execution -------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            job = self.get(job_id)
            try:
                if job is not None:
                    self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        if self._cancel_event.is_set():
            job._finish(CANCELLED, "cancelled before start")
            self.metrics.incr("jobs_cancelled")
            return
        job._mark_running()
        self.metrics.incr("jobs_started")
        started = time.monotonic()
        engine = ExplorationEngine(
            jobs=min(job.spec.jobs, self.max_engine_jobs),
            cache=self.cache,
            verify=job.spec.verify,
            cost_model=job.spec.cost_model,
            timeout=job.spec.timeout,
        )
        try:
            tasks = job.spec.tasks()
            clock = time.monotonic()
            for outcome in engine.run_iter(
                tasks, should_stop=self._cancel_event.is_set
            ):
                now = time.monotonic()
                if outcome.ok and not outcome.cached:
                    self.metrics.observe("flow_seconds", now - clock)
                    self.metrics.incr("flows_executed")
                elif outcome.cached:
                    self.metrics.incr("flows_cached")
                clock = now
                job._record(outcome)
        except Exception as exc:  # job isolation: a worker must survive
            job._finish(FAILED, f"{type(exc).__name__}: {exc}")
            self.metrics.incr("jobs_failed")
            return
        self.metrics.observe("job_seconds", time.monotonic() - started)
        if job.cancelled:
            job._finish(CANCELLED, "cancelled by shutdown")
            self.metrics.incr("jobs_cancelled")
        else:
            job._finish(DONE)
            self.metrics.incr("jobs_done")

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Stop the pool; returns whether every job reached a terminal state.

        ``drain=True`` (the default) refuses new submissions but lets
        every queued and running job finish — no completed result is
        lost.  ``drain=False`` additionally asks running engines to stop
        between configurations (outcomes already produced are kept; the
        remaining ones are recorded as cancelled).  ``timeout`` bounds the
        wait; workers are always told to exit before returning.
        """
        with self._lock:
            self._accepting = False
        if not drain:
            self._cancel_event.set()
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = True
        for job in self.jobs():
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not job.wait(remaining):
                drained = False
                if remaining == 0.0:
                    break
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.1, deadline - time.monotonic())
            )
            thread.join(remaining)
        return drained

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Queue gauges + aggregate counters (the ``/metrics`` building block)."""
        jobs = self.jobs()
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
        data: Dict[str, Any] = {
            "jobs": {
                "total": len(jobs),
                "queued": by_state.get(QUEUED, 0),
                "running": by_state.get(RUNNING, 0),
                "done": by_state.get(DONE, 0),
                "failed": by_state.get(FAILED, 0),
                "cancelled": by_state.get(CANCELLED, 0),
            },
            "workers": self.workers,
            "accepting": self.accepting,
        }
        if self.cache is not None:
            data["cache"] = self.cache.counters()
        return data
