"""The asyncio HTTP/JSON front end of the synthesis service.

A deliberately small HTTP/1.1 server built directly on
``asyncio.start_server`` — the repository is dependency-free, so there is
no web framework underneath, just a request parser, a route table and
chunked responses.  Endpoints:

=====================  ======================================================
``POST /jobs``          submit a sweep (JSON body, see
                        :meth:`repro.service.jobs.JobSpec.from_payload`);
                        returns ``202`` with the job id.  Rate limited per
                        client (``X-Client-Id`` header or peer address).
``GET /jobs``           summaries of every job.
``GET /jobs/<id>``      status, counters and current Pareto fronts.
``GET /jobs/<id>/stream``  chunked stream of outcome events — one JSON
                        object per line, each carrying the job-so-far
                        Pareto front — ending with the ``done`` event.
``GET /metrics``        counters, latency quantiles (p50/p95), queue
                        gauges, cache hit/miss/eviction counters.
``GET /health``         liveness plus whether the server is draining.
``POST /shutdown``      graceful shutdown: stop accepting jobs, drain
                        in-flight ones (``{"drain": false}`` cancels
                        between configurations instead), then exit.
=====================  ======================================================

Connections are one-request (``Connection: close``), which keeps the
parser honest and sidesteps pipelining; streaming responses use
``Transfer-Encoding: chunked``.  :func:`start_in_thread` runs the whole
server on a background thread for tests, benchmarks and embedding.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.service.jobs import JobManager, ServiceClosed
from repro.service.metrics import ServiceMetrics
from repro.service.ratelimit import RateLimiter

__all__ = ["SynthesisServer", "ServiceHandle", "start_in_thread"]

#: Upper bound on request bodies (custom Verilog sources included).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-connection inactivity budget while reading a request.
READ_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: aborts request handling with a status + message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SynthesisServer:
    """Asyncio HTTP server over a :class:`~repro.service.jobs.JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        ratelimiter: Optional[RateLimiter] = None,
        stream_poll_seconds: float = 0.05,
    ) -> None:
        self.manager = manager
        self.metrics: ServiceMetrics = manager.metrics
        self.ratelimiter = ratelimiter if ratelimiter is not None else RateLimiter(None)
        self.host = host
        self.port = port
        self.stream_poll_seconds = stream_poll_seconds
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._drain = True
        self._draining = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (resolves an ephemeral port)."""
        self._shutdown_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=1024 * 1024
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self, drain: bool = True) -> None:
        """Flag the serve loop to shut down (threadsafe via ``call_soon``)."""
        self._drain = drain and self._drain
        self._draining = True
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> bool:
        """Serve until a shutdown request, then drain; returns drain success.

        The manager drains on an executor thread (its workers are plain
        threads), so status/metrics/stream requests keep being answered
        while in-flight jobs finish; only then does the listener close.
        """
        if self._server is None:
            await self.start()
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, lambda: self.manager.shutdown(drain=self._drain)
        )
        self._server.close()
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:  # a stuck client must not block exit
            pass
        return drained

    # -- request plumbing ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.incr("http_requests")
        try:
            try:
                method, path, headers, body = await asyncio.wait_for(
                    self._read_request(reader), READ_TIMEOUT
                )
            except asyncio.TimeoutError:
                return
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": exc.message}
                )
                return
            try:
                await self._route(method, path, headers, body, writer)
            except _HttpError as exc:
                await self._send_json(writer, exc.status, {"error": exc.message})
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # one bad request must not kill the server
                self.metrics.incr("http_errors")
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "invalid Content-Length")
            if length < 0 or length > MAX_BODY_BYTES:
                raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            body = await reader.readexactly(length)
        return method, path, headers, body

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        path = path.split("?", 1)[0]
        if path == "/health":
            self._require(method, "GET")
            await self._send_json(
                writer,
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "accepting": self.manager.accepting,
                },
            )
        elif path == "/metrics":
            self._require(method, "GET")
            await self._send_json(writer, 200, self._metrics_payload())
        elif path == "/jobs" and method == "POST":
            await self._submit(headers, body, writer)
        elif path == "/jobs":
            self._require(method, "GET")
            await self._send_json(
                writer,
                200,
                {"jobs": [job.to_dict() for job in self.manager.jobs()]},
            )
        elif path.startswith("/jobs/"):
            await self._job_route(method, path, writer)
        elif path == "/shutdown":
            self._require(method, "POST")
            payload = self._parse_body(body) if body else {}
            drain = bool(payload.get("drain", True))
            self.request_shutdown(drain=drain)
            await self._send_json(
                writer, 202, {"shutting_down": True, "drain": drain}
            )
        else:
            raise _HttpError(404, f"no such endpoint: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"use {expected}")

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            raise _HttpError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    def _client_id(
        self, headers: Dict[str, str], writer: asyncio.StreamWriter
    ) -> str:
        if "x-client-id" in headers:
            return headers["x-client-id"]
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    async def _submit(
        self,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        client = self._client_id(headers, writer)
        if not self.ratelimiter.check(client):
            self.metrics.incr("http_rate_limited")
            raise _HttpError(429, "rate limit exceeded; retry later")
        payload = self._parse_body(body)
        try:
            job = self.manager.submit(payload)
        except ServiceClosed as exc:
            raise _HttpError(503, str(exc))
        except ValueError as exc:
            raise _HttpError(400, str(exc))
        await self._send_json(
            writer,
            202,
            {
                "id": job.id,
                "state": job.state,
                "num_tasks": job.num_tasks,
                "status_url": f"/jobs/{job.id}",
                "stream_url": f"/jobs/{job.id}/stream",
            },
        )

    async def _job_route(
        self, method: str, path: str, writer: asyncio.StreamWriter
    ) -> None:
        segments = path.strip("/").split("/")
        job = self.manager.get(segments[1])
        if job is None:
            raise _HttpError(404, f"no such job: {segments[1]}")
        if len(segments) == 2:
            self._require(method, "GET")
            await self._send_json(writer, 200, job.to_dict())
        elif len(segments) == 3 and segments[2] == "stream":
            self._require(method, "GET")
            await self._stream_job(job, writer)
        else:
            raise _HttpError(404, f"no such endpoint: {path}")

    async def _stream_job(self, job, writer: asyncio.StreamWriter) -> None:
        """Chunked response: one JSON event per line until the job ends."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        cursor = 0
        finished = False
        while not finished:
            events, cursor = job.events_since(cursor)
            for event in events:
                if event.get("type") == "done":
                    finished = True
                chunk = (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk + b"\r\n")
            if events:
                await writer.drain()
            if not finished:
                await asyncio.sleep(self.stream_poll_seconds)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- metrics ---------------------------------------------------------------

    def _metrics_payload(self) -> Dict[str, Any]:
        tracked_clients, limiting = self.ratelimiter.snapshot()
        payload = {
            "uptime_seconds": time.time() - self.started_at,
            "draining": self._draining,
            **self.metrics.snapshot(),
            **self.manager.stats(),
            "ratelimit": {
                "enabled": limiting,
                "tracked_clients": tracked_clients,
                "rate": self.ratelimiter.rate,
                "burst": self.ratelimiter.burst if limiting else None,
            },
        }
        return payload


class ServiceHandle:
    """A server running on a background thread (tests, benchmarks, CLI).

    Exposes the resolved ``url``, the underlying ``server`` / ``manager``,
    and threadsafe ``request_shutdown()`` + ``join()``.
    """

    def __init__(self) -> None:
        self.server: Optional[SynthesisServer] = None
        self.manager: Optional[JobManager] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.thread: Optional[threading.Thread] = None
        self.drained: Optional[bool] = None
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        assert self.server is not None
        return f"http://{self.server.host}:{self.server.port}"

    def request_shutdown(self, drain: bool = True) -> None:
        """Ask the server to shut down (from any thread)."""
        if self.loop is not None and self.server is not None:
            self.loop.call_soon_threadsafe(self.server.request_shutdown, drain)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the server thread to exit; returns whether it did."""
        assert self.thread is not None
        self.thread.join(timeout)
        return not self.thread.is_alive()


def start_in_thread(
    manager: Optional[JobManager] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    ratelimiter: Optional[RateLimiter] = None,
    **manager_kwargs: Any,
) -> ServiceHandle:
    """Run a :class:`SynthesisServer` on a daemon thread and return its handle.

    Builds a :class:`JobManager` from ``manager_kwargs`` (``cache=``,
    ``workers=``, ...) unless one is passed in; blocks until the listener
    is bound, so ``handle.url`` is immediately usable.  Shut down with
    ``handle.request_shutdown()`` + ``handle.join()`` (or ``POST
    /shutdown``).
    """
    handle = ServiceHandle()
    handle.manager = manager if manager is not None else JobManager(**manager_kwargs)

    async def _main() -> None:
        server = SynthesisServer(
            handle.manager, host=host, port=port, ratelimiter=ratelimiter
        )
        await server.start()
        handle.server = server
        handle.loop = asyncio.get_running_loop()
        handle._ready.set()
        handle.drained = await server.serve_until_shutdown()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException as exc:  # surfaced via handle.error
            handle.error = exc
            handle._ready.set()

    handle.thread = threading.Thread(
        target=_runner, name="repro-service", daemon=True
    )
    handle.thread.start()
    handle._ready.wait()
    if handle.error is not None:
        raise RuntimeError("service failed to start") from handle.error
    return handle
