"""Synthesis-as-a-service: a long-running job server over the engine.

The paper's flows are expensive per configuration; the exploration engine
already amortises that cost inside one process via parallelism and the
content-addressed :class:`~repro.core.cache.ResultCache`.  This package
makes the amortisation *shared*: a long-running, dependency-free HTTP/JSON
service in front of :class:`~repro.core.explorer.ExplorationEngine`, so
concurrent clients submit sweeps as jobs, stream Pareto-front updates as
configurations finish, and never re-execute a configuration any client has
ever computed.

Layers (each importable on its own):

:mod:`repro.service.jobs`
    Job model and :class:`~repro.service.jobs.JobManager` — a worker-thread
    pool draining a FIFO job queue through per-job engines that share one
    bounded result cache; graceful shutdown drains in-flight jobs.
:mod:`repro.service.ratelimit`
    Per-client token-bucket rate limiting.
:mod:`repro.service.metrics`
    Thread-safe counters and latency reservoirs (p50/p95) backing the
    ``/metrics`` endpoint.
:mod:`repro.service.server`
    The asyncio HTTP server (``asyncio.start_server``; no third-party web
    framework): job submission, status, chunked streaming, metrics,
    graceful shutdown.

The CLI front ends are ``python -m repro serve`` (run a server) and
``python -m repro submit`` (a small blocking client).
"""

from repro.service.jobs import Job, JobManager, JobSpec
from repro.service.metrics import ServiceMetrics
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import SynthesisServer, start_in_thread

__all__ = [
    "Job",
    "JobManager",
    "JobSpec",
    "RateLimiter",
    "ServiceMetrics",
    "SynthesisServer",
    "TokenBucket",
    "start_in_thread",
]
