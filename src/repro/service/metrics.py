"""Thread-safe service metrics: counters and latency quantiles.

The job server's ``/metrics`` endpoint reports three kinds of numbers:

* **counters** — monotonically increasing event counts (jobs submitted,
  flows executed, requests rejected, ...), incremented from worker threads
  and the asyncio handler alike;
* **latency reservoirs** — bounded samples of observed durations (flow
  execution, whole-job wall clock) summarised as count/p50/p95;
* **external snapshots** — numbers owned elsewhere (the cache's
  hit/miss/eviction counters, the manager's queue gauges) merged in at
  snapshot time by the caller.

Everything is stdlib-only and lock-protected; quantiles use the
nearest-rank method over a bounded ring of recent samples, so a
long-running server's metrics cost stays constant.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, Optional

__all__ = ["LatencyReservoir", "ServiceMetrics", "quantile"]


def quantile(samples: Iterable[float], q: float) -> Optional[float]:
    """Nearest-rank ``q``-quantile of ``samples`` (``None`` when empty).

    ``q`` is a fraction in ``[0, 1]``; the nearest-rank method returns an
    actual observed sample, which keeps p50/p95 meaningful for the small
    sample counts a freshly started server has.

    ``q`` is validated before the empty-sample check, so an out-of-range
    fraction raises even on a freshly started server's empty reservoirs
    instead of passing silently until the first sample arrives.
    """
    import math

    if not 0 <= q <= 1:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if not ordered:
        return None
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


class LatencyReservoir:
    """A bounded ring of duration samples with nearest-rank quantiles."""

    def __init__(self, maxlen: int = 1024) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._samples: Deque[float] = deque(maxlen=maxlen)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def snapshot(self) -> Dict[str, Any]:
        """``count`` / ``mean`` over all samples, p50/p95 over the ring."""
        with self._lock:
            samples = list(self._samples)
            count, total = self._count, self._total
        return {
            "count": count,
            "mean": (total / count) if count else None,
            "p50": quantile(samples, 0.50),
            "p95": quantile(samples, 0.95),
        }


class ServiceMetrics:
    """Named counters plus named latency reservoirs, all thread-safe."""

    def __init__(self, reservoir_size: int = 1024) -> None:
        self._counters: Dict[str, int] = {}
        self._latencies: Dict[str, LatencyReservoir] = {}
        self._reservoir_size = reservoir_size
        self._lock = threading.Lock()

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            reservoir = self._latencies.get(name)
            if reservoir is None:
                reservoir = self._latencies[name] = LatencyReservoir(
                    self._reservoir_size
                )
        reservoir.observe(seconds)

    def snapshot(self) -> Dict[str, Any]:
        """``{"counters": {...}, "latency": {name: {count, mean, p50, p95}}}``."""
        with self._lock:
            counters = dict(self._counters)
            latencies = dict(self._latencies)
        return {
            "counters": counters,
            "latency": {
                name: reservoir.snapshot() for name, reservoir in latencies.items()
            },
        }
