"""Command-line interface: run the paper's flows from a shell.

Examples::

    python -m repro flow --flow esop --design intdiv -n 8 -p 0
    python -m repro flow --flow hierarchical --verilog adder.v -n 8 --real out.real
    python -m repro flow --flow hierarchical --design intdiv -n 8 \
        --opt "resyn2*3" --xmg-opt xmg-default         # pipeline overrides
    python -m repro flow --flow lut --design intdiv -n 8 -k 4 \
        --strategy bounded --max-pebbles 64            # LUT pebbling flow
    python -m repro flow --flow esop --design intdiv -n 8 \
        --rev-opt rev-default --map-model rtof         # peephole + T-depth
    python -m repro passes                             # list optimisation passes
    python -m repro passes --target qc                 # Clifford+T passes only
    python -m repro explore --design intdiv -n 8 --rev-opt none \
        --rev-opt rev-default                          # peephole sweep
    python -m repro explore --design intdiv -n 6
    python -m repro explore --flow lut --design intdiv -n 8   # strategy sweep
    python -m repro explore --design intdiv -n 8 --opt "dc2*2" --opt "b;rw;rf"
    python -m repro explore --design intdiv -n 8 --verify sampled
    python -m repro verify --design intdiv -n 4 --mode full --quantum
    python -m repro explore --designs intdiv newton --bitwidths 4 5 6 \
        --sweep esop:p=0,1 --sweep hierarchical:strategy=bennett,per_output \
        --jobs 4 --cache ~/.cache/repro                   # parallel cached sweep
    python -m repro designs --design newton -n 8          # print generated Verilog
    python -m repro baselines -n 8                        # Table I style numbers

The CLI is a thin layer over :mod:`repro.core`; everything it prints can be
obtained programmatically from :func:`repro.run_flow` and
:class:`repro.DesignSpaceExplorer`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.baselines.qnewton import qnewton_resources
from repro.baselines.resdiv import resdiv_resources
from repro.core.explorer import (
    ExplorationEngine,
    ParameterGrid,
    build_sweep,
    default_configurations,
    flow_default_configurations,
    pareto_front_of,
)
from repro.core.flows import available_flows, design_source, run_flow
from repro.core.reports import outcome_table, reports_to_json
from repro.io.qasm import write_qasm
from repro.io.realfmt import write_real
from repro.quantum.mapping import map_to_clifford_t
from repro.utils.tables import format_table
from repro.verify.differential import check_equivalent, mapped_circuit_simulator

__all__ = ["main", "build_parser", "parse_sweep_spec"]


#: Names the engine/flow machinery claims for itself: sweeping them would
#: collide with run_flow keyword arguments or silently clobber seeded
#: context artifacts, so they are rejected at parse time.
_RESERVED_SWEEP_PARAMETERS = frozenset(
    {"flow", "self", "design", "bitwidth", "verify", "cost_model",
     "aig", "verilog", "index", "timeout", "frontend_id"}
)


def parse_sweep_spec(spec: str) -> ParameterGrid:
    """Parse one ``--sweep`` specification into a :class:`ParameterGrid`.

    Format: ``FLOW[:PARAM=V1,V2,...[:PARAM=...]]`` — e.g. ``esop:p=0,1,2``
    or ``hierarchical:strategy=bennett,per_output``.  Values are parsed as
    int, float or bool where possible and kept as strings otherwise.
    """
    segments = spec.split(":")
    flow = segments[0].strip()
    if not flow:
        raise ValueError(f"sweep spec {spec!r} does not name a flow")
    ranges = {}
    for segment in segments[1:]:
        if "=" not in segment:
            raise ValueError(
                f"sweep segment {segment!r} is not of the form PARAM=V1,V2,..."
            )
        name, _, values = segment.partition("=")
        name = name.strip()
        if name in _RESERVED_SWEEP_PARAMETERS:
            raise ValueError(f"reserved sweep parameter name {name!r} in {spec!r}")
        if name in ranges:
            raise ValueError(f"duplicate sweep parameter {name!r} in {spec!r}")
        parsed = [_parse_sweep_value(value) for value in values.split(",") if value != ""]
        if not parsed:
            raise ValueError(f"sweep parameter {name!r} has no values")
        ranges[name] = parsed
    return ParameterGrid(flow, **ranges)


def _parse_sweep_value(text: str):
    text = text.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser of the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Design automation and design space exploration for quantum computers",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    flow = subparsers.add_parser("flow", help="run one design flow")
    flow.add_argument("--flow", choices=sorted(available_flows()), required=True)
    flow.add_argument("--design", default="intdiv", help="intdiv / newton / isqrt or a name for --verilog")
    flow.add_argument("--verilog", type=Path, help="path to a Verilog file to synthesise")
    flow.add_argument("-n", "--bitwidth", type=int, default=8)
    flow.add_argument("-p", "--factoring", type=int, default=0, help="ESOP factoring parameter")
    flow.add_argument(
        "--strategy", default="bennett",
        help="cleanup/pebbling strategy (hierarchical: bennett/per_output; "
        "lut: any registered strategy — bennett/eager/bounded/exact)",
    )
    flow.add_argument(
        "-k", "--lut-size", type=int, default=4,
        help="LUT size of the lut flow (default: 4)",
    )
    flow.add_argument(
        "--max-pebbles", type=float, metavar="B",
        help="pebble budget of the lut flow's bounded strategy: an integer "
        "number of pebbles, or a fraction in (0, 1) of the LUT count",
    )
    flow.add_argument(
        "--lut-synth", choices=["esop", "exact", "tbs"], default="esop",
        help="per-LUT sub-synthesizer of the lut flow (default: esop; "
        "exact = SAT-minimum ESOP for small LUTs)",
    )
    flow.add_argument(
        "--exact-time-budget", type=float, metavar="SECONDS",
        help="per-call SAT time budget of the lut flow's exact pebbling "
        "strategy (default: the strategy's built-in budget)",
    )
    flow.add_argument(
        "--opt", metavar="PIPELINE",
        help="AIG optimisation pipeline spec overriding the flow default, "
        "e.g. 'b;rw;rf', 'dc2*3' or 'none' (see `repro passes`)",
    )
    flow.add_argument(
        "--xmg-opt", metavar="PIPELINE",
        help="XMG optimisation pipeline of the hierarchical flow (applied "
        "to the mapped XMG) and of the lut flow (applied as an AIG-XMG-AIG "
        "round-trip), e.g. 'xmg-default' (default: disabled)",
    )
    flow.add_argument(
        "--rev-opt", metavar="PIPELINE",
        help="reversible peephole pipeline applied to the synthesised "
        "cascade, e.g. 'rev-default' or 'rt;rn;rc' (default: disabled)",
    )
    flow.add_argument(
        "--map-model", choices=["rtof", "barenco"],
        help="map the cascade to an explicit Clifford+T circuit under this "
        "decomposition model and report T-depth/depth resource metrics "
        "(default: no mapping)",
    )
    flow.add_argument(
        "--qc-opt", metavar="PIPELINE",
        help="Clifford+T peephole pipeline applied to the mapped circuit "
        "(requires --map-model), e.g. 'qc-default' (default: disabled)",
    )
    flow.add_argument(
        "--opt-guard", choices=["off", "sampled", "full", "auto"],
        default="off",
        help="differentially check every optimisation pass application "
        "(default: off)",
    )
    flow.add_argument("--no-verify", action="store_true", help="skip equivalence checking")
    flow.add_argument("--cost-model", default="rtof", choices=["rtof", "barenco"])
    flow.add_argument("--real", type=Path, help="write the reversible circuit as RevLib .real")
    flow.add_argument(
        "--qasm", type=Path,
        help="map to Clifford+T (under --map-model, default rtof) and "
        "write OpenQASM 2.0",
    )

    explore = subparsers.add_parser("explore", help="design space exploration")
    explore.add_argument(
        "--flow", choices=sorted(available_flows()),
        help="sweep only this flow's default configurations (e.g. the "
        "pebbling strategies of the lut flow); --sweep overrides",
    )
    explore.add_argument("--design", default="intdiv")
    explore.add_argument(
        "--designs", nargs="+", metavar="DESIGN",
        help="sweep several designs (overrides --design)",
    )
    explore.add_argument("-n", "--bitwidth", type=int, default=6)
    explore.add_argument(
        "--bitwidths", nargs="+", type=int, metavar="N",
        help="sweep several bitwidths (overrides --bitwidth)",
    )
    explore.add_argument(
        "--verify", choices=["off", "sampled", "full", "auto"], default="auto",
        help="equivalence checking of every synthesised circuit: off, "
        "sampled (random patterns), full (exhaustive), or auto "
        "(full when the input count permits; default)",
    )
    explore.add_argument(
        "--no-verify", action="store_true",
        help="alias for --verify off (kept for compatibility)",
    )
    explore.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial, default)",
    )
    explore.add_argument(
        "--cache", type=Path, metavar="DIR",
        help="persistent result cache directory (content-addressed)",
    )
    explore.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-configuration wall-clock budget",
    )
    explore.add_argument(
        "--sweep", action="append", default=[], metavar="FLOW[:PARAM=V1,V2,...]",
        help="configuration sweep, e.g. esop:p=0,1,2 (repeatable; "
        "default: the paper's five configurations)",
    )
    explore.add_argument(
        "--opt", action="append", default=[], metavar="PIPELINE",
        help="optimisation pipeline applied to every configuration; "
        "repeat to sweep pipelines (e.g. --opt 'dc2*2' --opt 'b;rw;rf')",
    )
    explore.add_argument(
        "--rev-opt", action="append", default=[], metavar="PIPELINE",
        help="reversible peephole pipeline applied to every configuration; "
        "repeat to sweep pipelines (e.g. --rev-opt none --rev-opt "
        "rev-default)",
    )
    explore.add_argument(
        "--no-shared-frontend", action="store_true",
        help="bit-blast per configuration instead of once per design instance",
    )
    explore.add_argument("--cost-model", default="rtof", choices=["rtof", "barenco"])
    explore.add_argument(
        "--json", type=Path, metavar="FILE",
        help="also write the successful reports as a JSON array",
    )
    explore.add_argument(
        "--quiet", action="store_true", help="suppress per-configuration progress"
    )

    verify = subparsers.add_parser(
        "verify",
        help="differentially verify flow outputs across representation layers",
        description="Run flows and cross-check every layer with the "
        "bit-parallel differential checker: bit-blasted AIG vs synthesised "
        "reversible circuit, and optionally vs the mapped Clifford+T "
        "circuit (--quantum).",
    )
    verify.add_argument("--design", default="intdiv")
    verify.add_argument("--verilog", type=Path, help="path to a Verilog file to verify instead")
    verify.add_argument("-n", "--bitwidth", type=int, default=4)
    verify.add_argument(
        "--flows", nargs="+", metavar="FLOW", choices=sorted(available_flows()),
        help="flows to check (default: all)",
    )
    verify.add_argument(
        "--mode", choices=["sampled", "full", "auto"], default="auto",
        help="pattern regime of the differential check (default: auto)",
    )
    verify.add_argument(
        "--samples", type=int, default=256,
        help="pattern budget for sampled checks (default: 256)",
    )
    verify.add_argument("--seed", type=int, default=1, help="sampling seed")
    verify.add_argument(
        "--quantum", action="store_true",
        help="also map to Clifford+T and check the mapped circuit acts as "
        "the same permutation (statevector simulation; small circuits only)",
    )
    verify.add_argument("--cost-model", default="rtof", choices=["rtof", "barenco"])

    passes = subparsers.add_parser(
        "passes",
        help="list registered optimisation passes and named pipelines",
        description="Every pass the pass manager knows, with its aliases, "
        "the target types it applies to (aig / xmg / rev / qc) and the "
        "named pipelines usable in --opt/--xmg-opt/--rev-opt/--qc-opt "
        "specs.",
    )
    passes.add_argument(
        "--target", "--network", dest="target",
        choices=["aig", "xmg", "rev", "qc"],
        help="only list passes applicable to this target type "
        "(--network is the historical spelling)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the synthesis-as-a-service job server",
        description="Long-running asyncio HTTP/JSON server over the "
        "exploration engine: clients POST sweeps to /jobs, stream Pareto "
        "updates from /jobs/<id>/stream, and share one content-addressed "
        "result cache so no configuration is ever computed twice.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8177, help="0 = ephemeral")
    serve.add_argument(
        "--cache", type=Path, metavar="DIR",
        help="shared result cache directory (strongly recommended)",
    )
    serve.add_argument(
        "--cache-max-entries", type=int, metavar="N",
        help="bound the cache to N entries (LRU eviction by file mtime)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads = concurrently running jobs (default: 2)",
    )
    serve.add_argument(
        "--engine-jobs", type=int, default=1, metavar="N",
        help="per-job concurrency limit: worker processes one job's engine "
        "may use (default: 1)",
    )
    serve.add_argument(
        "--rate", type=float, metavar="R",
        help="per-client token-bucket rate limit on submissions, in "
        "jobs/second (default: unlimited)",
    )
    serve.add_argument(
        "--burst", type=float, default=5, metavar="B",
        help="token-bucket burst capacity (default: 5)",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit a sweep to a running job server and stream results",
        description="The client side of `repro serve`: POST one sweep as a "
        "job, stream its outcome events (each carrying the Pareto front so "
        "far), and print the final front.",
    )
    submit.add_argument(
        "--url", default="http://127.0.0.1:8177", help="server base URL"
    )
    submit.add_argument("--design", default="intdiv")
    submit.add_argument(
        "--designs", nargs="+", metavar="DESIGN",
        help="sweep several designs (overrides --design)",
    )
    submit.add_argument("-n", "--bitwidth", type=int, default=4)
    submit.add_argument(
        "--bitwidths", nargs="+", type=int, metavar="N",
        help="sweep several bitwidths (overrides --bitwidth)",
    )
    submit.add_argument(
        "--sweep", action="append", default=[], metavar="FLOW[:PARAM=V1,V2,...]",
        help="configuration sweep, like explore --sweep (repeatable)",
    )
    submit.add_argument(
        "--flow", choices=sorted(available_flows()),
        help="submit this flow's default sweep instead of --sweep",
    )
    submit.add_argument(
        "--verify", choices=["off", "sampled", "full", "auto"], default="off",
        help="verification mode of the submitted job (default: off)",
    )
    submit.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="per-configuration budget forwarded to the server",
    )
    submit.add_argument("--cost-model", default="rtof", choices=["rtof", "barenco"])
    submit.add_argument(
        "--client-id", metavar="ID",
        help="rate-limiting identity sent as X-Client-Id",
    )
    submit.add_argument(
        "--no-stream", action="store_true",
        help="submit and print the job id without waiting for results",
    )
    submit.add_argument(
        "--shutdown", action="store_true",
        help="instead of submitting, ask the server to shut down gracefully",
    )
    submit.add_argument(
        "--quiet", action="store_true", help="suppress per-configuration progress"
    )

    designs = subparsers.add_parser("designs", help="print generated Verilog for a built-in design")
    designs.add_argument("--design", default="intdiv")
    designs.add_argument("-n", "--bitwidth", type=int, default=8)

    baselines = subparsers.add_parser("baselines", help="RESDIV/QNEWTON baseline figures (Table I)")
    baselines.add_argument("-n", "--bitwidth", type=int, default=8)

    return parser


def _validate_pipeline_specs(*specs: Optional[str]) -> Optional[str]:
    """Parse-check pipeline specs; returns an error message or ``None``.

    Validation happens before any flow runs, so an unknown pass name in
    ``--opt`` fails fast with the registry's did-you-mean suggestion
    instead of surfacing as a per-configuration failure mid-sweep.
    """
    from repro.opt import parse_pipeline

    for spec in specs:
        if spec is None:
            continue
        try:
            parse_pipeline(spec)
        except ValueError as exc:
            return str(exc)
    return None


def _command_flow(args: argparse.Namespace) -> int:
    parameters = {}
    error = _validate_pipeline_specs(
        args.opt, args.xmg_opt, args.rev_opt, args.qc_opt
    )
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.qc_opt is not None and args.map_model is None:
        print("error: --qc-opt requires --map-model", file=sys.stderr)
        return 2
    if args.opt is not None:
        parameters["opt"] = args.opt
    if args.xmg_opt is not None:
        parameters["xmg_opt"] = args.xmg_opt
    if args.rev_opt is not None:
        parameters["rev_opt"] = args.rev_opt
    if args.map_model is not None:
        parameters["map_model"] = args.map_model
    if args.qc_opt is not None:
        parameters["qc_opt"] = args.qc_opt
    if args.opt_guard != "off":
        parameters["opt_guard"] = args.opt_guard
    if args.flow == "esop":
        parameters["p"] = args.factoring
    if args.flow == "hierarchical":
        parameters["strategy"] = args.strategy
    if args.flow == "lut":
        parameters["strategy"] = args.strategy
        parameters["k"] = args.lut_size
        parameters["lut_synth"] = args.lut_synth
        if args.max_pebbles is not None:
            budget = args.max_pebbles
            if not 0 < budget < 1 and budget != int(budget):
                print(
                    f"error: --max-pebbles must be an integer pebble count "
                    f"or a fraction in (0, 1), got {budget}",
                    file=sys.stderr,
                )
                return 2
            parameters["max_pebbles"] = budget if 0 < budget < 1 else int(budget)
        if args.exact_time_budget is not None:
            parameters["exact_time_budget"] = args.exact_time_budget
    if args.verilog is not None:
        parameters["verilog"] = args.verilog.read_text()

    try:
        result = run_flow(
            args.flow,
            args.design,
            args.bitwidth,
            verify=not args.no_verify,
            cost_model=args.cost_model,
            **parameters,
        )
    except ValueError as exc:
        # Bad user input (unknown strategy, infeasible pebble budget, ...):
        # report it like the explore command does instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = result.report
    rows = [
        ("design", report.design),
        ("flow", report.flow),
        ("bitwidth", report.bitwidth),
        ("qubits", report.qubits),
        ("T-count", report.t_count),
        ("gates", report.gate_count),
        ("max controls", report.max_controls),
        ("runtime [s]", f"{report.runtime_seconds:.3f}"),
        ("verified", report.verified),
    ]
    if report.t_depth is not None:
        rows[5:5] = [
            ("T-depth", report.t_depth),
            ("circuit depth", report.qc_depth),
            ("mapped qubits", report.qc_qubits),
        ]
    print(format_table(["metric", "value"], rows))

    if args.real is not None:
        args.real.write_text(write_real(result.circuit))
        print(f"wrote {args.real}")
    if args.qasm is not None:
        quantum = result.context.get("quantum_circuit")
        if quantum is None:
            quantum = map_to_clifford_t(
                result.circuit, model=args.map_model or "rtof"
            )
        args.qasm.write_text(write_qasm(quantum))
        print(f"wrote {args.qasm} ({quantum.num_qubits} qubits, {quantum.t_count()} T)")
    return 0


def _command_explore(args: argparse.Namespace) -> int:
    designs = args.designs or [args.design]
    bitwidths = args.bitwidths or [args.bitwidth]
    try:
        if args.sweep:
            configurations = [parse_sweep_spec(spec) for spec in args.sweep]
        elif args.flow is not None:
            configurations = flow_default_configurations(args.flow)
        else:
            configurations = default_configurations()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Cross the configuration list with every requested pipeline sweep
    # (--opt for the AIG stage, --rev-opt for the reversible cascade).
    crossed = False
    for parameter, specs in (("opt", args.opt), ("rev_opt", args.rev_opt)):
        if not specs:
            continue
        error = _validate_pipeline_specs(*specs)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
        expanded = []
        for entry in configurations:
            if isinstance(entry, ParameterGrid):
                expanded.extend(entry.configurations())
            else:
                expanded.append(entry)
        configurations = [
            configuration.with_parameter(parameter, spec)
            for spec in specs
            for configuration in expanded
        ]
        crossed = True
    if crossed:
        # Crossing can collide with sweep points that already carried the
        # parameter (the default sweeps ship rev_opt points): run each
        # distinct configuration once, keeping first-seen order.
        seen = set()
        unique = []
        for configuration in configurations:
            key = (configuration.flow, tuple(sorted(configuration.parameters)))
            if key not in seen:
                seen.add(key)
                unique.append(configuration)
        configurations = unique
    tasks = build_sweep(designs, bitwidths, configurations)

    progress = {"done": 0}

    def on_result(outcome):
        if args.quiet:
            return
        progress["done"] += 1
        if outcome.ok:
            detail = f"{outcome.report.qubits} qubits, {outcome.report.t_count} T"
            if outcome.cached:
                detail += " (cached)"
        else:
            detail = f"error: {outcome.error}"
        print(f"[{progress['done']}/{len(tasks)}] {outcome.label()}: {detail}")

    verify_mode = "off" if args.no_verify else args.verify
    try:
        engine = ExplorationEngine(
            jobs=args.jobs,
            cache=args.cache,
            verify=verify_mode,
            cost_model=args.cost_model,
            timeout=args.timeout,
            share_frontend=not args.no_shared_frontend,
            on_result=on_result,
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    outcomes = engine.run(tasks)

    for design in designs:
        for bitwidth in bitwidths:
            group = [
                o for o in outcomes
                if o.task.design == design and o.task.bitwidth == bitwidth
            ]
            print()
            print(
                outcome_table(
                    group, title=f"Design space of {design}({bitwidth})"
                )
            )
            front = pareto_front_of(
                {
                    o.task.configuration.label(): o.report
                    for o in group
                    if o.ok
                }
            )
            print()
            print(
                format_table(
                    ["Pareto point", "qubits", "T-count"],
                    [(p.label(), p.qubits, p.t_count) for p in front],
                    title="Pareto front",
                )
            )

    if args.cache is not None:
        print()
        print(
            f"cache: {engine.cache_hits} hit(s), {engine.executed} flow(s) executed"
        )
    if args.json is not None:
        args.json.write_text(
            reports_to_json([o.report for o in outcomes if o.ok])
        )
        print(f"wrote {args.json}")
    return 0 if engine.failures == 0 else 1


#: ``repro verify --quantum`` falls back to skipping the Clifford+T leg
#: above this many qubits: the statevector check is exponential in the
#: qubit count and exists to validate the mapping, not to scale.
_QUANTUM_VERIFY_QUBIT_LIMIT = 14

#: Pattern budget of the Clifford+T leg (each pattern is one dense
#: statevector simulation of the whole mapped circuit).
_QUANTUM_VERIFY_MAX_SAMPLES = 32


def _command_verify(args: argparse.Namespace) -> int:
    flows = args.flows or sorted(available_flows())
    parameters = {}
    if args.verilog is not None:
        parameters["verilog"] = args.verilog.read_text()

    rows = []
    failures = 0
    for flow_name in flows:
        result = run_flow(
            flow_name,
            args.design,
            args.bitwidth,
            verify="off",
            cost_model=args.cost_model,
            **parameters,
        )
        # Check against the pre-optimisation AIG so a buggy pipeline pass
        # cannot corrupt both sides of the comparison.
        aig = result.context.get("spec_aig") or result.context["aig"]
        check = check_equivalent(
            aig,
            result.circuit,
            mode=args.mode,
            num_samples=args.samples,
            seed=args.seed,
        )
        failures += 0 if check.equivalent else 1
        rows.append(
            (
                flow_name,
                "aig = circuit",
                check.num_patterns,
                "full" if check.complete else "sampled",
                "ok" if check.equivalent else f"FAIL: {check.message}",
            )
        )
        if args.quantum:
            quantum = map_to_clifford_t(result.circuit)
            if quantum.num_qubits > _QUANTUM_VERIFY_QUBIT_LIMIT:
                rows.append(
                    (
                        flow_name,
                        "circuit = clifford+t",
                        0,
                        "-",
                        f"skipped ({quantum.num_qubits} qubits > "
                        f"{_QUANTUM_VERIFY_QUBIT_LIMIT})",
                    )
                )
                continue
            quantum_check = check_equivalent(
                result.circuit,
                mapped_circuit_simulator(quantum, result.circuit),
                mode="sampled",
                num_samples=min(args.samples, _QUANTUM_VERIFY_MAX_SAMPLES),
                seed=args.seed,
            )
            failures += 0 if quantum_check.equivalent else 1
            rows.append(
                (
                    flow_name,
                    "circuit = clifford+t",
                    quantum_check.num_patterns,
                    "full" if quantum_check.complete else "sampled",
                    "ok" if quantum_check.equivalent else f"FAIL: {quantum_check.message}",
                )
            )

    design_label = args.design if args.verilog is None else args.verilog.name
    print(
        format_table(
            ["flow", "check", "patterns", "coverage", "result"],
            rows,
            title=f"Differential verification of {design_label}({args.bitwidth})",
        )
    )
    return 0 if failures == 0 else 1


def _command_passes(args: argparse.Namespace) -> int:
    from repro.opt import available_passes, named_pipelines, parse_pipeline

    rows = [
        (
            pass_.name,
            ", ".join(pass_.aliases) if pass_.aliases else "-",
            "/".join(sorted(pass_.network_types)),
            pass_.description,
        )
        for pass_ in available_passes(args.target)
    ]
    print(
        format_table(
            ["pass", "aliases", "targets", "description"],
            rows,
            title="Registered optimisation passes",
        )
    )
    pipeline_rows = []
    for name, (spec, description) in sorted(named_pipelines().items()):
        pipeline = parse_pipeline(name)
        networks = "/".join(sorted(pipeline.network_types()))
        if args.target is not None and args.target not in networks.split("/"):
            continue
        pipeline_rows.append((name, networks, spec, description))
    if pipeline_rows:
        print()
        print(
            format_table(
                ["pipeline", "targets", "expands to", "description"],
                pipeline_rows,
                title="Named pipelines",
            )
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.core.cache import ResultCache
    from repro.service import JobManager, RateLimiter, SynthesisServer

    try:
        cache = None
        if args.cache is not None:
            cache = ResultCache(args.cache, max_entries=args.cache_max_entries)
        manager = JobManager(
            cache=cache, workers=args.workers, max_engine_jobs=args.engine_jobs
        )
        limiter = RateLimiter(args.rate, burst=args.burst)
        server = SynthesisServer(
            manager, host=args.host, port=args.port, ratelimiter=limiter
        )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _main() -> bool:
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, ValueError):
                pass  # non-POSIX platform or nested loop
        print(
            f"serving on http://{server.host}:{server.port} "
            f"(workers={manager.workers}, "
            f"cache={'on' if manager.cache is not None else 'off'}); "
            "POST /shutdown or Ctrl-C to drain and stop",
            flush=True,
        )
        return await server.serve_until_shutdown()

    try:
        drained = asyncio.run(_main())
    except KeyboardInterrupt:
        # Signal handler could not be installed: drain the pool directly.
        drained = manager.shutdown(drain=True)
    print("drained cleanly" if drained else "stopped with unfinished jobs")
    return 0 if drained else 1


def _submit_request(url, method, path, body=None, headers=None, timeout=60.0):
    """One HTTP request against the job server; returns (status, bytes)."""
    import http.client
    import json as _json
    from urllib.parse import urlparse

    parsed = urlparse(url)
    if parsed.scheme not in ("http", ""):
        raise ValueError(f"unsupported scheme in {url!r} (http only)")
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=_json.dumps(body) if body is not None else None,
            headers=headers or {},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _command_submit(args: argparse.Namespace) -> int:
    import http.client
    import json as _json
    from urllib.parse import urlparse

    headers = {}
    if args.client_id:
        headers["X-Client-Id"] = args.client_id

    try:
        if args.shutdown:
            status, data = _submit_request(
                args.url, "POST", "/shutdown", body={}, headers=headers
            )
            print(data.decode("utf-8", "replace").strip())
            return 0 if status == 202 else 1

        payload = {
            "designs": args.designs or [args.design],
            "bitwidths": args.bitwidths or [args.bitwidth],
            "verify": args.verify,
            "cost_model": args.cost_model,
        }
        if args.timeout is not None:
            payload["timeout"] = args.timeout
        if args.sweep:
            payload["sweeps"] = args.sweep
        elif args.flow is not None:
            payload["flow"] = args.flow
        status, data = _submit_request(
            args.url, "POST", "/jobs", body=payload, headers=headers
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot reach server at {args.url}: {exc}", file=sys.stderr)
        return 2
    if status != 202:
        print(
            f"error: server rejected the job ({status}): "
            f"{data.decode('utf-8', 'replace').strip()}",
            file=sys.stderr,
        )
        return 1
    accepted = _json.loads(data)
    job_id, num_tasks = accepted["id"], accepted["num_tasks"]
    print(f"submitted {job_id} ({num_tasks} configurations)")
    if args.no_stream:
        return 0

    parsed = urlparse(args.url)
    conn = http.client.HTTPConnection(
        parsed.hostname or "127.0.0.1", parsed.port or 80, timeout=600
    )
    failures = 0
    final_event = None
    try:
        conn.request("GET", accepted["stream_url"], headers=headers)
        response = conn.getresponse()
        done = 0
        while True:
            line = response.readline()
            if not line:
                break
            event = _json.loads(line)
            if event["type"] == "outcome":
                done += 1
                if event["ok"]:
                    report = event["report"]
                    detail = f"{report['qubits']} qubits, {report['t_count']} T"
                    if event["cached"]:
                        detail += " (cached)"
                else:
                    failures += 1
                    detail = f"error: {event['error']}"
                if not args.quiet:
                    print(f"[{done}/{num_tasks}] {event['label']}: {detail}")
            elif event["type"] == "done":
                final_event = event
    except OSError as exc:
        print(f"error: stream interrupted: {exc}", file=sys.stderr)
        return 1
    finally:
        conn.close()
    if final_event is None:
        print("error: stream ended without a done event", file=sys.stderr)
        return 1
    for group in final_event["pareto"]:
        print()
        print(
            format_table(
                ["Pareto point", "qubits", "T-count"],
                [
                    (
                        point["configuration"]
                        + (
                            f" [= {', '.join(point['aliases'])}]"
                            if point["aliases"]
                            else ""
                        ),
                        point["qubits"],
                        point["t_count"],
                    )
                    for point in group["points"]
                ],
                title=(
                    f"Pareto front of {group['design']}({group['bitwidth']})"
                ),
            )
        )
    state = final_event["state"]
    if state != "done" or failures:
        print(f"job finished as {state} with {failures} failure(s)")
        return 1
    return 0


def _command_designs(args: argparse.Namespace) -> int:
    print(design_source(args.design, args.bitwidth), end="")
    return 0


def _command_baselines(args: argparse.Namespace) -> int:
    resdiv = resdiv_resources(args.bitwidth)
    qnewton = qnewton_resources(args.bitwidth)
    print(
        format_table(
            ["baseline", "qubits", "T-count"],
            [
                (resdiv.name, resdiv.qubits, resdiv.t_count),
                (qnewton.name, qnewton.qubits, qnewton.t_count),
            ],
            title=f"Manual baselines for n = {args.bitwidth} (Table I)",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "flow": _command_flow,
        "explore": _command_explore,
        "verify": _command_verify,
        "passes": _command_passes,
        "designs": _command_designs,
        "baselines": _command_baselines,
        "serve": _command_serve,
        "submit": _command_submit,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # e.g. `repro explore | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
