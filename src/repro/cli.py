"""Command-line interface: run the paper's flows from a shell.

Examples::

    python -m repro flow --flow esop --design intdiv -n 8 -p 0
    python -m repro flow --flow hierarchical --verilog adder.v -n 8 --real out.real
    python -m repro explore --design intdiv -n 6
    python -m repro designs --design newton -n 8          # print generated Verilog
    python -m repro baselines -n 8                        # Table I style numbers

The CLI is a thin layer over :mod:`repro.core`; everything it prints can be
obtained programmatically from :func:`repro.run_flow` and
:class:`repro.DesignSpaceExplorer`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.baselines.qnewton import qnewton_resources
from repro.baselines.resdiv import resdiv_resources
from repro.core.explorer import DesignSpaceExplorer, default_configurations
from repro.core.flows import available_flows, design_source, run_flow
from repro.io.qasm import write_qasm
from repro.io.realfmt import write_real
from repro.quantum.mapping import map_to_clifford_t
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser of the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Design automation and design space exploration for quantum computers",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    flow = subparsers.add_parser("flow", help="run one design flow")
    flow.add_argument("--flow", choices=sorted(available_flows()), required=True)
    flow.add_argument("--design", default="intdiv", help="intdiv / newton / isqrt or a name for --verilog")
    flow.add_argument("--verilog", type=Path, help="path to a Verilog file to synthesise")
    flow.add_argument("-n", "--bitwidth", type=int, default=8)
    flow.add_argument("-p", "--factoring", type=int, default=0, help="ESOP factoring parameter")
    flow.add_argument("--strategy", default="bennett", help="hierarchical cleanup strategy")
    flow.add_argument("--no-verify", action="store_true", help="skip equivalence checking")
    flow.add_argument("--cost-model", default="rtof", choices=["rtof", "barenco"])
    flow.add_argument("--real", type=Path, help="write the reversible circuit as RevLib .real")
    flow.add_argument("--qasm", type=Path, help="map to Clifford+T and write OpenQASM 2.0")

    explore = subparsers.add_parser("explore", help="design space exploration")
    explore.add_argument("--design", default="intdiv")
    explore.add_argument("-n", "--bitwidth", type=int, default=6)
    explore.add_argument("--no-verify", action="store_true")

    designs = subparsers.add_parser("designs", help="print generated Verilog for a built-in design")
    designs.add_argument("--design", default="intdiv")
    designs.add_argument("-n", "--bitwidth", type=int, default=8)

    baselines = subparsers.add_parser("baselines", help="RESDIV/QNEWTON baseline figures (Table I)")
    baselines.add_argument("-n", "--bitwidth", type=int, default=8)

    return parser


def _command_flow(args: argparse.Namespace) -> int:
    parameters = {}
    if args.flow == "esop":
        parameters["p"] = args.factoring
    if args.flow == "hierarchical":
        parameters["strategy"] = args.strategy
    if args.verilog is not None:
        parameters["verilog"] = args.verilog.read_text()

    result = run_flow(
        args.flow,
        args.design,
        args.bitwidth,
        verify=not args.no_verify,
        cost_model=args.cost_model,
        **parameters,
    )
    report = result.report
    rows = [
        ("design", report.design),
        ("flow", report.flow),
        ("bitwidth", report.bitwidth),
        ("qubits", report.qubits),
        ("T-count", report.t_count),
        ("gates", report.gate_count),
        ("max controls", report.max_controls),
        ("runtime [s]", f"{report.runtime_seconds:.3f}"),
        ("verified", report.verified),
    ]
    print(format_table(["metric", "value"], rows))

    if args.real is not None:
        args.real.write_text(write_real(result.circuit))
        print(f"wrote {args.real}")
    if args.qasm is not None:
        quantum = map_to_clifford_t(result.circuit)
        args.qasm.write_text(write_qasm(quantum))
        print(f"wrote {args.qasm} ({quantum.num_qubits} qubits, {quantum.t_count()} T)")
    return 0


def _command_explore(args: argparse.Namespace) -> int:
    explorer = DesignSpaceExplorer(
        args.design,
        args.bitwidth,
        configurations=default_configurations(),
        verify=not args.no_verify,
    )
    explorer.explore()
    print(
        format_table(
            ["configuration", "qubits", "T-count", "runtime [s]"],
            explorer.summary_rows(),
            title=f"Design space of {args.design}({args.bitwidth})",
        )
    )
    front = explorer.pareto_front()
    print()
    print(
        format_table(
            ["Pareto point", "qubits", "T-count"],
            [(p.configuration, p.qubits, p.t_count) for p in front],
            title="Pareto front",
        )
    )
    return 0


def _command_designs(args: argparse.Namespace) -> int:
    print(design_source(args.design, args.bitwidth), end="")
    return 0


def _command_baselines(args: argparse.Namespace) -> int:
    resdiv = resdiv_resources(args.bitwidth)
    qnewton = qnewton_resources(args.bitwidth)
    print(
        format_table(
            ["baseline", "qubits", "T-count"],
            [
                (resdiv.name, resdiv.qubits, resdiv.t_count),
                (qnewton.name, qnewton.qubits, qnewton.t_count),
            ],
            title=f"Manual baselines for n = {args.bitwidth} (Table I)",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "flow": _command_flow,
        "explore": _command_explore,
        "designs": _command_designs,
        "baselines": _command_baselines,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
