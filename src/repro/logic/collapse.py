"""Collapsing multi-level networks into two-level / functional representations.

This corresponds to ABC's ``collapse`` (AIG to BDD, used by the symbolic
functional flow) and to the truth-table expansion used for embedding and
verification of small designs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.aig import Aig, lit_is_compl, lit_node
from repro.logic.bdd import BddManager
from repro.logic.esop import EsopCover, esop_from_columns, minimize_esop
from repro.logic.truth_table import TruthTable

__all__ = [
    "collapse_to_bdd",
    "collapse_to_truth_table",
    "collapse_to_esop",
    "bdd_to_truth_table",
]


def collapse_to_bdd(aig: Aig) -> Tuple[BddManager, List[int]]:
    """Collapse an AIG into one BDD per primary output.

    Returns the manager and the list of root handles (one per PO, in PO
    order).  The BDD variable order follows the primary input order of the
    AIG.

    The AIG is processed level by level (the manager's apply walks are
    iterative, so deep cones cost no Python recursion), and the BDD handle
    of an internal node is dropped as soon as its last fanout has been
    collapsed: only the active frontier of the sweep holds references,
    which keeps the ``values`` map proportional to the cut between levels
    rather than to the whole network.
    """
    manager = BddManager(aig.num_pis(), aig.pi_names())
    values = {0: manager.false()}
    for i, pi in enumerate(aig.pis()):
        values[lit_node(pi)] = manager.variable(i)

    def lit_bdd(lit: int) -> int:
        node = values[lit_node(lit)]
        return manager.apply_not(node) if lit_is_compl(lit) else node

    # Remaining-fanout counts of every node (POs count as consumers) drive
    # the frontier pruning; PIs are kept alive for the whole sweep.
    remaining: Dict[int, int] = {}
    for node in aig.nodes():
        if aig.is_and(node):
            for fanin in aig.fanins(node):
                remaining[lit_node(fanin)] = remaining.get(lit_node(fanin), 0) + 1
    for po in aig.pos():
        remaining[lit_node(po)] = remaining.get(lit_node(po), 0) + 1
    keep = {0} | {lit_node(pi) for pi in aig.pis()}

    levels = aig.levels()
    by_level: Dict[int, List[int]] = {}
    for node in aig.nodes():
        if aig.is_and(node):
            by_level.setdefault(levels[node], []).append(node)

    for level in sorted(by_level):
        for node in by_level[level]:
            f0, f1 = aig.fanins(node)
            values[node] = manager.apply_and(lit_bdd(f0), lit_bdd(f1))
            for fanin in (f0, f1):
                fanin_node = lit_node(fanin)
                remaining[fanin_node] -= 1
                if remaining[fanin_node] == 0 and fanin_node not in keep:
                    del values[fanin_node]

    roots = [lit_bdd(po) for po in aig.pos()]
    return manager, roots


def bdd_to_truth_table(manager: BddManager, roots: List[int]) -> TruthTable:
    """Expand a list of BDD roots into an explicit multi-output truth table.

    All roots share one memoised bottom-up sweep
    (:meth:`~repro.logic.bdd.BddManager.to_truth_tables`): a node reachable
    from several outputs is expanded once, not once per output.
    """
    columns = manager.to_truth_tables(roots)
    return TruthTable.from_columns(columns, manager.num_vars)


def collapse_to_truth_table(aig: Aig) -> TruthTable:
    """Expand an AIG into an explicit multi-output truth table."""
    return aig.to_truth_table()


def collapse_to_esop(aig: Aig, minimize: bool = True) -> EsopCover:
    """Collapse an AIG into a multi-output ESOP cover.

    This is the ``&exorcism`` analogue used by the ESOP-based flow: the AIG
    outputs are expanded to truth tables, a PSDKRO cover is extracted and
    (optionally) minimised with exorcism-style cube merging.
    """
    cover = esop_from_columns(aig.output_columns(), aig.num_pis())
    if minimize:
        cover = minimize_esop(cover)
    return cover
