"""Collapsing multi-level networks into two-level / functional representations.

This corresponds to ABC's ``collapse`` (AIG to BDD, used by the symbolic
functional flow) and to the truth-table expansion used for embedding and
verification of small designs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.logic.aig import Aig, lit_is_compl, lit_node
from repro.logic.bdd import BddManager
from repro.logic.esop import EsopCover, esop_from_columns, minimize_esop
from repro.logic.truth_table import TruthTable

__all__ = [
    "collapse_to_bdd",
    "collapse_to_truth_table",
    "collapse_to_esop",
    "bdd_to_truth_table",
]


def collapse_to_bdd(aig: Aig) -> Tuple[BddManager, List[int]]:
    """Collapse an AIG into one BDD per primary output.

    Returns the manager and the list of root handles (one per PO, in PO
    order).  The BDD variable order follows the primary input order of the
    AIG.
    """
    manager = BddManager(aig.num_pis(), aig.pi_names())
    values = {0: manager.false()}
    for i, pi in enumerate(aig.pis()):
        values[lit_node(pi)] = manager.variable(i)

    def lit_bdd(lit: int) -> int:
        node = values[lit_node(lit)]
        return manager.apply_not(node) if lit_is_compl(lit) else node

    for node in aig.nodes():
        if aig.is_and(node):
            f0, f1 = aig.fanins(node)
            values[node] = manager.apply_and(lit_bdd(f0), lit_bdd(f1))

    roots = [lit_bdd(po) for po in aig.pos()]
    return manager, roots


def bdd_to_truth_table(manager: BddManager, roots: List[int]) -> TruthTable:
    """Expand a list of BDD roots into an explicit multi-output truth table."""
    columns = [manager.to_truth_table(root) for root in roots]
    return TruthTable.from_columns(columns, manager.num_vars)


def collapse_to_truth_table(aig: Aig) -> TruthTable:
    """Expand an AIG into an explicit multi-output truth table."""
    return aig.to_truth_table()


def collapse_to_esop(aig: Aig, minimize: bool = True) -> EsopCover:
    """Collapse an AIG into a multi-output ESOP cover.

    This is the ``&exorcism`` analogue used by the ESOP-based flow: the AIG
    outputs are expanded to truth tables, a PSDKRO cover is extracted and
    (optionally) minimised with exorcism-style cube merging.
    """
    cover = esop_from_columns(aig.output_columns(), aig.num_pis())
    if minimize:
        cover = minimize_esop(cover)
    return cover
