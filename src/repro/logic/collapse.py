"""Collapsing multi-level networks into two-level / functional representations.

This corresponds to ABC's ``collapse`` (AIG to BDD, used by the symbolic
functional flow) and to the truth-table expansion used for embedding and
verification of small designs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.logic.aig import Aig, lit_is_compl, lit_node
from repro.logic.bdd import BddManager
from repro.logic.esop import EsopCover, esop_from_columns, minimize_esop
from repro.logic.truth_table import TruthTable

__all__ = [
    "collapse_to_bdd",
    "collapse_to_bdd_reference",
    "collapse_to_truth_table",
    "collapse_to_esop",
    "bdd_to_truth_table",
]


def collapse_to_bdd(aig: Aig) -> Tuple[BddManager, List[int]]:
    """Collapse an AIG into one BDD per primary output.

    Returns the manager and the list of root handles (one per PO, in PO
    order).  The BDD variable order follows the primary input order of the
    AIG.

    The AIG is processed level by level (the manager's apply walks are
    iterative, so deep cones cost no Python recursion), and the BDD handle
    of an internal node is dropped as soon as its last fanout has been
    collapsed: only the active frontier of the sweep holds references,
    which keeps the ``values`` map proportional to the cut between levels
    rather than to the whole network.

    AND *supergates* are collapsed in one batch: an AND node whose single
    consumer references it non-complemented as another AND's fanin is an
    internal node of a wider conjunction, so instead of materialising its
    BDD (one full apply walk per 2-input node of a deep cone) the sweep
    gathers the supergate's leaf literals and hands them to the balanced
    reduction of :meth:`~repro.logic.bdd.BddManager.apply_and_many`.  BDDs
    are canonical, so the root handles are identical to the sequential
    per-node chain of :func:`collapse_to_bdd_reference`.
    """
    manager = BddManager(aig.num_pis(), aig.pi_names())
    values = {0: manager.false()}
    for i, pi in enumerate(aig.pis()):
        values[lit_node(pi)] = manager.variable(i)

    def lit_bdd(lit: int) -> int:
        node = values[lit_node(lit)]
        return manager.apply_not(node) if lit_is_compl(lit) else node

    # Remaining-fanout counts of every node (POs count as consumers) drive
    # the frontier pruning; PIs are kept alive for the whole sweep.
    # plain_refs counts only non-complemented AND-fanin references — a node
    # whose single consumer is such a reference is supergate-internal.
    remaining: Dict[int, int] = {}
    plain_refs: Dict[int, int] = {}
    for node in aig.nodes():
        if aig.is_and(node):
            for fanin in aig.fanins(node):
                fanin_node = lit_node(fanin)
                remaining[fanin_node] = remaining.get(fanin_node, 0) + 1
                if not lit_is_compl(fanin):
                    plain_refs[fanin_node] = plain_refs.get(fanin_node, 0) + 1
    for po in aig.pos():
        remaining[lit_node(po)] = remaining.get(lit_node(po), 0) + 1
    keep = {0} | {lit_node(pi) for pi in aig.pis()}

    internal = {
        node
        for node in aig.nodes()
        if aig.is_and(node)
        and remaining.get(node) == 1
        and plain_refs.get(node) == 1
    }

    levels = aig.levels()
    by_level: Dict[int, List[int]] = {}
    for node in aig.nodes():
        if aig.is_and(node) and node not in internal:
            by_level.setdefault(levels[node], []).append(node)

    for level in sorted(by_level):
        for node in by_level[level]:
            # Gather the supergate's leaf literals: expand non-complemented
            # fanins that are internal AND nodes, stop at everything else.
            leaves: List[int] = []
            stack = list(aig.fanins(node))
            while stack:
                lit = stack.pop()
                fanin_node = lit_node(lit)
                if fanin_node in internal and not lit_is_compl(lit):
                    remaining[fanin_node] -= 1
                    stack.extend(aig.fanins(fanin_node))
                else:
                    leaves.append(lit)
            values[node] = manager.apply_and_many(lit_bdd(lit) for lit in leaves)
            for lit in leaves:
                fanin_node = lit_node(lit)
                remaining[fanin_node] -= 1
                if remaining[fanin_node] == 0 and fanin_node not in keep:
                    del values[fanin_node]

    roots = [lit_bdd(po) for po in aig.pos()]
    return manager, roots


def collapse_to_bdd_reference(aig: Aig) -> Tuple[BddManager, List[int]]:
    """Per-node sequential apply chain — the oracle for :func:`collapse_to_bdd`.

    Root handles are *not* comparable across managers; the property tests
    compare the two implementations through truth-table expansion.
    """
    manager = BddManager(aig.num_pis(), aig.pi_names())
    values = {0: manager.false()}
    for i, pi in enumerate(aig.pis()):
        values[lit_node(pi)] = manager.variable(i)

    def lit_bdd(lit: int) -> int:
        node = values[lit_node(lit)]
        return manager.apply_not(node) if lit_is_compl(lit) else node

    remaining: Dict[int, int] = {}
    for node in aig.nodes():
        if aig.is_and(node):
            for fanin in aig.fanins(node):
                remaining[lit_node(fanin)] = remaining.get(lit_node(fanin), 0) + 1
    for po in aig.pos():
        remaining[lit_node(po)] = remaining.get(lit_node(po), 0) + 1
    keep = {0} | {lit_node(pi) for pi in aig.pis()}

    levels = aig.levels()
    by_level: Dict[int, List[int]] = {}
    for node in aig.nodes():
        if aig.is_and(node):
            by_level.setdefault(levels[node], []).append(node)

    for level in sorted(by_level):
        for node in by_level[level]:
            f0, f1 = aig.fanins(node)
            values[node] = manager.apply_and(lit_bdd(f0), lit_bdd(f1))
            for fanin in (f0, f1):
                fanin_node = lit_node(fanin)
                remaining[fanin_node] -= 1
                if remaining[fanin_node] == 0 and fanin_node not in keep:
                    del values[fanin_node]

    roots = [lit_bdd(po) for po in aig.pos()]
    return manager, roots


def bdd_to_truth_table(manager: BddManager, roots: List[int]) -> TruthTable:
    """Expand a list of BDD roots into an explicit multi-output truth table.

    All roots share one memoised bottom-up sweep
    (:meth:`~repro.logic.bdd.BddManager.to_truth_tables`): a node reachable
    from several outputs is expanded once, not once per output.
    """
    columns = manager.to_truth_tables(roots)
    return TruthTable.from_columns(columns, manager.num_vars)


def collapse_to_truth_table(aig: Aig) -> TruthTable:
    """Expand an AIG into an explicit multi-output truth table."""
    return aig.to_truth_table()


def collapse_to_esop(aig: Aig, minimize: bool = True) -> EsopCover:
    """Collapse an AIG into a multi-output ESOP cover.

    This is the ``&exorcism`` analogue used by the ESOP-based flow: the AIG
    outputs are expanded to truth tables, a PSDKRO cover is extracted and
    (optionally) minimised with exorcism-style cube merging.
    """
    cover = esop_from_columns(aig.output_columns(), aig.num_pis())
    if minimize:
        cover = minimize_esop(cover)
    return cover
