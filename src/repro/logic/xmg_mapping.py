"""Mapping AIGs into XOR-majority graphs (the CirKit ``xmglut`` analogue).

The hierarchical flow of the paper derives an XMG from an optimised AIG with
``xmglut -k 4``: the AIG is covered with k-input LUTs and every LUT function
is resynthesised with XOR/MAJ primitives.  This module implements the same
two steps:

1. :func:`repro.logic.cuts.lut_map` computes a k-LUT cover,
2. every LUT function is resynthesised into the XMG, preferring XOR-rich
   structures (XOR nodes cost no T gates downstream) — linear functions map
   to pure XOR chains, majority-like functions to a single MAJ node and
   everything else to a PSDKRO ESOP (XOR of AND-chains).
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Dict, List, Sequence

from repro.logic.aig import Aig
from repro.logic.aig import lit_is_compl as aig_lit_is_compl
from repro.logic.aig import lit_node as aig_lit_node
from repro.logic.cuts import lut_map
from repro.logic.esop import _PsdkroExtractor
from repro.logic.lits import lit_is_compl, lit_node
from repro.logic.truth_table import tt_mask, tt_support, tt_var
from repro.logic.xmg import Xmg, lit_not, lit_not_cond

__all__ = ["aig_to_xmg", "synthesize_lut_into_xmg", "xmg_to_aig"]


def synthesize_lut_into_xmg(
    xmg: Xmg, truth: int, leaf_lits: Sequence[int], num_vars: int
) -> int:
    """Build an XMG literal computing ``truth`` over ``leaf_lits``.

    ``truth`` is a single-output integer truth table over ``num_vars``
    variables; variable ``i`` corresponds to ``leaf_lits[i]``.
    """
    mask = tt_mask(num_vars)
    truth &= mask

    # Constants.
    if truth == 0:
        return Xmg.CONST0
    if truth == mask:
        return Xmg.CONST1

    support = tt_support(truth, num_vars)

    # Single literal (possibly complemented).
    if len(support) == 1:
        var = support[0]
        var_tt = tt_var(var, num_vars)
        if truth == var_tt:
            return leaf_lits[var]
        if truth == (var_tt ^ mask):
            return lit_not(leaf_lits[var])

    # Pure parity functions: XOR of the support variables (maybe complemented).
    xor_tt = 0
    for var in support:
        xor_tt ^= tt_var(var, num_vars)
    if truth == xor_tt or truth == (xor_tt ^ mask):
        literal = Xmg.CONST0
        for var in support:
            literal = xmg.create_xor(literal, leaf_lits[var])
        if truth != xor_tt:
            literal = lit_not(literal)
        return literal

    # Single majority gate over three support variables with any polarities.
    if len(support) == 3:
        tables = [tt_var(var, num_vars) for var in support]
        for polarities in iter_product((False, True), repeat=3):
            a, b, c = (
                table ^ mask if flip else table
                for table, flip in zip(tables, polarities)
            )
            maj_tt = (a & b) | (a & c) | (b & c)
            if truth in (maj_tt, maj_tt ^ mask):
                literals = [
                    lit_not_cond(leaf_lits[var], flip)
                    for var, flip in zip(support, polarities)
                ]
                literal = xmg.create_maj(*literals)
                if truth != maj_tt:
                    literal = lit_not(literal)
                return literal

    # General case: PSDKRO ESOP, realised as an XOR of AND chains.
    cubes = _PsdkroExtractor(num_vars).extract(truth)
    literal = Xmg.CONST0
    for cube in cubes:
        cube_literal = Xmg.CONST1
        for var, positive in cube.literals():
            operand = lit_not_cond(leaf_lits[var], not positive)
            cube_literal = xmg.create_and(cube_literal, operand)
        literal = xmg.create_xor(literal, cube_literal)
    return literal


def aig_to_xmg(aig: Aig, k: int = 4, max_cuts: int = 8) -> Xmg:
    """Convert an AIG into an XMG via k-LUT mapping and LUT resynthesis."""
    mapping = lut_map(aig, k=k, max_cuts=max_cuts)
    mapped_aig = mapping.aig

    xmg = Xmg(aig.name)
    node_lit: Dict[int, int] = {0: Xmg.CONST0}
    for pi_lit, name in zip(mapped_aig.pis(), mapped_aig.pi_names()):
        node_lit[aig_lit_node(pi_lit)] = xmg.add_pi(name)

    for root in mapping.order:
        leaves, truth = mapping.luts[root]
        leaf_lits = [node_lit[leaf] for leaf in leaves]
        node_lit[root] = synthesize_lut_into_xmg(xmg, truth, leaf_lits, len(leaves))

    for po, name in zip(mapped_aig.pos(), mapped_aig.po_names()):
        literal = lit_not_cond(node_lit[aig_lit_node(po)], aig_lit_is_compl(po))
        xmg.add_po(literal, name)
    return xmg.cleanup()


def xmg_to_aig(xmg: Xmg) -> Aig:
    """Expand an XMG back into an AIG (the inverse direction of
    :func:`aig_to_xmg`).

    Each MAJ node becomes the three-AND majority construction and each
    XOR node its three-AND XOR form.  The AND count grows accordingly,
    but an XMG shaped by the :mod:`repro.opt` pass library round-trips
    into an XOR/MAJ-structured AIG that LUT covering packs into fewer,
    cheaper LUTs — which is how the XMG passes reach the AIG-consuming
    flows.
    """
    aig = Aig(xmg.name)
    mapping = {0: Aig.CONST0}
    for pi_lit, name in zip(xmg.pis(), xmg.pi_names()):
        mapping[lit_node(pi_lit)] = aig.add_pi(name)

    def convert(lit: int) -> int:
        return lit_not_cond(mapping[lit_node(lit)], lit_is_compl(lit))

    for node in xmg.nodes():
        if xmg.is_maj(node):
            a, b, c = (convert(f) for f in xmg.fanins(node))
            mapping[node] = aig.create_maj(a, b, c)
        elif xmg.is_xor(node):
            a, b = (convert(f) for f in xmg.fanins(node))
            mapping[node] = aig.create_xor(a, b)
    for po, name in zip(xmg.pos(), xmg.po_names()):
        aig.add_po(convert(po), name)
    return aig.cleanup()
