"""Classical logic synthesis substrate.

This sub-package provides the function representations and optimisation
algorithms that the paper obtains from ABC and CirKit:

* :mod:`repro.logic.truth_table` — explicit multi-output truth tables,
* :mod:`repro.logic.bdd` — reduced ordered binary decision diagrams,
* :mod:`repro.logic.cube` / :mod:`repro.logic.esop` — cube covers,
  exclusive sums of products and their minimisation,
* :mod:`repro.logic.lits` / :mod:`repro.logic.network` — the shared
  literal encoding and the :class:`~repro.logic.network.LogicNetwork`
  protocol every multi-level network implements,
* :mod:`repro.logic.aig` / :mod:`repro.logic.aig_opt` — and-inverter graphs
  and ``dc2``/``resyn2``-style optimisation scripts,
* :mod:`repro.logic.xmg` / :mod:`repro.logic.xmg_mapping` — XOR-majority
  graphs and LUT-based mapping from AIGs,
* :mod:`repro.logic.cuts` — protocol-generic k-feasible cut enumeration
  and LUT covering,
* :mod:`repro.logic.collapse` — collapsing AIGs into BDDs or truth tables,
* :mod:`repro.logic.cec` — combinational equivalence checking.
"""

from repro.logic.aig import Aig
from repro.logic.bdd import BddManager
from repro.logic.cube import Cube
from repro.logic.esop import EsopCover, esop_from_truth_table, minimize_esop
from repro.logic.network import (
    LogicNetwork,
    NetworkStats,
    network_cost,
    network_stats,
)
from repro.logic.truth_table import TruthTable
from repro.logic.xmg import Xmg

__all__ = [
    "Aig",
    "BddManager",
    "Cube",
    "EsopCover",
    "LogicNetwork",
    "NetworkStats",
    "TruthTable",
    "Xmg",
    "esop_from_truth_table",
    "minimize_esop",
    "network_cost",
    "network_stats",
]
