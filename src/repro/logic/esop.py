"""Exclusive-sum-of-products (ESOP) covers and their minimisation.

The paper obtains multi-output ESOPs by collapsing an AIG with ABC's
``&exorcism`` command (Mishchenko/Perkowski).  Here we provide

* :class:`EsopCover` — a multi-output ESOP (each term is a cube plus the set
  of outputs it feeds),
* :func:`esop_from_truth_table` — PSDKRO extraction (recursive
  Shannon/positive-Davio/negative-Davio expansion choosing the cheapest
  decomposition per variable), the standard way to obtain a good initial
  ESOP from an explicit function,
* :func:`minimize_esop` — an exorcism-style cube-pair minimisation that
  cancels duplicate cubes and merges distance-1 pairs, iterated to a fixed
  point.

These covers are the input of the ESOP-based reversible synthesis back-end
(:mod:`repro.reversible.esop_synth`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.logic.cube import Cube
from repro.logic.truth_table import (
    TruthTable,
    tt_cofactor0,
    tt_cofactor1,
    tt_mask,
    tt_support,
    tt_to_words,
    tt_var,
)

__all__ = [
    "EsopTerm",
    "EsopCover",
    "esop_from_truth_table",
    "esop_from_columns",
    "minimize_esop",
    "psdkro_cubes",
    "psdkro_cubes_reference",
    "psdkro_clear_cache",
]


@dataclass(frozen=True)
class EsopTerm:
    """A cube together with the bitmask of outputs it contributes to."""

    cube: Cube
    outputs: int

    def __post_init__(self) -> None:
        if self.outputs < 0:
            raise ValueError("output mask must be non-negative")


class EsopCover:
    """A multi-output ESOP: output ``j`` is the XOR of all cubes whose
    ``outputs`` mask has bit ``j`` set."""

    def __init__(self, num_inputs: int, num_outputs: int, terms: Sequence[EsopTerm]):
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        self.terms: List[EsopTerm] = []
        for term in terms:
            if term.cube.num_vars != num_inputs:
                raise ValueError("cube variable count does not match the cover")
            if term.outputs >> num_outputs:
                raise ValueError("term drives an output outside the cover")
            if term.outputs:
                self.terms.append(term)

    # -- queries ------------------------------------------------------------

    def num_terms(self) -> int:
        """Number of product terms in the cover."""
        return len(self.terms)

    def num_literals(self) -> int:
        """Total number of literals over all product terms."""
        return sum(term.cube.num_literals() for term in self.terms)

    def max_literals(self) -> int:
        """Largest number of literals of any single product term."""
        if not self.terms:
            return 0
        return max(term.cube.num_literals() for term in self.terms)

    def shared_terms(self) -> int:
        """Number of product terms feeding more than one output."""
        return sum(1 for term in self.terms if bin(term.outputs).count("1") > 1)

    def evaluate(self, minterm: int) -> int:
        """Output word of the cover on one input assignment."""
        word = 0
        for term in self.terms:
            if term.cube.evaluate(minterm):
                word ^= term.outputs
        return word

    def to_truth_table(self) -> TruthTable:
        """Expand the cover into an explicit truth table."""
        return TruthTable.from_callable(
            self.evaluate, self.num_inputs, self.num_outputs
        )

    def output_cubes(self, output: int) -> List[Cube]:
        """All cubes feeding one particular output."""
        return [t.cube for t in self.terms if (t.outputs >> output) & 1]

    # -- dunder -------------------------------------------------------------

    def __iter__(self):
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        return (
            f"EsopCover(num_inputs={self.num_inputs}, "
            f"num_outputs={self.num_outputs}, terms={len(self.terms)})"
        )


# ---------------------------------------------------------------------------
# PSDKRO extraction from explicit truth tables
# ---------------------------------------------------------------------------

class _PsdkroExtractor:
    """Recursive pseudo-Kronecker (PSDKRO) ESOP extraction.

    At every node the extractor expands the cheapest of the three
    decompositions

    * Shannon:         f = x'·f0  (+)  x·f1
    * positive Davio:  f = f0     (+)  x·(f0 (+) f1)
    * negative Davio:  f = f1     (+)  x'·(f0 (+) f1)

    where f0/f1 are the cofactors with respect to the expansion variable.
    Sub-results are memoised on the integer truth table of the sub-function.
    """

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self._cache: Dict[int, List[Cube]] = {}

    def extract(self, func: int) -> List[Cube]:
        return self._expand(func)

    def _expand(self, func: int) -> List[Cube]:
        cached = self._cache.get(func)
        if cached is not None:
            return cached

        if func == 0:
            result: List[Cube] = []
        else:
            support = tt_support(func, self.num_vars)
            if not support:
                result = [Cube.tautology(self.num_vars)]
            else:
                result = self._expand_on_var(func, support[0])
        self._cache[func] = result
        return result

    def _expand_on_var(self, func: int, var: int) -> List[Cube]:
        f0 = tt_cofactor0(func, var, self.num_vars)
        f1 = tt_cofactor1(func, var, self.num_vars)
        f2 = f0 ^ f1

        cover0 = self._expand(f0)
        cover1 = self._expand(f1)
        cover2 = self._expand(f2)

        candidates = [
            # (cost, free cover, cover gated by a literal, literal polarity)
            (len(cover0) + len(cover2), cover0, cover2, True),   # positive Davio
            (len(cover1) + len(cover2), cover1, cover2, False),  # negative Davio
        ]
        shannon_cost = len(cover0) + len(cover1)
        best_cost, free_cover, gated_cover, positive = min(
            candidates, key=lambda item: item[0]
        )

        if shannon_cost < best_cost:
            result = [cube.with_literal(var, False) for cube in cover0]
            result += [cube.with_literal(var, True) for cube in cover1]
            return result

        result = list(free_cover)
        result += [cube.with_literal(var, positive) for cube in gated_cover]
        return result


class _FastPsdkroExtractor:
    """PSDKRO extraction on plain integers, tuned for the synthesis hot loop.

    Same decomposition choices (and therefore bit-identical covers) as
    :class:`_PsdkroExtractor`, with the per-call overheads removed: variable
    masks/shifts are precomputed once per variable count, the first support
    variable is found in a single scan whose cofactors are reused for the
    expansion (instead of :func:`tt_support` recomputing every cofactor
    twice), and the memo is shared across calls so repeated LUT functions —
    ubiquitous in cut-based covers — cost one dictionary lookup.
    """

    #: Shared-memo bound; a long-running server's extractor tables must not
    #: grow without limit (the memo is correctness-neutral, so clearing it
    #: only costs recomputation).
    MEMO_LIMIT = 1 << 20

    def __init__(self, num_vars: int):
        self.num_vars = num_vars
        self.mask = tt_mask(num_vars)
        self.var_masks = [tt_var(v, num_vars) for v in range(num_vars)]
        self.shifts = [1 << v for v in range(num_vars)]
        self._cache: Dict[int, List[Cube]] = {}

    def clear(self) -> None:
        self._cache.clear()

    def extract(self, func: int) -> List[Cube]:
        return self._expand(func & self.mask)

    def _expand(self, func: int) -> List[Cube]:
        cache = self._cache
        cached = cache.get(func)
        if cached is not None:
            return cached

        if func == 0:
            result: List[Cube] = []
        else:
            var_masks = self.var_masks
            shifts = self.shifts
            full = self.mask
            var = -1
            f0 = f1 = 0
            for v in range(self.num_vars):
                high_mask = var_masks[v]
                shift = shifts[v]
                high = func & high_mask
                low = func & ~high_mask & full
                f1 = high | (high >> shift)
                f0 = low | (low << shift)
                if f0 != f1:
                    var = v
                    break
            if var < 0:
                result = [Cube.tautology(self.num_vars)]
            else:
                f2 = f0 ^ f1
                cover0 = self._expand(f0)
                cover1 = self._expand(f1)
                cover2 = self._expand(f2)
                n0, n1 = len(cover0), len(cover1)
                # Same tie-breaking as the reference: positive Davio wins
                # ties against negative Davio, Shannon only when strictly
                # cheaper than the best Davio.
                if n0 <= n1:
                    best_cost, free, gated, positive = (
                        n0 + len(cover2), cover0, cover2, True
                    )
                else:
                    best_cost, free, gated, positive = (
                        n1 + len(cover2), cover1, cover2, False
                    )
                if n0 + n1 < best_cost:
                    result = [cube.with_literal(var, False) for cube in cover0]
                    result += [cube.with_literal(var, True) for cube in cover1]
                else:
                    result = list(free)
                    result += [cube.with_literal(var, positive) for cube in gated]
        if len(cache) >= self.MEMO_LIMIT:
            cache.clear()
        cache[func] = result
        return result


class _WordPsdkroExtractor:
    """PSDKRO extraction on packed uint64 word arrays (wide functions).

    Functions of many variables make every big-int cofactor an
    arbitrary-precision multi-word operation in the interpreter; this
    variant keeps the table as a numpy word array (see
    :func:`~repro.logic.truth_table.tt_to_words`) so cofactors and the
    support scan run word-parallel in C.  The recursion, decomposition
    choices and memo structure mirror :class:`_FastPsdkroExtractor`
    (memo keys are the raw little-endian bytes of the table).
    """

    MEMO_LIMIT = _FastPsdkroExtractor.MEMO_LIMIT

    def __init__(self, num_vars: int):
        import numpy as np

        self.num_vars = num_vars
        self._np = np
        if num_vars <= 6:
            raise ValueError("word-array PSDKRO requires more than 6 variables")
        self.in_word_masks = [np.uint64(tt_var(v, 6)) for v in range(6)]
        # blocks[v] = number of words per cofactor block of variable v >= 6.
        self.blocks = [0] * 6 + [1 << (v - 6) for v in range(6, num_vars)]
        self.num_words = 1 << (num_vars - 6)
        self._cache: Dict[bytes, List[Cube]] = {}

    def clear(self) -> None:
        self._cache.clear()

    def extract(self, func: int) -> List[Cube]:
        return self._expand(tt_to_words(func, self.num_vars))

    def _expand(self, words) -> List[Cube]:
        np = self._np
        cache = self._cache
        key = words.tobytes()
        cached = cache.get(key)
        if cached is not None:
            return cached

        if not words.any():
            result: List[Cube] = []
        else:
            var = -1
            f0 = f1 = None
            for v in range(self.num_vars):
                if v < 6:
                    high_mask = self.in_word_masks[v]
                    shift = np.uint64(1 << v)
                    high = words & high_mask
                    low = words & ~high_mask
                    f1 = high | (high >> shift)
                    f0 = low | (low << shift)
                else:
                    paired = words.reshape(-1, 2, self.blocks[v])
                    f0 = np.repeat(paired[:, 0:1], 2, axis=1).reshape(-1)
                    f1 = np.repeat(paired[:, 1:2], 2, axis=1).reshape(-1)
                if not np.array_equal(f0, f1):
                    var = v
                    break
            if var < 0:
                result = [Cube.tautology(self.num_vars)]
            else:
                f2 = f0 ^ f1
                cover0 = self._expand(f0)
                cover1 = self._expand(f1)
                cover2 = self._expand(f2)
                n0, n1 = len(cover0), len(cover1)
                if n0 <= n1:
                    best_cost, free, gated, positive = (
                        n0 + len(cover2), cover0, cover2, True
                    )
                else:
                    best_cost, free, gated, positive = (
                        n1 + len(cover2), cover1, cover2, False
                    )
                if n0 + n1 < best_cost:
                    result = [cube.with_literal(var, False) for cube in cover0]
                    result += [cube.with_literal(var, True) for cube in cover1]
                else:
                    result = list(free)
                    result += [cube.with_literal(var, positive) for cube in gated]
        if len(cache) >= self.MEMO_LIMIT:
            cache.clear()
        cache[key] = result
        return result


#: Variable count at which :func:`psdkro_cubes` switches from the plain-int
#: extractor to the packed-word-array one.  Measured on random functions,
#: the tuned big-int path is still ~5x faster at 12 variables (CPython
#: big-int bitops already run word-parallel in C, while sub-microsecond
#: numpy calls on small arrays are dispatch-bound), so the word path only
#: takes over for very wide tables where each table is tens of kilobytes.
_WORD_PATH_MIN_VARS = 16

#: Shared extractor registry: one memoised extractor per variable count,
#: reused across calls so repeated LUT functions are extracted once.
_EXTRACTORS: Dict[int, Any] = {}


def psdkro_clear_cache() -> None:
    """Drop the shared PSDKRO memo tables (used by benchmarks and tests)."""
    _EXTRACTORS.clear()


def psdkro_cubes(truth: int, num_vars: int) -> List[Cube]:
    """PSDKRO cube list of one single-output integer truth table.

    The shared primitive behind the multi-output extraction below and the
    per-LUT synthesis blocks of :mod:`repro.reversible.lut_synth` — the
    pebbling scheduler's gate-count estimate counts exactly these cubes, so
    both must come from the one extractor.

    Extraction runs on the memoised fast path (plain integers up to
    ``_WORD_PATH_MIN_VARS - 1`` variables, packed uint64 word arrays
    beyond); both produce covers identical to
    :func:`psdkro_cubes_reference`, the original big-int recursion kept as
    the oracle the property tests pin the fast paths against.
    """
    extractor = _EXTRACTORS.get(num_vars)
    if extractor is None:
        if num_vars >= _WORD_PATH_MIN_VARS:
            extractor = _WordPsdkroExtractor(num_vars)
        else:
            extractor = _FastPsdkroExtractor(num_vars)
        _EXTRACTORS[num_vars] = extractor
    return extractor.extract(truth & tt_mask(num_vars))


def psdkro_cubes_reference(truth: int, num_vars: int) -> List[Cube]:
    """Reference PSDKRO extraction (big-int recursion, fresh memo per call).

    This is the pre-vectorisation implementation, kept as the oracle for
    the property tests and the kernel benchmark; :func:`psdkro_cubes` must
    return exactly this cover.
    """
    return _PsdkroExtractor(num_vars).extract(truth & tt_mask(num_vars))


def esop_from_columns(columns: Sequence[int], num_inputs: int) -> EsopCover:
    """Extract a multi-output ESOP from single-output integer truth tables.

    Each output is extracted independently with PSDKRO; cubes that appear in
    several outputs are then merged into shared terms (the sharing is what
    the ESOP-based reversible synthesis exploits to save Toffoli gates).
    """
    cube_outputs: Dict[Cube, int] = {}
    for j, column in enumerate(columns):
        for cube in psdkro_cubes(column, num_inputs):
            cube_outputs[cube] = cube_outputs.get(cube, 0) ^ (1 << j)
    terms = [
        EsopTerm(cube, outputs) for cube, outputs in cube_outputs.items() if outputs
    ]
    return EsopCover(num_inputs, len(columns), terms)


def esop_from_truth_table(table: TruthTable) -> EsopCover:
    """Extract a multi-output ESOP cover from an explicit truth table."""
    return esop_from_columns(table.columns(), table.num_inputs)


# ---------------------------------------------------------------------------
# Exorcism-style minimisation
# ---------------------------------------------------------------------------

def _merge_pass(terms: List[EsopTerm]) -> Tuple[List[EsopTerm], bool]:
    """One sweep of duplicate cancellation and distance-1 merging."""
    changed = False

    # Duplicate cubes driving the same outputs cancel pairwise; duplicates
    # driving different outputs are combined into a single shared term.
    by_cube: Dict[Cube, int] = {}
    for term in terms:
        previous = by_cube.get(term.cube)
        if previous is None:
            by_cube[term.cube] = term.outputs
        else:
            by_cube[term.cube] = previous ^ term.outputs
            changed = True
    merged = [EsopTerm(cube, outs) for cube, outs in by_cube.items() if outs]

    # Distance-1 merging within groups of identical output masks.
    groups: Dict[int, List[Cube]] = {}
    for term in merged:
        groups.setdefault(term.outputs, []).append(term.cube)

    result: List[EsopTerm] = []
    for outputs, cubes in groups.items():
        used = [False] * len(cubes)
        for i in range(len(cubes)):
            if used[i]:
                continue
            current = cubes[i]
            for j in range(i + 1, len(cubes)):
                if used[j]:
                    continue
                combined = current.merge_distance_one(cubes[j])
                if combined is not None:
                    current = combined
                    used[j] = True
                    changed = True
            used[i] = True
            result.append(EsopTerm(current, outputs))
    return result, changed


def minimize_esop(cover: EsopCover, max_iterations: int = 10) -> EsopCover:
    """Iteratively cancel and merge cubes until a fixed point (or bound).

    This is a light-weight stand-in for ABC's ``&exorcism``: the distance-0
    (cancellation) and distance-1 (merge) exorlink operations are applied
    until no further improvement is found.  Correctness is preserved by
    construction because each rewrite is an identity on XOR covers.
    """
    terms = list(cover.terms)
    for _ in range(max_iterations):
        terms, changed = _merge_pass(terms)
        if not changed:
            break
    return EsopCover(cover.num_inputs, cover.num_outputs, terms)
