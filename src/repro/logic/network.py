"""Uniform protocol over the multi-level logic networks (AIG, XMG).

The optimisation layer must not care whether it holds an
:class:`~repro.logic.aig.Aig` or an :class:`~repro.logic.xmg.Xmg`: both
share the literal encoding of :mod:`repro.logic.lits`, create nodes in
topological order and expose the same traversal surface.  This module pins
that contract down as the :class:`LogicNetwork` protocol and builds the
generic graph algorithms on top of it:

* :func:`collect_cone` — iterative cone collection bounded by stop nodes,
* :func:`cone_truth_table` — iterative truth-table extraction of a cone
  (no recursion, so reconvergent cones deeper than the Python recursion
  limit are fine),
* :func:`transitive_fanin` — reachable gate set of a root set,
* :func:`network_stats` / :func:`network_cost` — uniform size/depth
  accounting; the cost tuple is the lexicographic objective every
  optimisation pass and pipeline minimises.

The protocol is *structural* (:func:`typing.runtime_checkable`): any class
providing the methods participates, no inheritance required.  The cut
enumeration of :mod:`repro.logic.cuts` and the pass manager of
:mod:`repro.opt` are written against this protocol only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

try:  # Python >= 3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.logic.lits import lit_is_compl, lit_node
from repro.logic.truth_table import tt_mask, tt_var

__all__ = [
    "LogicNetwork",
    "NetworkStats",
    "collect_cone",
    "cone_truth_table",
    "network_cost",
    "network_kind",
    "network_stats",
    "transitive_fanin",
]


@runtime_checkable
class LogicNetwork(Protocol):
    """Structural protocol shared by :class:`Aig` and :class:`Xmg`.

    Literals follow :mod:`repro.logic.lits` (``2*node + complement``),
    node 0 is the constant FALSE, and nodes are topologically ordered
    (fanins always have smaller indices than their fanouts).
    """

    #: ``"aig"`` or ``"xmg"`` — the tag pass applicability is keyed on.
    network_type: str
    name: str

    # -- I/O surface ---------------------------------------------------------
    def num_pis(self) -> int: ...
    def num_pos(self) -> int: ...
    def pis(self) -> List[int]: ...
    def pos(self) -> List[int]: ...
    def pi_names(self) -> List[str]: ...
    def po_names(self) -> List[str]: ...

    # -- node classification / traversal -------------------------------------
    def nodes(self) -> Iterable[int]: ...
    def is_pi(self, node: int) -> bool: ...
    def is_const(self, node: int) -> bool: ...
    def is_gate(self, node: int) -> bool: ...
    def gate_nodes(self) -> List[int]: ...
    def num_gates(self) -> int: ...
    def fanins(self, node: int) -> Tuple[int, ...]: ...

    # -- structure queries ----------------------------------------------------
    def levels(self) -> Dict[int, int]: ...
    def depth(self) -> int: ...
    def fanout_counts(self) -> List[int]: ...

    # -- evaluation ------------------------------------------------------------
    def eval_gate(self, node: int, operands: Sequence[int]) -> int: ...
    def simulate_minterm(self, minterm: int) -> int: ...

    # -- maintenance ------------------------------------------------------------
    def cleanup(self) -> "LogicNetwork": ...


def network_kind(network: LogicNetwork) -> str:
    """The network-type tag (``"aig"`` / ``"xmg"``) of a network."""
    kind = getattr(network, "network_type", None)
    if not isinstance(kind, str):
        raise TypeError(
            f"{type(network).__name__} does not implement the LogicNetwork "
            "protocol (missing 'network_type')"
        )
    return kind


@dataclass(frozen=True)
class NetworkStats:
    """Uniform size/depth snapshot of a network.

    ``num_maj`` / ``num_xor`` are zero for networks without the
    corresponding node kinds (an AIG's AND nodes are counted in
    ``num_gates`` only), so the dataclass compares cleanly across types.
    """

    kind: str
    num_pis: int
    num_pos: int
    num_gates: int
    depth: int
    num_maj: int = 0
    num_xor: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly metric dictionary (kind excluded)."""
        metrics = {
            "gates": self.num_gates,
            "depth": self.depth,
        }
        if self.kind == "xmg":
            metrics["maj"] = self.num_maj
            metrics["xor"] = self.num_xor
        return metrics


def network_stats(network: LogicNetwork) -> NetworkStats:
    """Snapshot the uniform statistics of any protocol network."""
    kind = network_kind(network)
    num_maj = network.num_maj() if hasattr(network, "num_maj") else 0
    num_xor = network.num_xor() if hasattr(network, "num_xor") else 0
    return NetworkStats(
        kind=kind,
        num_pis=network.num_pis(),
        num_pos=network.num_pos(),
        num_gates=network.num_gates(),
        depth=network.depth(),
        num_maj=num_maj,
        num_xor=num_xor,
    )


def network_cost(network: LogicNetwork) -> Tuple[int, ...]:
    """Lexicographic optimisation objective of a network.

    AIGs minimise ``(AND count, depth)``; XMGs minimise
    ``(MAJ count, total gates, depth)`` — MAJ nodes dominate because every
    MAJ costs a Toffoli block downstream while XOR nodes map to T-free
    CNOTs.  Pipelines and ``optimize_script`` keep the best network seen
    under this ordering.
    """
    if network_kind(network) == "xmg":
        return (network.num_maj(), network.num_gates(), network.depth())
    return (network.num_gates(), network.depth())


def collect_cone(
    network: LogicNetwork, root: int, stops: Set[int]
) -> Tuple[List[int], List[int]]:
    """Leaves and internal nodes of the cone of ``root``.

    The traversal stops at primary inputs, the constant node and at any
    node in ``stops`` (other than the root itself).  Both lists are sorted
    ascending, which is topological order for internal nodes.  The
    constant node is never reported as a leaf — it is not a cone
    variable; :func:`cone_truth_table` evaluates it as the fixed value 0.
    XMGs reach it routinely (MAJ with a constant operand is how AND/OR
    are represented), so reporting it would silently inflate the cone
    arity.
    """
    leaves: List[int] = []
    internal: List[int] = []
    seen: Set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node != root and (node in stops or not network.is_gate(node)):
            if not network.is_const(node):
                leaves.append(node)
            continue
        internal.append(node)
        for fanin in network.fanins(node):
            stack.append(lit_node(fanin))
    internal.sort()
    leaves.sort()
    return leaves, internal


def cone_truth_table(
    network: LogicNetwork,
    root: int,
    leaves: Sequence[int],
    internal: Sequence[int],
) -> int:
    """Truth table of ``root`` over its cone leaves (leaf ``i`` = variable ``i``).

    ``internal`` must contain every gate between the leaves and the root in
    topological (ascending) order — exactly what :func:`collect_cone`
    returns.  Evaluation is iterative and dispatches per-node through
    :meth:`LogicNetwork.eval_gate`, so it works for AND, MAJ and XOR nodes
    alike.
    """
    num_vars = len(leaves)
    mask = tt_mask(num_vars)
    tables: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(leaves):
        tables[leaf] = tt_var(i, num_vars)

    for node in internal:
        operands = [
            tables[lit_node(f)] ^ (mask if lit_is_compl(f) else 0)
            for f in network.fanins(node)
        ]
        tables[node] = network.eval_gate(node, operands) & mask
    return tables[root]


def transitive_fanin(
    network: LogicNetwork, roots: Iterable[int]
) -> Set[int]:
    """All gate nodes reachable (fanin-wards) from ``roots``, inclusive."""
    seen: Set[int] = set()
    stack = [node for node in roots if network.is_gate(node)]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        for fanin in network.fanins(node):
            fanin_node = lit_node(fanin)
            if network.is_gate(fanin_node):
                stack.append(fanin_node)
    return seen
