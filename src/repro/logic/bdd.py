"""Reduced ordered binary decision diagrams (ROBDDs).

The symbolic functional flow of the paper collapses the optimised AIG into a
BDD (ABC's ``collapse``) before embedding and transformation-based synthesis.
This module provides a small but complete BDD manager with the operations
needed by that flow: boolean connectives, ITE, cofactors/restriction,
composition, quantification, satisfiability counting, support computation and
conversion to/from explicit truth tables.

Nodes are referenced by integer handles.  Handle 0 is the constant FALSE,
handle 1 the constant TRUE.  Variable 0 is the topmost variable in the
order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BddManager"]


class BddManager:
    """A manager owning all BDD nodes over a fixed variable order."""

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars: int, var_names: Optional[Sequence[str]] = None):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        if var_names is None:
            var_names = [f"x{i}" for i in range(num_vars)]
        if len(var_names) != num_vars:
            raise ValueError("var_names length must equal num_vars")
        self.var_names = list(var_names)

        # Terminal nodes use variable index ``num_vars`` as a sentinel level.
        self._var: List[int] = [num_vars, num_vars]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}

    # -- node primitives ----------------------------------------------------

    def node_var(self, node: int) -> int:
        """Variable index tested by ``node`` (``num_vars`` for terminals)."""
        return self._var[node]

    def node_low(self, node: int) -> int:
        """Low (else) child of a node."""
        return self._low[node]

    def node_high(self, node: int) -> int:
        """High (then) child of a node."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes."""
        return node <= 1

    def _make_node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    # -- constants and variables --------------------------------------------

    def false(self) -> int:
        """Handle of the constant-0 function."""
        return self.FALSE

    def true(self) -> int:
        """Handle of the constant-1 function."""
        return self.TRUE

    def variable(self, index: int) -> int:
        """Handle of the projection function of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._make_node(index, self.FALSE, self.TRUE)

    def nvariable(self, index: int) -> int:
        """Handle of the complemented projection function of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._make_node(index, self.TRUE, self.FALSE)

    # -- boolean connectives --------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Complement of a function."""
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        if f == self.FALSE:
            result = self.TRUE
        elif f == self.TRUE:
            result = self.FALSE
        else:
            result = self._make_node(
                self._var[f], self.apply_not(self._low[f]), self.apply_not(self._high[f])
            )
        self._not_cache[f] = result
        return result

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two functions."""
        return self._apply("and", f, g)

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two functions."""
        return self._apply("or", f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or of two functions."""
        return self._apply("xor", f, g)

    def apply_xnor(self, f: int, g: int) -> int:
        """Complemented exclusive or (equivalence) of two functions."""
        return self.apply_not(self.apply_xor(f, g))

    def _terminal_case(self, op: str, f: int, g: int) -> Optional[int]:
        if op == "and":
            if f == self.FALSE or g == self.FALSE:
                return self.FALSE
            if f == self.TRUE:
                return g
            if g == self.TRUE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == self.TRUE or g == self.TRUE:
                return self.TRUE
            if f == self.FALSE:
                return g
            if g == self.FALSE:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == self.FALSE:
                return g
            if g == self.FALSE:
                return f
            if f == self.TRUE:
                return self.apply_not(g)
            if g == self.TRUE:
                return self.apply_not(f)
            if f == g:
                return self.FALSE
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown operation {op!r}")
        return None

    def _apply(self, op: str, f: int, g: int) -> int:
        terminal = self._terminal_case(op, f, g)
        if terminal is not None:
            return terminal
        if op in ("and", "or", "xor") and g < f:
            f, g = g, f  # commutative: canonicalise the cache key
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        var_f, var_g = self._var[f], self._var[g]
        var = min(var_f, var_g)
        f0, f1 = (self._low[f], self._high[f]) if var_f == var else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == var else (g, g)

        low = self._apply(op, f0, g0)
        high = self._apply(op, f1, g1)
        result = self._make_node(var, low, high)
        self._apply_cache[key] = result
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else operator ``f·g + f'·h``."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        if g == self.FALSE and h == self.TRUE:
            return self.apply_not(f)
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        var = min(self._var[f], self._var[g], self._var[h])

        def cofactors(node: int) -> Tuple[int, int]:
            if self._var[node] == var:
                return self._low[node], self._high[node]
            return node, node

        f0, f1 = cofactors(f)
        g0, g1 = cofactors(g)
        h0, h1 = cofactors(h)
        result = self._make_node(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    # -- structural operations ------------------------------------------------

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``var = value``."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable index {var} out of range")
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if self.is_terminal(node) or self._var[node] > var:
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            if self._var[node] == var:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._make_node(
                    self._var[node], rec(self._low[node]), rec(self._high[node])
                )
            cache[node] = result
            return result

        return rec(f)

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``."""
        f0 = self.restrict(f, var, False)
        f1 = self.restrict(f, var, True)
        return self.ite(g, f1, f0)

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        result = f
        for var in variables:
            result = self.apply_or(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over ``variables``."""
        result = f
        for var in variables:
            result = self.apply_and(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    def support(self, f: int) -> List[int]:
        """Indices of variables the function depends on."""
        seen = set()
        support = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            support.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(support)

    def node_count(self, roots: Iterable[int]) -> int:
        """Number of distinct internal nodes reachable from ``roots``."""
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def size(self) -> int:
        """Total number of nodes currently allocated in the manager."""
        return len(self._var)

    # -- evaluation and counting ----------------------------------------------

    def evaluate(self, f: int, assignment: int) -> bool:
        """Evaluate ``f`` on an assignment given as an integer bit vector."""
        node = f
        while not self.is_terminal(node):
            if (assignment >> self._var[node]) & 1:
                node = self._high[node]
            else:
                node = self._low[node]
        return node == self.TRUE

    def satcount(self, f: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables."""
        if f == self.FALSE:
            return 0
        if f == self.TRUE:
            return 1 << self.num_vars
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            # Counts assignments of the variables at the node's level and
            # below (levels above the node are accounted for by the caller).
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1
            cached = cache.get(node)
            if cached is not None:
                return cached
            var = self._var[node]
            count = 0
            for child in (self._low[node], self._high[node]):
                skipped = self._var[child] - var - 1
                count += rec(child) << skipped
            cache[node] = count
            return count

        return rec(f) << self._var[f]

    def one_paths(self, f: int) -> Iterator[Dict[int, bool]]:
        """Iterate over the 1-paths of ``f`` as partial assignments."""
        path: Dict[int, bool] = {}

        def rec(node: int) -> Iterator[Dict[int, bool]]:
            if node == self.FALSE:
                return
            if node == self.TRUE:
                yield dict(path)
                return
            var = self._var[node]
            for value, child in ((False, self._low[node]), (True, self._high[node])):
                path[var] = value
                yield from rec(child)
                del path[var]

        yield from rec(f)

    # -- conversions ----------------------------------------------------------

    def from_truth_table(self, column: int) -> int:
        """Build the BDD of a single-output integer truth table."""
        cache: Dict[Tuple[int, int], int] = {}

        def rec(func: int, var: int) -> int:
            if var == self.num_vars:
                return self.TRUE if func & 1 else self.FALSE
            key = (func, var)
            cached = cache.get(key)
            if cached is not None:
                return cached
            block = 1 << var
            # Split the truth table into the var=0 and var=1 halves.  The
            # table is indexed by minterms with variable 0 as bit 0, so we
            # peel off variables from the bottom of the order.
            low_func = 0
            high_func = 0
            remaining = self.num_vars - var
            for x in range(1 << (remaining - 1)):
                src0 = x << 1
                src1 = src0 | 1
                if (func >> src0) & 1:
                    low_func |= 1 << x
                if (func >> src1) & 1:
                    high_func |= 1 << x
            low = rec(low_func, var + 1)
            high = rec(high_func, var + 1)
            result = self._make_node(var, low, high)
            cache[key] = result
            return result

        if self.num_vars == 0:
            return self.TRUE if column & 1 else self.FALSE
        return rec(column, 0)

    def to_truth_table(self, f: int) -> int:
        """Expand ``f`` into a single-output integer truth table."""
        result = 0
        for x in range(1 << self.num_vars):
            if self.evaluate(f, x):
                result |= 1 << x
        return result
