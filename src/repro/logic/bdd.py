"""Reduced ordered binary decision diagrams (ROBDDs).

The symbolic functional flow of the paper collapses the optimised AIG into a
BDD (ABC's ``collapse``) before embedding and transformation-based synthesis.
This module provides a small but complete BDD manager with the operations
needed by that flow: boolean connectives, ITE, cofactors/restriction,
composition, quantification, satisfiability counting, support computation and
conversion to/from explicit truth tables.

Nodes are referenced by integer handles.  Handle 0 is the constant FALSE,
handle 1 the constant TRUE.  Variable 0 is the topmost variable in the
order.  Node attributes live in parallel arrays indexed by handle (not in
per-node objects), so traversals are cheap array reads.

The walks on the synthesis hot path are iterative: :meth:`BddManager._apply`,
:meth:`~BddManager.apply_not`, :meth:`~BddManager.restrict` and
:meth:`~BddManager.satcount` run on explicit worklists rather than Python
recursion.  Truth-table expansion is a single memoised bottom-up sweep over
the reachable nodes (``table(node) = (~var_tt & table(low)) | (var_tt &
table(high))``), shared across all requested roots
(:meth:`~BddManager.to_truth_tables`); wide instances run the sweep
level-batched over packed NumPy ``uint64`` words.  The original recursive /
per-assignment implementations remain as ``*_reference`` oracles, pinned
against the production paths by the property suite and
``benchmarks/bench_symbolic_kernels.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BddManager"]

#: Number of variables from which the truth-table sweep switches from
#: big-int node tables to the level-batched NumPy word matrix.  Below the
#: threshold one CPython big-int op per node beats the fixed per-level
#: NumPy dispatch overhead (same trade-off as the PSDKRO word path).
_WORD_SWEEP_MIN_VARS = 10

#: Soft bound on the word-matrix bytes of one sweep chunk; wider truth
#: tables are expanded in independent word-column blocks (bitwise ops never
#: mix words, so column blocks are embarrassingly separable).
_SWEEP_BYTES_LIMIT = 1 << 26


def _projection_table(var: int, num_vars: int) -> int:
    """Truth table (as a big int over ``2**num_vars`` bits) of variable ``var``.

    Built by doubling instead of the linear block loop of
    :func:`repro.logic.truth_table.tt_var`, so it stays cheap for the wide
    tables the BDD sweep handles.
    """
    block = 1 << var
    pattern = ((1 << block) - 1) << block  # one 0-run then one 1-run
    span = block * 2
    total = 1 << num_vars
    while span < total:
        pattern |= pattern << span
        span *= 2
    return pattern


class BddManager:
    """A manager owning all BDD nodes over a fixed variable order."""

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars: int, var_names: Optional[Sequence[str]] = None):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        if var_names is None:
            var_names = [f"x{i}" for i in range(num_vars)]
        if len(var_names) != num_vars:
            raise ValueError("var_names length must equal num_vars")
        self.var_names = list(var_names)

        # Terminal nodes use variable index ``num_vars`` as a sentinel level.
        self._var: List[int] = [num_vars, num_vars]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}

    # -- node primitives ----------------------------------------------------

    def node_var(self, node: int) -> int:
        """Variable index tested by ``node`` (``num_vars`` for terminals)."""
        return self._var[node]

    def node_low(self, node: int) -> int:
        """Low (else) child of a node."""
        return self._low[node]

    def node_high(self, node: int) -> int:
        """High (then) child of a node."""
        return self._high[node]

    def is_terminal(self, node: int) -> bool:
        """True for the constant nodes."""
        return node <= 1

    def _make_node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    # -- constants and variables --------------------------------------------

    def false(self) -> int:
        """Handle of the constant-0 function."""
        return self.FALSE

    def true(self) -> int:
        """Handle of the constant-1 function."""
        return self.TRUE

    def variable(self, index: int) -> int:
        """Handle of the projection function of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._make_node(index, self.FALSE, self.TRUE)

    def nvariable(self, index: int) -> int:
        """Handle of the complemented projection function of variable ``index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable index {index} out of range")
        return self._make_node(index, self.TRUE, self.FALSE)

    # -- boolean connectives --------------------------------------------------

    def apply_not(self, f: int) -> int:
        """Complement of a function (iterative, memoised in the manager)."""
        cache = self._not_cache
        cache[self.FALSE] = self.TRUE
        cache[self.TRUE] = self.FALSE
        if f in cache:
            return cache[f]
        var, low, high = self._var, self._low, self._high
        stack = [f]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            pending = [c for c in (low[node], high[node]) if c not in cache]
            if pending:
                stack.extend(pending)
                continue
            cache[node] = self._make_node(var[node], cache[low[node]], cache[high[node]])
            stack.pop()
        return cache[f]

    def apply_not_reference(self, f: int) -> int:
        """Recursive complement — the oracle for :meth:`apply_not`.

        Bypasses the shared negation cache (it uses a private memo) so the
        two implementations can be compared on equal terms.
        """
        cache: Dict[int, int] = {self.FALSE: self.TRUE, self.TRUE: self.FALSE}

        def rec(node: int) -> int:
            cached = cache.get(node)
            if cached is not None:
                return cached
            result = self._make_node(
                self._var[node], rec(self._low[node]), rec(self._high[node])
            )
            cache[node] = result
            return result

        return rec(f)

    def apply_and(self, f: int, g: int) -> int:
        """Conjunction of two functions."""
        return self._apply("and", f, g)

    def apply_and_many(self, fs: Iterable[int]) -> int:
        """Conjunction of any number of functions (balanced reduction).

        A left fold over ``k`` conjuncts walks one fully-grown intermediate
        BDD per step — ``k - 1`` cache-probe sweeps over ever-larger
        operands.  Pairing the operands tournament-style keeps the
        intermediates small and halves the chain depth per round, which is
        what makes the collapse of deep AND cones affordable
        (:func:`repro.logic.collapse.collapse_to_bdd` batches whole
        supergate fanin sets through here).  BDDs are canonical and AND is
        associative/commutative, so the result handle is identical to the
        sequential fold of :meth:`apply_and_many_reference`.

        The empty conjunction is TRUE; any FALSE operand short-circuits.
        """
        ops = []
        for f in fs:
            if f == self.FALSE:
                return self.FALSE
            if f != self.TRUE:
                ops.append(f)
        if not ops:
            return self.TRUE
        while len(ops) > 1:
            paired = []
            for i in range(0, len(ops) - 1, 2):
                result = self._apply("and", ops[i], ops[i + 1])
                if result == self.FALSE:
                    return self.FALSE
                paired.append(result)
            if len(ops) % 2:
                paired.append(ops[-1])
            ops = paired
        return ops[0]

    def apply_and_many_reference(self, fs: Iterable[int]) -> int:
        """Sequential-fold conjunction — the oracle for :meth:`apply_and_many`."""
        result = self.TRUE
        for f in fs:
            result = self._apply("and", result, f)
        return result

    def apply_or(self, f: int, g: int) -> int:
        """Disjunction of two functions."""
        return self._apply("or", f, g)

    def apply_xor(self, f: int, g: int) -> int:
        """Exclusive or of two functions."""
        return self._apply("xor", f, g)

    def apply_xnor(self, f: int, g: int) -> int:
        """Complemented exclusive or (equivalence) of two functions."""
        return self.apply_not(self.apply_xor(f, g))

    def _terminal_case(self, op: str, f: int, g: int) -> Optional[int]:
        if op == "and":
            if f == self.FALSE or g == self.FALSE:
                return self.FALSE
            if f == self.TRUE:
                return g
            if g == self.TRUE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == self.TRUE or g == self.TRUE:
                return self.TRUE
            if f == self.FALSE:
                return g
            if g == self.FALSE:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == self.FALSE:
                return g
            if g == self.FALSE:
                return f
            if f == self.TRUE:
                return self.apply_not(g)
            if g == self.TRUE:
                return self.apply_not(f)
            if f == g:
                return self.FALSE
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown operation {op!r}")
        return None

    def _apply_resolved(self, op: str, f: int, g: int) -> Optional[int]:
        """Result of ``op(f, g)`` when already terminal or cached, else None."""
        terminal = self._terminal_case(op, f, g)
        if terminal is not None:
            return terminal
        if g < f:
            f, g = g, f  # commutative: canonicalise the cache key
        return self._apply_cache.get((op, f, g))

    def _apply(self, op: str, f: int, g: int) -> int:
        """Binary connective on an explicit worklist (no Python recursion).

        Each frame carries its cofactor subproblems; a frame is combined
        once both subresults are resolved (terminal or cached), which the
        post-order push discipline guarantees.
        """
        resolved = self._apply_resolved(op, f, g)
        if resolved is not None:
            return resolved
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        cache = self._apply_cache
        terminal_case = self._terminal_case
        if g < f:
            f, g = g, f
        # Probe frames are (a, b) pairs (already canonicalised); expand
        # frames additionally carry the cofactor subproblems computed during
        # the probe, so cofactors are derived exactly once per pair.
        stack: List[Tuple] = [(f, g)]
        while stack:
            frame = stack.pop()
            if len(frame) == 2:
                a, b = frame
                if (op, a, b) in cache:
                    continue
                var_a, var_b = var_arr[a], var_arr[b]
                var = var_a if var_a < var_b else var_b
                a0, a1 = (low_arr[a], high_arr[a]) if var_a == var else (a, a)
                b0, b1 = (low_arr[b], high_arr[b]) if var_b == var else (b, b)
                stack.append((a, b, var, a0, b0, a1, b1))
                for ca, cb in ((a1, b1), (a0, b0)):
                    if terminal_case(op, ca, cb) is None:
                        if cb < ca:
                            ca, cb = cb, ca
                        if (op, ca, cb) not in cache:
                            stack.append((ca, cb))
            else:
                a, b, var, a0, b0, a1, b1 = frame
                low = terminal_case(op, a0, b0)
                if low is None:
                    low = cache[(op, a0, b0) if a0 <= b0 else (op, b0, a0)]
                high = terminal_case(op, a1, b1)
                if high is None:
                    high = cache[(op, a1, b1) if a1 <= b1 else (op, b1, a1)]
                cache[(op, a, b)] = self._make_node(var, low, high)
        return cache[(op, f, g)]

    def _apply_reference(self, op: str, f: int, g: int) -> int:
        """Recursive connective — the oracle for the iterative :meth:`_apply`.

        Shares the manager's apply cache (both walks compute the same
        canonical results), so interleaving the two is safe.
        """
        terminal = self._terminal_case(op, f, g)
        if terminal is not None:
            return terminal
        if g < f:
            f, g = g, f  # commutative: canonicalise the cache key
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        var_f, var_g = self._var[f], self._var[g]
        var = min(var_f, var_g)
        f0, f1 = (self._low[f], self._high[f]) if var_f == var else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if var_g == var else (g, g)

        low = self._apply_reference(op, f0, g0)
        high = self._apply_reference(op, f1, g1)
        result = self._make_node(var, low, high)
        self._apply_cache[key] = result
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else operator ``f·g + f'·h``."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        if g == self.FALSE and h == self.TRUE:
            return self.apply_not(f)
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        var = min(self._var[f], self._var[g], self._var[h])

        def cofactors(node: int) -> Tuple[int, int]:
            if self._var[node] == var:
                return self._low[node], self._high[node]
            return node, node

        f0, f1 = cofactors(f)
        g0, g1 = cofactors(g)
        h0, h1 = cofactors(h)
        result = self._make_node(var, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    # -- structural operations ------------------------------------------------

    def restrict(self, f: int, var: int, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``var = value`` (iterative)."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable index {var} out of range")
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        branch = high_arr if value else low_arr
        cache: Dict[int, int] = {}

        def resolved(node: int) -> Optional[int]:
            if node <= 1 or var_arr[node] > var:
                return node
            if var_arr[node] == var:
                return branch[node]
            return cache.get(node)

        result = resolved(f)
        if result is not None:
            return result
        stack: List[Tuple[int, bool]] = [(f, False)]
        while stack:
            node, expand = stack.pop()
            if expand:
                cache[node] = self._make_node(
                    var_arr[node], resolved(low_arr[node]), resolved(high_arr[node])
                )
                continue
            if node in cache:
                continue
            stack.append((node, True))
            for child in (high_arr[node], low_arr[node]):
                if resolved(child) is None:
                    stack.append((child, False))
        return cache[f]

    def restrict_reference(self, f: int, var: int, value: bool) -> int:
        """Recursive cofactor — the oracle for :meth:`restrict`."""
        if not 0 <= var < self.num_vars:
            raise ValueError(f"variable index {var} out of range")
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if self.is_terminal(node) or self._var[node] > var:
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            if self._var[node] == var:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._make_node(
                    self._var[node], rec(self._low[node]), rec(self._high[node])
                )
            cache[node] = result
            return result

        return rec(f)

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` inside ``f``."""
        f0 = self.restrict(f, var, False)
        f1 = self.restrict(f, var, True)
        return self.ite(g, f1, f0)

    def exists(self, f: int, variables: Iterable[int]) -> int:
        """Existential quantification over ``variables``."""
        result = f
        for var in variables:
            result = self.apply_or(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    def forall(self, f: int, variables: Iterable[int]) -> int:
        """Universal quantification over ``variables``."""
        result = f
        for var in variables:
            result = self.apply_and(
                self.restrict(result, var, False), self.restrict(result, var, True)
            )
        return result

    def support(self, f: int) -> List[int]:
        """Indices of variables the function depends on."""
        seen = set()
        support = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            support.add(self._var[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(support)

    def node_count(self, roots: Iterable[int]) -> int:
        """Number of distinct internal nodes reachable from ``roots``."""
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen or self.is_terminal(node):
                continue
            seen.add(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        return len(seen)

    def size(self) -> int:
        """Total number of nodes currently allocated in the manager."""
        return len(self._var)

    # -- evaluation and counting ----------------------------------------------

    def evaluate(self, f: int, assignment: int) -> bool:
        """Evaluate ``f`` on an assignment given as an integer bit vector."""
        node = f
        while not self.is_terminal(node):
            if (assignment >> self._var[node]) & 1:
                node = self._high[node]
            else:
                node = self._low[node]
        return node == self.TRUE

    def satcount(self, f: int) -> int:
        """Number of satisfying assignments over all ``num_vars`` variables.

        One iterative post-order pass over the reachable nodes; each cached
        count covers the variables at the node's level and below, and the
        levels skipped along an edge contribute a power-of-two factor.
        """
        if f == self.FALSE:
            return 0
        if f == self.TRUE:
            return 1 << self.num_vars
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        cache: Dict[int, int] = {self.FALSE: 0, self.TRUE: 1}
        stack: List[int] = [f]
        while stack:
            node = stack[-1]
            if node in cache:
                stack.pop()
                continue
            low, high = low_arr[node], high_arr[node]
            pending = [c for c in (low, high) if c not in cache]
            if pending:
                stack.extend(pending)
                continue
            var = var_arr[node]
            cache[node] = (cache[low] << (var_arr[low] - var - 1)) + (
                cache[high] << (var_arr[high] - var - 1)
            )
            stack.pop()
        return cache[f] << var_arr[f]

    def satcount_reference(self, f: int) -> int:
        """Recursive model counting — the oracle for :meth:`satcount`."""
        if f == self.FALSE:
            return 0
        if f == self.TRUE:
            return 1 << self.num_vars
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            # Counts assignments of the variables at the node's level and
            # below (levels above the node are accounted for by the caller).
            if node == self.FALSE:
                return 0
            if node == self.TRUE:
                return 1
            cached = cache.get(node)
            if cached is not None:
                return cached
            var = self._var[node]
            count = 0
            for child in (self._low[node], self._high[node]):
                skipped = self._var[child] - var - 1
                count += rec(child) << skipped
            cache[node] = count
            return count

        return rec(f) << self._var[f]

    def one_paths(self, f: int) -> Iterator[Dict[int, bool]]:
        """Iterate over the 1-paths of ``f`` as partial assignments."""
        path: Dict[int, bool] = {}

        def rec(node: int) -> Iterator[Dict[int, bool]]:
            if node == self.FALSE:
                return
            if node == self.TRUE:
                yield dict(path)
                return
            var = self._var[node]
            for value, child in ((False, self._low[node]), (True, self._high[node])):
                path[var] = value
                yield from rec(child)
                del path[var]

        yield from rec(f)

    # -- conversions ----------------------------------------------------------

    def from_truth_table(self, column: int) -> int:
        """Build the BDD of a single-output integer truth table."""
        cache: Dict[Tuple[int, int], int] = {}

        def rec(func: int, var: int) -> int:
            if var == self.num_vars:
                return self.TRUE if func & 1 else self.FALSE
            key = (func, var)
            cached = cache.get(key)
            if cached is not None:
                return cached
            block = 1 << var
            # Split the truth table into the var=0 and var=1 halves.  The
            # table is indexed by minterms with variable 0 as bit 0, so we
            # peel off variables from the bottom of the order.
            low_func = 0
            high_func = 0
            remaining = self.num_vars - var
            for x in range(1 << (remaining - 1)):
                src0 = x << 1
                src1 = src0 | 1
                if (func >> src0) & 1:
                    low_func |= 1 << x
                if (func >> src1) & 1:
                    high_func |= 1 << x
            low = rec(low_func, var + 1)
            high = rec(high_func, var + 1)
            result = self._make_node(var, low, high)
            cache[key] = result
            return result

        if self.num_vars == 0:
            return self.TRUE if column & 1 else self.FALSE
        return rec(column, 0)

    def to_truth_table(self, f: int) -> int:
        """Expand ``f`` into a single-output integer truth table."""
        return self.to_truth_tables([f])[0]

    def to_truth_tables(self, roots: Sequence[int]) -> List[int]:
        """Expand many roots into integer truth tables in one shared sweep.

        Instead of evaluating every assignment per root (``O(2^n * depth)``
        big-int walks per root), the sweep computes the packed truth table
        of every node reachable from *any* root exactly once, bottom-up:
        ``table(node) = (~var_tt & table(low)) | (var_tt & table(high))``.
        Children always test later variables than their parents, so walking
        the reachable nodes by decreasing variable index resolves every
        child before its parents.  Narrow instances combine big ints (one
        C-level op per node); from :data:`_WORD_SWEEP_MIN_VARS` variables
        the sweep runs level-batched over a NumPy ``uint64`` word matrix,
        chunked into independent word-column blocks.  The per-assignment
        oracle survives as :meth:`to_truth_table_reference`.
        """
        roots = list(roots)
        seen: set = set()
        reachable: List[int] = []
        stack = [r for r in roots if r > 1]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            reachable.append(node)
            stack.append(self._low[node])
            stack.append(self._high[node])
        num_vars = self.num_vars
        full = (1 << (1 << num_vars)) - 1
        if not reachable:
            return [full if r == self.TRUE else 0 for r in roots]
        # Decreasing variable index = children-first evaluation order.
        reachable.sort(key=lambda node: -self._var[node])
        if num_vars >= _WORD_SWEEP_MIN_VARS:
            tables = self._sweep_words(reachable, num_vars)
        else:
            tables = self._sweep_ints(reachable, num_vars, full)
        tables[self.FALSE] = 0
        tables[self.TRUE] = full
        return [tables[r] for r in roots]

    def _sweep_ints(
        self, reachable: List[int], num_vars: int, full: int
    ) -> Dict[int, int]:
        """Bottom-up big-int sweep (narrow tables: one C op per node)."""
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        proj = [_projection_table(v, num_vars) for v in range(num_vars)]
        tables: Dict[int, int] = {self.FALSE: 0, self.TRUE: full}
        for node in reachable:
            var_tt = proj[var_arr[node]]
            tables[node] = (tables[low_arr[node]] & ~var_tt) | (
                tables[high_arr[node]] & var_tt
            )
        return tables

    def _sweep_words(self, reachable: List[int], num_vars: int) -> Dict[int, int]:
        """Level-batched NumPy word sweep (wide tables).

        Row ``i`` of the value matrix holds node ``reachable[i]``'s table as
        packed little-endian ``uint64`` words; rows 0/1 are the terminals.
        Every variable level is evaluated with three whole-matrix ops over
        the gathered child rows.  Word columns are independent under
        bitwise ops, so wide tables are processed in column blocks bounded
        by :data:`_SWEEP_BYTES_LIMIT`.
        """
        var_arr, low_arr, high_arr = self._var, self._low, self._high
        num_rows = len(reachable) + 2
        row_of = {self.FALSE: 0, self.TRUE: 1}
        for i, node in enumerate(reachable):
            row_of[node] = i + 2
        # Per-variable slices of the (variable-sorted) reachable list and
        # their gathered child rows.
        levels: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        start = 0
        while start < len(reachable):
            var = var_arr[reachable[start]]
            end = start
            while end < len(reachable) and var_arr[reachable[end]] == var:
                end += 1
            batch = reachable[start:end]
            rows = np.arange(start + 2, end + 2, dtype=np.int64)
            low_rows = np.fromiter(
                (row_of[low_arr[n]] for n in batch), np.int64, len(batch)
            )
            high_rows = np.fromiter(
                (row_of[high_arr[n]] for n in batch), np.int64, len(batch)
            )
            levels.append((var, rows, low_rows, high_rows))
            start = end
        total_words = 1 << (num_vars - 6)
        chunk_words = max(1, _SWEEP_BYTES_LIMIT // (num_rows * 8))
        collected = [np.empty(0, dtype="<u8")] * num_rows
        for word_start in range(0, total_words, chunk_words):
            width = min(chunk_words, total_words - word_start)
            value = np.zeros((num_rows, width), dtype="<u8")
            value[1] = ~np.uint64(0)
            # ``levels`` is ordered by decreasing variable, i.e. children
            # first — exactly the evaluation order the sweep needs.
            for var, rows, low_rows, high_rows in levels:
                var_words = self._projection_words(var, word_start, width)
                value[rows] = (value[low_rows] & ~var_words) | (
                    value[high_rows] & var_words
                )
            if word_start == 0 and width == total_words:
                collected = list(value)
                break
            for i in range(num_rows):
                collected[i] = np.concatenate((collected[i], value[i]))
        tables: Dict[int, int] = {}
        for node, row in row_of.items():
            tables[node] = int.from_bytes(collected[row].tobytes(), "little")
        return tables

    @staticmethod
    def _projection_words(var: int, word_start: int, width: int) -> np.ndarray:
        """Words ``[word_start, word_start + width)`` of variable ``var``'s table."""
        if var < 6:
            return np.full(width, np.uint64(_projection_table(var, 6)), dtype="<u8")
        # Whole words alternate in runs of 2**(var - 6): a word is all-ones
        # exactly when bit (var - 6) of its word index is set.
        indices = np.arange(word_start, word_start + width, dtype=np.uint64)
        ones = (indices >> np.uint64(var - 6)) & np.uint64(1)
        return (~np.uint64(0)) * ones

    def to_truth_table_reference(self, f: int) -> int:
        """Per-assignment expansion — the oracle for the shared sweep."""
        result = 0
        for x in range(1 << self.num_vars):
            if self.evaluate(f, x):
                result |= 1 << x
        return result
